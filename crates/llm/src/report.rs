//! Aggregated token-level serving statistics.

use serde::{Deserialize, Serialize};

/// Summary of one simulation's decode workload, attached to the sim
/// report under the `llm` key (omitted entirely when the workload is
/// disabled, keeping legacy output byte-identical).
///
/// Time-to-first-token (TTFT) is the LLM-serving latency metric that
/// replaces service time: arrival → the end of the request's prefill
/// iteration, *after* all continuous-batching repricings — a join that
/// slows earlier sequences down is charged to their TTFT, not hidden.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LlmReport {
    /// Decode loops served.
    pub requests: u64,
    /// Requests that joined a running batch at an iteration boundary
    /// (the continuous-batching hit rate is `joins / requests`).
    pub joins: u64,
    /// Output tokens emitted across all loops.
    pub tokens: u64,
    /// Largest batch any iteration ran.
    pub peak_batch: u64,
    /// Mean time-to-first-token in seconds.
    pub ttft_mean: f64,
    /// Median TTFT.
    pub ttft_p50: f64,
    /// 95th-percentile TTFT.
    pub ttft_p95: f64,
    /// 99th-percentile TTFT.
    pub ttft_p99: f64,
    /// Worst TTFT.
    pub ttft_max: f64,
}

impl LlmReport {
    /// Build the summary from final (post-patching) per-request TTFTs.
    pub fn summarize(
        requests: u64,
        joins: u64,
        tokens: u64,
        peak_batch: u64,
        ttfts: &[f64],
    ) -> Self {
        let mean = if ttfts.is_empty() {
            0.0
        } else {
            ttfts.iter().sum::<f64>() / ttfts.len() as f64
        };
        LlmReport {
            requests,
            joins,
            tokens,
            peak_batch,
            ttft_mean: mean,
            ttft_p50: optimus_telemetry::exact_percentile(ttfts, 50.0),
            ttft_p95: optimus_telemetry::exact_percentile(ttfts, 95.0),
            ttft_p99: optimus_telemetry::exact_percentile(ttfts, 99.0),
            ttft_max: optimus_telemetry::exact_percentile(ttfts, 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_orders_percentiles() {
        let ttfts: Vec<f64> = (1..=200).map(|i| i as f64 / 100.0).collect();
        let r = LlmReport::summarize(200, 60, 12_000, 8, &ttfts);
        assert!(r.ttft_p50 <= r.ttft_p95);
        assert!(r.ttft_p95 <= r.ttft_p99);
        assert!(r.ttft_p99 <= r.ttft_max);
        assert_eq!(r.ttft_max, 2.0);
        assert!((r.ttft_mean - 1.005).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_summarizes_to_zeros() {
        assert_eq!(LlmReport::summarize(0, 0, 0, 0, &[]), LlmReport::default());
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = LlmReport::summarize(10, 3, 640, 4, &[0.5, 1.0, 1.5]);
        let back: LlmReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
