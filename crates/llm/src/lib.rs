//! # optimus-llm — token-level LLM serving
//!
//! The decoder-workload counterpart to the single-forward-pass inference
//! the rest of the stack models. A request against a GPT-style decoder is
//! not one compute burst: it is a **decode loop** — one prefill pass over
//! the prompt, then one iteration per output token, each iteration
//! streaming the full weight tensor (autoregressive decoding is
//! memory-bandwidth-bound). That structure is what makes the paper's
//! transformation thesis bite at LLM scale, and it changes scheduling:
//!
//! - **Iteration-level continuous batching** ([`TokenEngine`]): new
//!   requests join a running batch at the next iteration boundary (Orca's
//!   insight) instead of waiting for the whole loop to drain, amortizing
//!   the shared weight sweep across the batch.
//! - **Analytic virtual time** ([`LlmConfig::iter_seconds`]): while batch
//!   membership is fixed every iteration takes the same time, so the
//!   engine advances loop-free between membership changes and stays
//!   bit-deterministic — the simulator's reports remain byte-identical
//!   at any thread count.
//!
//! The model-state side of the story (KV caches carried across
//! transformations) lives in `optimus-model::KvCache` and
//! `optimus-core::plan_kv_transform`; this crate only prices and
//! schedules the token loop. `optimus-sim` wires the engine into its
//! serving paths behind `SimConfig::llm` (off = byte-identical legacy
//! behavior), and `exp_llm_transform` is the payoff experiment.

mod config;
mod engine;
mod report;

pub use config::LlmConfig;
pub use engine::{Admission, Patch, TokenEngine};
pub use report::LlmReport;
