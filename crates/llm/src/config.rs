//! LLM workload configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the token-level decode workload.
///
/// The cost model is iteration-structured: decoding one token for a batch
/// of `b` sequences costs
///
/// ```text
/// iter(b) = token_base_s                      // kernel-launch floor
///         + model_bytes / token_bytes_per_s   // one weight sweep, SHARED
///         + b · token_per_seq_s               // per-sequence attention/FFN
/// ```
///
/// The middle term is why continuous batching matters for multi-GB
/// decoders: autoregressive decoding is memory-bandwidth-bound, every
/// iteration streams the entire weight tensor once *regardless of batch
/// size*, so a request that joins a running batch amortizes the sweep
/// instead of paying it alone. A sequence's first iteration additionally
/// pays `prefill_tokens · prefill_token_s` (prompt processing is
/// compute-bound and per-sequence).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Maximum sequences decoding concurrently in one container.
    pub max_batch: usize,
    /// Prompt length in tokens (prefill work per admitted sequence).
    pub prefill_tokens: usize,
    /// Minimum output length drawn per request.
    pub min_decode_tokens: usize,
    /// Maximum output length drawn per request (inclusive).
    pub max_decode_tokens: usize,
    /// Seed for the per-request output-length draw.
    pub seed: u64,
    /// Fixed per-iteration overhead in seconds.
    pub token_base_s: f64,
    /// Weight-streaming bandwidth in bytes/s: each iteration reads the
    /// model once at this rate, shared across the whole batch.
    pub token_bytes_per_s: f64,
    /// Per-sequence per-iteration compute in seconds.
    pub token_per_seq_s: f64,
    /// Per-prompt-token prefill compute in seconds (applies once, to the
    /// sequence's first iteration).
    pub prefill_token_s: f64,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            max_batch: 8,
            prefill_tokens: 512,
            min_decode_tokens: 32,
            max_decode_tokens: 128,
            seed: 42,
            // ~A100-class numbers: 10 µs launch floor, 1.5 TB/s effective
            // weight bandwidth, 100 µs/seq of batched per-token compute,
            // 20 µs per prompt token of prefill.
            token_base_s: 1e-5,
            token_bytes_per_s: 1.5e12,
            token_per_seq_s: 1e-4,
            prefill_token_s: 2e-5,
        }
    }
}

impl LlmConfig {
    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".to_string());
        }
        if self.min_decode_tokens == 0 {
            return Err("min_decode_tokens must be at least 1".to_string());
        }
        if self.max_decode_tokens < self.min_decode_tokens {
            return Err(format!(
                "max_decode_tokens {} < min_decode_tokens {}",
                self.max_decode_tokens, self.min_decode_tokens
            ));
        }
        for (name, v) in [
            ("token_base_s", self.token_base_s),
            ("token_bytes_per_s", self.token_bytes_per_s),
            ("token_per_seq_s", self.token_per_seq_s),
            ("prefill_token_s", self.prefill_token_s),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        Ok(())
    }

    /// Deterministic output length for the request with this arrival
    /// index: a splitmix64 draw in `min..=max`, so the same seed always
    /// yields the same decode-loop lengths at any thread count.
    pub fn decode_tokens(&self, index: u64) -> usize {
        let span = (self.max_decode_tokens - self.min_decode_tokens + 1) as u64;
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        self.min_decode_tokens + (z % span) as usize
    }

    /// One decode iteration's wall-clock for a batch of `batch` sequences
    /// of which `prefilling` are running their admission iteration.
    pub fn iter_seconds(&self, model_bytes: u64, batch: usize, prefilling: usize) -> f64 {
        self.token_base_s
            + model_bytes as f64 / self.token_bytes_per_s
            + batch as f64 * self.token_per_seq_s
            + prefilling as f64 * self.prefill_tokens as f64 * self.prefill_token_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(LlmConfig::default().validate(), Ok(()));
    }

    #[test]
    fn decode_tokens_are_deterministic_and_in_range() {
        let cfg = LlmConfig::default();
        for i in 0..1000 {
            let n = cfg.decode_tokens(i);
            assert!(n >= cfg.min_decode_tokens && n <= cfg.max_decode_tokens);
            assert_eq!(n, cfg.decode_tokens(i), "same index, same draw");
        }
        // The draw actually spreads over the range.
        let distinct: std::collections::HashSet<_> =
            (0..1000).map(|i| cfg.decode_tokens(i)).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn weight_sweep_is_shared_across_the_batch() {
        let cfg = LlmConfig::default();
        let bytes = 13_400_000_000; // ~6.7B fp16
        let solo = cfg.iter_seconds(bytes, 1, 0);
        let eight = cfg.iter_seconds(bytes, 8, 0);
        // Eight sequences cost nowhere near eight solo iterations.
        assert!(eight < 2.0 * solo, "eight {eight} vs solo {solo}");
        // Per-token throughput improves with batching.
        assert!(eight / 8.0 < solo);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = LlmConfig {
            max_batch: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = LlmConfig::default();
        c.max_decode_tokens = c.min_decode_tokens - 1;
        assert!(c.validate().is_err());
        let c = LlmConfig {
            token_bytes_per_s: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
