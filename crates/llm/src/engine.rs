//! Iteration-level continuous batching over virtual time.
//!
//! A decode loop is a sequence of fixed-membership iterations: while the
//! batch composition is constant, every iteration takes the same time
//! ([`LlmConfig::iter_seconds`]), so the loop advances analytically —
//! no per-token event queue. New sequences join at the next iteration
//! boundary (Orca-style iteration-level scheduling): the engine commits
//! the in-flight iteration with its old membership, admits the joiner,
//! and re-projects every live sequence's first-token and finish times
//! under the grown batch. The caller patches its records with the
//! returned [`Patch`]es — times quoted earlier assumed the smaller batch
//! and are now stale.
//!
//! Everything is deterministic f64 arithmetic over virtual time; the same
//! admission sequence always produces bit-identical projections.

use std::collections::HashMap;

use crate::config::LlmConfig;

/// One live sequence of a container's decode batch.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Seq {
    /// Caller's request key (the simulator's record index).
    req: u64,
    /// Output tokens still to emit (each iteration emits one).
    remaining: usize,
    /// Whether the next iteration is this sequence's admission iteration
    /// (and therefore pays the prefill surcharge).
    prefilling: bool,
    /// Committed first-token time, once the admission iteration is done.
    first_token: Option<f64>,
}

/// Decode state of one container: the committed iteration boundary plus
/// the live batch.
#[derive(Debug, Clone, PartialEq)]
struct DecodeState {
    /// Last committed iteration boundary (virtual seconds).
    t: f64,
    /// Weight bytes streamed per iteration.
    model_bytes: u64,
    /// Live batch.
    seqs: Vec<Seq>,
}

impl DecodeState {
    fn prefilling(&self) -> usize {
        self.seqs.iter().filter(|s| s.prefilling).count()
    }
}

/// What a newly admitted sequence was quoted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// Iteration boundary the sequence joined at (its queueing delay
    /// inside the container is `admitted_at - arrival`).
    pub admitted_at: f64,
    /// Projected first-token time (end of the prefill iteration).
    pub first_token: f64,
    /// Projected last-token time of this sequence.
    pub finish: f64,
    /// Projected last-token time across the whole batch — the
    /// container's new `busy_until`.
    pub batch_busy_until: f64,
    /// Batch size right after admission.
    pub batch_size: usize,
}

/// A revised projection for a previously admitted sequence, produced when
/// a later join slowed its iterations down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Patch {
    /// The sequence's request key.
    pub req: u64,
    /// Revised first-token time (unchanged if already committed).
    pub first_token: f64,
    /// Revised last-token time.
    pub finish: f64,
}

/// The token-level scheduler: per-container decode batches advancing over
/// virtual time with iteration-boundary admission.
#[derive(Debug, Clone, Default)]
pub struct TokenEngine {
    cfg: LlmConfig,
    states: HashMap<u64, DecodeState>,
}

impl TokenEngine {
    /// Engine with the given workload configuration.
    pub fn new(cfg: LlmConfig) -> Self {
        TokenEngine {
            cfg,
            states: HashMap::new(),
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &LlmConfig {
        &self.cfg
    }

    /// Commit every iteration of `container` ending at or before `to`.
    fn advance(state: &mut DecodeState, cfg: &LlmConfig, to: f64) {
        while !state.seqs.is_empty() {
            let it = cfg.iter_seconds(state.model_bytes, state.seqs.len(), state.prefilling());
            let end = state.t + it;
            if end > to {
                break;
            }
            Self::commit_iteration(state, end);
        }
    }

    /// Apply one iteration ending at `end`: every sequence emits a token.
    fn commit_iteration(state: &mut DecodeState, end: f64) {
        for s in &mut state.seqs {
            s.prefilling = false;
            if s.first_token.is_none() {
                s.first_token = Some(end);
            }
            s.remaining -= 1;
        }
        state.seqs.retain(|s| s.remaining > 0);
        state.t = end;
    }

    /// Run a cloned state to empty, yielding `(req, first_token, finish)`
    /// for every live sequence — exact, assuming no further joins.
    fn project(state: &DecodeState, cfg: &LlmConfig) -> Vec<(u64, f64, f64)> {
        let mut sim = state.clone();
        let mut done: Vec<(u64, f64, f64)> = Vec::new();
        while !sim.seqs.is_empty() {
            let it = cfg.iter_seconds(sim.model_bytes, sim.seqs.len(), sim.prefilling());
            let end = sim.t + it;
            let before = sim.seqs.clone();
            Self::commit_iteration(&mut sim, end);
            for s in &before {
                if s.remaining == 1 {
                    let ft = s.first_token.unwrap_or(end);
                    done.push((s.req, ft, end));
                }
            }
        }
        done
    }

    /// The live batch size of `container` at `now`, if one more sequence
    /// may join it (advances past completed iterations first). `None`
    /// when the container runs no decode batch or the batch is full.
    pub fn joinable(&mut self, container: u64, now: f64) -> Option<usize> {
        let state = self.states.get_mut(&container)?;
        Self::advance(state, &self.cfg, now);
        if state.seqs.is_empty() {
            self.states.remove(&container);
            return None;
        }
        let n = state.seqs.len();
        (n < self.cfg.max_batch).then_some(n)
    }

    /// Start a fresh decode batch on `container` at `start` (a cold or
    /// warm-but-idle container: any previous batch has drained). The
    /// sequence emits `tokens` output tokens.
    pub fn begin(
        &mut self,
        container: u64,
        model_bytes: u64,
        start: f64,
        req: u64,
        tokens: usize,
    ) -> Admission {
        self.states.insert(
            container,
            DecodeState {
                t: start,
                model_bytes,
                seqs: Vec::new(),
            },
        );
        let (adm, patches) = self.admit_at(container, start, req, tokens);
        debug_assert!(patches.is_empty());
        adm
    }

    /// Join `container`'s running batch at the next iteration boundary
    /// after `now`. The caller must have checked [`TokenEngine::joinable`].
    /// Returns the admission quote plus revised projections for every
    /// other live sequence.
    pub fn join(
        &mut self,
        container: u64,
        now: f64,
        req: u64,
        tokens: usize,
    ) -> (Admission, Vec<Patch>) {
        let state = self.states.get_mut(&container).expect("joinable batch");
        Self::advance(state, &self.cfg, now);
        // The join boundary: the end of the in-flight iteration — or `now`
        // (resp. the batch's future start) when no iteration is running.
        let boundary = if state.seqs.is_empty() || state.t >= now {
            state.t.max(now)
        } else {
            let it = self
                .cfg
                .iter_seconds(state.model_bytes, state.seqs.len(), state.prefilling());
            state.t + it
        };
        self.admit_at(container, boundary, req, tokens)
    }

    /// Shared admission tail: commit up to `boundary`, push the sequence,
    /// re-project the grown batch.
    fn admit_at(
        &mut self,
        container: u64,
        boundary: f64,
        req: u64,
        tokens: usize,
    ) -> (Admission, Vec<Patch>) {
        let state = self.states.get_mut(&container).expect("decode state");
        Self::advance(state, &self.cfg, boundary);
        if state.seqs.is_empty() {
            state.t = state.t.max(boundary);
        }
        debug_assert!(tokens > 0, "a decode loop emits at least one token");
        state.seqs.push(Seq {
            req,
            remaining: tokens,
            prefilling: true,
            first_token: None,
        });
        let batch_size = state.seqs.len();
        let projected = Self::project(state, &self.cfg);
        let batch_busy_until = projected
            .iter()
            .map(|&(_, _, f)| f)
            .fold(boundary, f64::max);
        let mut admission = None;
        let mut patches = Vec::new();
        for (r, ft, fin) in projected {
            if r == req {
                admission = Some(Admission {
                    admitted_at: boundary,
                    first_token: ft,
                    finish: fin,
                    batch_busy_until,
                    batch_size,
                });
            } else {
                patches.push(Patch {
                    req: r,
                    first_token: ft,
                    finish: fin,
                });
            }
        }
        (admission.expect("admitted sequence projects"), patches)
    }

    /// Drop `container`'s decode state (the container was killed or
    /// repurposed to a non-LLM function).
    pub fn forget(&mut self, container: u64) {
        self.states.remove(&container);
    }

    /// Number of containers with live decode state.
    pub fn active_containers(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LlmConfig {
        LlmConfig {
            max_batch: 4,
            prefill_tokens: 100,
            min_decode_tokens: 4,
            max_decode_tokens: 4,
            seed: 1,
            token_base_s: 0.001,
            token_bytes_per_s: 1e9,
            token_per_seq_s: 0.001,
            prefill_token_s: 0.0001,
        }
    }

    #[test]
    fn solo_decode_times_are_analytic() {
        let c = cfg();
        let mut e = TokenEngine::new(c);
        // model 1e9 B → 1 s sweep; batch 1 → iter = 0.001 + 1.0 + 0.001
        // = 1.002 s; prefill adds 100 × 0.0001 = 0.01 s to iteration 1.
        let adm = e.begin(7, 1_000_000_000, 10.0, 0, 4);
        assert_eq!(adm.admitted_at, 10.0);
        assert!((adm.first_token - (10.0 + 1.012)).abs() < 1e-9);
        assert!((adm.finish - (10.0 + 1.012 + 3.0 * 1.002)).abs() < 1e-9);
        assert_eq!(adm.batch_busy_until, adm.finish);
        assert_eq!(adm.batch_size, 1);
    }

    #[test]
    fn join_waits_for_the_iteration_boundary_and_patches() {
        let c = cfg();
        let mut e = TokenEngine::new(c);
        let first = e.begin(1, 1_000_000_000, 0.0, 0, 4);
        // Join mid-first-iteration (t = 0.5; iteration 1 ends at 1.012).
        assert_eq!(e.joinable(1, 0.5), Some(1));
        let (second, patches) = e.join(1, 0.5, 1, 4);
        assert!((second.admitted_at - 1.012).abs() < 1e-9);
        assert_eq!(second.batch_size, 2);
        // The first sequence's remaining iterations slowed down.
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].req, 0);
        assert!(patches[0].finish > first.finish);
        // Its committed first token is NOT rewritten.
        assert!((patches[0].first_token - first.first_token).abs() < 1e-9);
        // Batched iterations beat two sequential solo loops.
        let sequential = 2.0 * (first.finish - first.admitted_at);
        assert!(second.batch_busy_until < sequential);
    }

    #[test]
    fn batch_cap_blocks_joins() {
        let c = cfg();
        let mut e = TokenEngine::new(c);
        e.begin(1, 1000, 0.0, 0, 4);
        for r in 1..4 {
            assert!(e.joinable(1, 0.0).is_some());
            e.join(1, 0.0, r, 4);
        }
        assert_eq!(e.joinable(1, 0.0), None, "batch full");
    }

    #[test]
    fn drained_batches_are_not_joinable() {
        let c = cfg();
        let mut e = TokenEngine::new(c);
        let adm = e.begin(1, 1000, 0.0, 0, 4);
        assert!(e.joinable(1, adm.finish - 1e-6).is_some());
        assert_eq!(e.joinable(1, adm.finish + 1e-6), None, "loop drained");
        assert_eq!(e.active_containers(), 0, "state reclaimed");
    }

    #[test]
    fn same_boundary_joins_share_the_prefill_iteration() {
        let c = cfg();
        let mut e = TokenEngine::new(c);
        // Batch starts in the future (cold load finishing at t = 5).
        e.begin(1, 1_000_000_000, 5.0, 0, 4);
        // A request arriving during the load joins the FIRST iteration.
        let (adm, _) = e.join(1, 2.0, 1, 4);
        assert_eq!(adm.admitted_at, 5.0);
        // Both prefill in iteration 1: iter = 0.001 + 1.0 + 2·0.001 +
        // 2·0.01 = 1.023; identical first token for both.
        assert!((adm.first_token - 6.023).abs() < 1e-9);
    }

    #[test]
    fn projections_are_deterministic() {
        let run = || {
            let mut e = TokenEngine::new(cfg());
            let a = e.begin(1, 123_456_789, 0.0, 0, 4);
            let (b, p) = e.join(1, 0.4, 1, 3);
            let (c, q) = e.join(1, 0.9, 2, 2);
            (a, b, c, p, q)
        };
        assert_eq!(run(), run());
    }
}
