//! Property tests of the flat-buffer Hungarian kernel: on random square
//! matrices (≤7×7, brute-force-checkable) the flat solver must agree with
//! the retained nested-`Vec` reference implementation and with exhaustive
//! permutation search; at the planner level, [`MunkresPlanner`] must match
//! the [`BruteForcePlanner`] oracle on tiny model pairs.

use optimus_core::{
    solve_assignment, solve_assignment_flat, BruteForcePlanner, CostMatrix, MunkresPlanner,
    MunkresScratch, Planner,
};
use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_profile::{CostModel, CostProvider};
use proptest::prelude::*;

fn total_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum()
}

fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
    let n = cost.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let c = total_cost(cost, p);
        if c < best {
            best = c;
        }
    });
    best
}

/// A tiny conv net with `convs` conv+relu blocks (1 + 2·convs ops), small
/// enough for the factorial brute-force planner.
fn tiny_model(name: &str, convs: usize, channels: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for _ in 0..convs {
        x = b.conv2d_after(x, ch, channels, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = channels;
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flat kernel == nested reference == exhaustive optimum, on random
    /// matrices up to 7×7.
    #[test]
    fn flat_solver_matches_nested_and_brute_force(
        n in 1usize..=7,
        vals in prop::collection::vec(0.0f64..100.0, 49),
    ) {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| vals[i * n..(i + 1) * n].to_vec())
            .collect();
        let flat: Vec<f64> = vals[..n * n].to_vec();
        let nested_assignment = solve_assignment(&cost);
        let mut scratch = MunkresScratch::new();
        let flat_assignment = solve_assignment_flat(&flat, n, &mut scratch).to_vec();
        // Both must be permutations of 0..n.
        let mut seen = vec![false; n];
        for &j in &flat_assignment {
            prop_assert!(j < n && !seen[j], "flat output is not a permutation");
            seen[j] = true;
        }
        let nested_cost = total_cost(&cost, &nested_assignment);
        let flat_cost = total_cost(&cost, &flat_assignment);
        let optimal = brute_force_min(&cost);
        prop_assert!((flat_cost - nested_cost).abs() < 1e-9,
            "flat {flat_cost} vs nested {nested_cost}");
        prop_assert!((flat_cost - optimal).abs() < 1e-9,
            "flat {flat_cost} vs optimal {optimal}");
    }

    /// Sentinel-laden matrices (forbidden assignments) are handled
    /// identically by both kernels.
    #[test]
    fn flat_solver_handles_sentinels(
        n in 2usize..=6,
        vals in prop::collection::vec(0.0f64..50.0, 36),
        mask in prop::collection::vec(0u8..4, 36),
    ) {
        const BIG: f64 = 1.0e9;
        // Forbid ~1/4 of the cells but keep the diagonal finite so a
        // finite assignment always exists.
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i != j && mask[i * n + j] == 0 {
                            BIG
                        } else {
                            vals[i * n + j]
                        }
                    })
                    .collect()
            })
            .collect();
        let flat: Vec<f64> = cost.iter().flat_map(|r| r.iter().copied()).collect();
        let nested_assignment = solve_assignment(&cost);
        let mut scratch = MunkresScratch::new();
        let flat_assignment = solve_assignment_flat(&flat, n, &mut scratch).to_vec();
        let a = total_cost(&cost, &nested_assignment);
        let b = total_cost(&cost, &flat_assignment);
        prop_assert!((a - b).abs() < 1e-6, "nested {a} vs flat {b}");
    }

}

proptest! {
    // The factorial oracle is expensive (k! permutations per case); keep
    // the case count small and the pairs at k = n + m ≤ 8.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Munkres planner (flat kernel) stays optimal against the
    /// factorial brute-force oracle on tiny model pairs.
    ///
    /// The exact equality holds on the Riesen–Bunke matrix, where both
    /// search: the flat kernel's assignment cost must equal the
    /// exhaustive permutation minimum. Assembled plan totals additionally
    /// include edge-reconciliation steps, which depend on how matrix-cost
    /// ties are broken, so they are compared with edge-cost slack.
    #[test]
    fn munkres_planner_matches_brute_force_oracle(
        shape in prop::sample::select(vec![(1usize, 1usize), (1, 2), (2, 1)]),
        src_ch in 4usize..=16,
        dst_ch in 4usize..=16,
    ) {
        let (src_convs, dst_convs) = shape;
        let src = tiny_model("src", src_convs, src_ch);
        let dst = tiny_model("dst", dst_convs, dst_ch);
        let cost = CostModel::default();
        // Kernel-level optimality on the real edit matrix.
        let matrix = CostMatrix::build(&src, &dst, &cost);
        let k = matrix.dim();
        let nested = matrix.to_nested();
        let mut scratch = MunkresScratch::new();
        let assignment = solve_assignment_flat(&matrix.costs, k, &mut scratch).to_vec();
        let kernel_cost = total_cost(&nested, &assignment);
        let optimal = brute_force_min(&nested);
        prop_assert!(
            (kernel_cost - optimal).abs() < 1e-9,
            "kernel {kernel_cost} vs exhaustive {optimal}"
        );
        // Plan-level agreement up to edge tie-breaking.
        let munkres = MunkresPlanner.plan(&src, &dst, &cost);
        let oracle = BruteForcePlanner.plan(&src, &dst, &cost);
        let edge_slack =
            cost.edge_cost() * (src.edges().count() + dst.edges().count() + 1) as f64;
        prop_assert!(
            (munkres.cost.total() - oracle.cost.total()).abs() <= edge_slack + 1e-9,
            "munkres {} vs oracle {} (slack {edge_slack})",
            munkres.cost.total(),
            oracle.cost.total()
        );
    }
}
