//! Planner integration tests on real zoo models: optimality, the paper's
//! Figure 11 relations, and Table 1's planning-latency contrast.

use optimus_core::{
    execute_plan, BruteForcePlanner, GroupPlanner, MunkresPlanner, NaivePlanner, Planner,
};
use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_profile::{CostModel, CostProvider};

fn chain(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 16, 16]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    b.finish().unwrap()
}

#[test]
fn munkres_matches_brute_force_oracle() {
    let cost = CostModel::default();
    // n + m <= 10 total ops across both graphs.
    let cases = [
        (chain("a", &[8]), chain("b", &[16])),    // 3 + 3
        (chain("a", &[8, 16]), chain("b", &[8])), // 5 + 3
        (chain("a", &[4]), chain("b", &[4, 8])),  // 3 + 5
    ];
    for (src, dst) in cases {
        let optimal = BruteForcePlanner.plan(&src, &dst, &cost);
        let munkres = MunkresPlanner.plan(&src, &dst, &cost);
        // The edit-cost matrix (like the paper's Eq. 1) excludes Edge costs,
        // which are negligible; equal-cost assignments may differ in edge
        // steps, so compare the op-level cost exactly and the total loosely.
        let op_cost = |p: &optimus_core::TransformPlan| p.cost.total() - p.cost.edge;
        assert!(
            (op_cost(&munkres) - op_cost(&optimal)).abs() < 1e-9,
            "{}→{}: munkres {} vs optimal {}",
            src.name(),
            dst.name(),
            munkres.cost.total(),
            optimal.cost.total()
        );
    }
}

#[test]
fn group_planner_is_near_optimal_on_real_models() {
    // Table 1's claim: the improved algorithm reaches a "nearly optimal"
    // solution. Compare on real model pairs.
    let cost = CostModel::default();
    let cases = [
        (optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()),
        (
            optimus_zoo::resnet::resnet18(),
            optimus_zoo::resnet::resnet34(),
        ),
        (optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg13()),
    ];
    for (src, dst) in cases {
        let optimal = MunkresPlanner.plan(&src, &dst, &cost);
        let group = GroupPlanner.plan(&src, &dst, &cost);
        let ratio = group.cost.total() / optimal.cost.total().max(1e-12);
        assert!(
            ratio < 1.25,
            "{}→{}: group/optimal cost ratio {ratio:.3}",
            src.name(),
            dst.name()
        );
        assert!(
            ratio >= 1.0 - 1e-9,
            "group cannot beat the optimum: {ratio}"
        );
    }
}

#[test]
fn group_planner_is_far_faster_than_munkres() {
    // Table 1: planning latency drops by ~99.99% from basic to improved.
    // Compare wall-clock planning on a large pair; require >= 10x.
    let cost = CostModel::default();
    let src = optimus_zoo::vgg::vgg16();
    let dst = optimus_zoo::resnet::resnet50();
    let basic = MunkresPlanner.plan(&src, &dst, &cost);
    let improved = GroupPlanner.plan(&src, &dst, &cost);
    assert!(
        basic.planning_seconds > 10.0 * improved.planning_seconds,
        "basic {:.6}s vs improved {:.6}s",
        basic.planning_seconds,
        improved.planning_seconds
    );
    // Execution latency of the two plans stays comparable (Table 1).
    let ratio = improved.cost.total() / basic.cost.total();
    assert!(
        (0.95..=1.3).contains(&ratio),
        "execution cost ratio {ratio:.3}"
    );
}

#[test]
fn figure11_same_family_cheaper_than_cross_family() {
    let cost = CostModel::default();
    let vgg16 = optimus_zoo::vgg::vgg16();
    let vgg19 = optimus_zoo::vgg::vgg19();
    let resnet50 = optimus_zoo::resnet::resnet50();
    let within = GroupPlanner.plan(&vgg16, &vgg19, &cost).cost.total();
    let across = GroupPlanner.plan(&resnet50, &vgg19, &cost).cost.total();
    assert!(
        within < across,
        "vgg16→vgg19 {within:.3}s !< resnet50→vgg19 {across:.3}s"
    );
}

#[test]
fn figure11_weight_variant_transform_is_cheapest() {
    // Same structure, different weights (the diagonal of Figure 11) only
    // needs Replace and beats any structural transformation.
    let cost = CostModel::default();
    let a = optimus_zoo::vgg::vgg_scaled(16, 1.0, 0);
    let b = optimus_zoo::vgg::vgg_scaled(16, 1.0, 1);
    let diag = GroupPlanner.plan(&a, &b, &cost);
    assert_eq!(diag.cost.n_reshape, 0);
    assert_eq!(diag.cost.n_add, 0);
    assert_eq!(diag.cost.n_reduce, 0);
    let structural = GroupPlanner
        .plan(&a, &optimus_zoo::vgg::vgg19(), &cost)
        .cost
        .total();
    assert!(diag.cost.total() < structural);
}

#[test]
fn figure11_transformation_latency_is_asymmetric() {
    // §8.2: transforming large→small is commonly faster than small→large.
    let cost = CostModel::default();
    let small = optimus_zoo::resnet::resnet50();
    let large = optimus_zoo::resnet::resnet101();
    let down = GroupPlanner.plan(&large, &small, &cost).cost.total();
    let up = GroupPlanner.plan(&small, &large, &cost).cost.total();
    assert!(down < up, "r101→r50 {down:.3}s !< r50→r101 {up:.3}s");
}

#[test]
fn figure15_direction_determines_meta_op_mix() {
    // ResNet50→ResNet101 needs Adds (more convs in the destination);
    // ResNet101→ResNet50 needs Reduces and no Adds.
    let cost = CostModel::default();
    let r50 = optimus_zoo::resnet::resnet50();
    let r101 = optimus_zoo::resnet::resnet101();
    let up = GroupPlanner.plan(&r50, &r101, &cost);
    let down = GroupPlanner.plan(&r101, &r50, &cost);
    assert!(up.cost.n_add > 0, "upscaling must add operations");
    assert_eq!(down.cost.n_add, 0, "downscaling must not add operations");
    assert!(down.cost.n_reduce > 0, "downscaling must reduce operations");
}

#[test]
fn transformation_beats_scratch_load_within_family() {
    // Figure 11/12: transformation reduces loading latency dramatically —
    // up to 99.08% — for structurally similar models.
    let cost = CostModel::default();
    let pairs = [
        (optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()),
        (
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::resnet::resnet101(),
        ),
        (
            optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
            optimus_zoo::mobilenet::mobilenet_v1(0.75, 0),
        ),
    ];
    for (src, dst) in pairs {
        let plan = GroupPlanner.plan(&src, &dst, &cost).cost.total();
        let load = cost.model_load_cost(&dst);
        assert!(
            plan < load,
            "{}→{}: plan {plan:.3}s !< load {load:.3}s",
            src.name(),
            dst.name()
        );
    }
    // The weight-variant case reaches the paper's ~99% territory.
    let a = optimus_zoo::resnet::resnet_scaled(50, 1.0, 0);
    let b = optimus_zoo::resnet::resnet_scaled(50, 1.0, 1);
    let plan = GroupPlanner.plan(&a, &b, &cost).cost.total();
    let load = cost.model_load_cost(&b);
    assert!(
        plan / load < 0.1,
        "weight-variant reduction only {:.1}%",
        100.0 * (1.0 - plan / load)
    );
}

#[test]
fn bert_transformations_are_cheap_within_family() {
    use optimus_zoo::{bert, BertConfig, BertSize, BertTask, BertVocab};
    let cost = CostModel::default();
    let base = bert::bert(BertConfig::new(BertSize::Base));
    let mini = bert::bert(BertConfig::new(BertSize::Mini));
    // §5.2 Example 1: Base → Mini reshapes + reduces.
    let plan = GroupPlanner.plan(&base, &mini, &cost);
    assert!(plan.cost.n_reduce > 0);
    assert!(plan.cost.total() < cost.model_load_cost(&mini));
    // §5.2 Example 2: SC → QA adds a fully connected layer.
    let sc = bert::bert(BertConfig::new(BertSize::Base).task(BertTask::SequenceClassification));
    let qa = bert::bert(BertConfig::new(BertSize::Base).task(BertTask::QuestionAnswering));
    let plan = GroupPlanner.plan(&sc, &qa, &cost);
    assert!(plan.cost.n_add >= 1, "SC→QA adds an FC layer");
    assert!(plan.cost.total() < 0.2 * cost.model_load_cost(&qa));
    // §5.2 Case 1: Cased ↔ Uncased reshapes the embedding.
    let cased = bert::bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Cased));
    let uncased = bert::bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Uncased));
    let plan = GroupPlanner.plan(&cased, &uncased, &cost);
    assert!(
        plan.cost.n_reshape >= 1,
        "vocab change reshapes the embedding"
    );
    assert!(plan.cost.total() < cost.model_load_cost(&uncased));
}

#[test]
fn cross_paradigm_transform_costs_more_than_loading() {
    // §8.2: CNN↔transformer transformation always loses to loading, which
    // is why the safeguard always picks loading there.
    let cost = CostModel::default();
    let cnn = optimus_zoo::resnet::resnet50();
    let bert = optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Base));
    let plan = GroupPlanner.plan(&cnn, &bert, &cost).cost.total();
    let load = cost.model_load_cost(&bert);
    assert!(
        plan > 0.9 * load,
        "cross-paradigm plan {plan:.3}s vs load {load:.3}s"
    );
}

#[test]
fn naive_planner_is_strictly_worse_within_family() {
    let cost = CostModel::default();
    let src = optimus_zoo::vgg::vgg16();
    let dst = optimus_zoo::vgg::vgg19();
    let naive = NaivePlanner.plan(&src, &dst, &cost).cost.total();
    let group = GroupPlanner.plan(&src, &dst, &cost).cost.total();
    assert!(
        group < 0.5 * naive,
        "group {group:.3}s vs naive {naive:.3}s"
    );
}

#[test]
fn real_model_plans_execute_and_verify() {
    let cost = CostModel::default();
    let cases = [
        (optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()),
        (
            optimus_zoo::resnet::resnet18(),
            optimus_zoo::resnet::resnet34(),
        ),
        (
            optimus_zoo::mobilenet::mobilenet_v1(0.5, 0),
            optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        ),
        (
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ),
    ];
    for (src, dst) in cases {
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let mut g = src.clone();
        let report = execute_plan(&mut g, &plan, &dst)
            .unwrap_or_else(|e| panic!("{}→{}: {e}", src.name(), dst.name()));
        assert!(report.verified, "{}→{}", src.name(), dst.name());
    }
}

#[test]
fn branchy_architectures_transform_and_execute() {
    // DenseNet (concat fan-in), Inception (4-way branches) and NAS-Bench
    // cells (residual sums) stress the Edge reconciliation path.
    let cost = CostModel::default();
    let cases = [
        (
            optimus_zoo::densenet::densenet121(),
            optimus_zoo::densenet::densenet169(),
        ),
        (
            optimus_zoo::inception::inception_v1(),
            optimus_zoo::inception::inception_variant(1),
        ),
        (
            optimus_zoo::nasbench_model(123),
            optimus_zoo::nasbench_model(9_876),
        ),
        (
            optimus_zoo::densenet::densenet121(),
            optimus_zoo::inception::inception_v1(),
        ),
    ];
    for (src, dst) in cases {
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let mut g = src.clone();
        let report = execute_plan(&mut g, &plan, &dst)
            .unwrap_or_else(|e| panic!("{}→{}: {e}", src.name(), dst.name()));
        assert!(report.verified, "{}→{}", src.name(), dst.name());
    }
}

#[test]
fn nasbench_transformations_are_cheap() {
    // Figure 12(c): NAS-Bench models share the macro skeleton, so
    // transformations cost a fraction of loading.
    let cost = CostModel::default();
    let mut total_ratio = 0.0;
    let n = 10;
    for i in 0..n {
        let src = optimus_zoo::nasbench_model(1_000 + 997 * i);
        let dst = optimus_zoo::nasbench_model(2_000 + 1_499 * i);
        let plan = GroupPlanner.plan(&src, &dst, &cost).cost.total();
        let load = cost.model_load_cost(&dst);
        total_ratio += (plan / load).min(1.0);
    }
    let mean = total_ratio / n as f64;
    assert!(mean < 0.6, "mean transform/load ratio {mean:.3}");
}
