//! Property tests of the KV-cache state meta-operators: on arbitrary
//! cache shapes a transform round-trips to valid shapes, the byte
//! accounting partitions the destination exactly like the
//! fetched/reused chunk split of `plan_chunks`, and a same-spec
//! transform is the identity. On real GPT sibling pairs the weight-side
//! and state-side accountings are checked together.

use optimus_core::{plan_chunks, plan_kv_transform, GroupPlanner, KvMetaOp, Planner};
use optimus_model::{KvCache, KvCacheSpec};
use optimus_profile::CostModel;
use optimus_store::DEFAULT_CHUNK_BYTES;
use optimus_zoo::{gpt, GptConfig, GptSize};
use proptest::prelude::*;

/// Arbitrary decoder cache shapes: power-of-two head counts (as real
/// decoders use) over a spread of layer counts, head dims and context
/// windows.
fn arb_spec() -> impl Strategy<Value = KvCacheSpec> {
    (1usize..=48, 0u32..=5, 1usize..=16, 1usize..=4096).prop_map(
        |(layers, head_pow, head_dim, context)| {
            KvCacheSpec::new(layers, 1 << head_pow, head_dim, context)
        },
    )
}

/// GPT siblings along the context and depth axes (the transform pairs
/// `exp_llm_transform` exercises, scaled down).
fn sibling_configs() -> Vec<GptConfig> {
    vec![
        GptConfig::new(GptSize::G125M),
        GptConfig::new(GptSize::G125M).context(256),
        GptConfig::new(GptSize::G125M).context(2048),
        GptConfig::new(GptSize::G350M),
        GptConfig::new(GptSize::G350M).context(256),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-trip shape validity: transforming any cache to any
    /// destination spec yields a cache valid for that spec, and
    /// transforming back yields one valid for the source — with the fill
    /// level never growing along the way (a transform can only carry or
    /// drop state, never invent it).
    #[test]
    fn round_trip_shapes_stay_valid(
        src_spec in arb_spec(),
        dst_spec in arb_spec(),
        fill in 0usize..=4096,
    ) {
        let src = KvCache::filled(src_spec, fill);
        let there = plan_kv_transform(&src, &dst_spec);
        let moved = there.apply(&src);
        prop_assert_eq!(moved.spec, dst_spec);
        prop_assert!(moved.filled <= dst_spec.context);
        prop_assert!(moved.filled <= src.filled);
        prop_assert_eq!(moved.filled, there.carried);

        let back = plan_kv_transform(&moved, &src_spec);
        let returned = back.apply(&moved);
        prop_assert_eq!(returned.spec, src_spec);
        prop_assert!(returned.filled <= src.filled);
        // Between row-compatible specs nothing is lost on the way back
        // except positions beyond the smaller window.
        if src_spec.row_compatible(&dst_spec) {
            prop_assert_eq!(
                returned.filled,
                src.filled.min(dst_spec.context).min(src_spec.context)
            );
        }
    }

    /// The byte-accounting partition mirrors `plan_chunks`: carried +
    /// materialized bytes cover the destination reservation exactly, and
    /// carried + dropped bytes cover the live source state exactly.
    #[test]
    fn byte_accounting_partitions_source_and_destination(
        src_spec in arb_spec(),
        dst_spec in arb_spec(),
        fill in 0usize..=4096,
    ) {
        let src = KvCache::filled(src_spec, fill);
        let plan = plan_kv_transform(&src, &dst_spec);
        prop_assert_eq!(
            plan.carried_bytes + plan.materialized_bytes,
            dst_spec.byte_size()
        );
        prop_assert_eq!(plan.carried_bytes + plan.dropped_bytes, src.live_bytes());
        prop_assert_eq!(plan.carried_bytes, dst_spec.bytes_at(plan.carried));
        // Every step kind is accounted: a Drop step exists iff bytes
        // were dropped, a Carry step iff bytes were carried.
        let has_drop = plan.steps.iter().any(|s| matches!(s, KvMetaOp::Drop { .. }));
        let has_carry = plan.steps.iter().any(|s| matches!(s, KvMetaOp::Carry { .. }));
        prop_assert_eq!(has_drop, plan.dropped_bytes > 0);
        prop_assert_eq!(has_carry, plan.carried_bytes > 0);
    }

    /// A same-spec transform is the identity: nothing dropped, no
    /// resize/reshape steps, and `apply` returns the source unchanged.
    #[test]
    fn noop_transform_is_identity(spec in arb_spec(), fill in 0usize..=4096) {
        let src = KvCache::filled(spec, fill);
        let plan = plan_kv_transform(&src, &spec);
        prop_assert!(plan.is_identity());
        prop_assert_eq!(plan.dropped_bytes, 0);
        prop_assert_eq!(plan.apply(&src), src);
        prop_assert_eq!(plan.carried, src.filled);
        // The only reserved bytes to materialize are the empty tail of
        // the (unchanged) window.
        prop_assert_eq!(
            plan.materialized_bytes,
            src.reserved_bytes() - src.live_bytes()
        );
    }
}

proptest! {
    // Each case plans a real decoder pair; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On GPT sibling pairs, the weight-side chunk split and the
    /// state-side KV plan each fully account their destination, and
    /// sibling caches (row-compatible by construction) carry all state
    /// that fits the destination window.
    #[test]
    fn gpt_siblings_account_weights_and_state(
        a in 0usize..5,
        b in 0usize..5,
        fill in 0usize..=2048,
    ) {
        let configs = sibling_configs();
        let src = gpt(configs[a]);
        let dst = gpt(configs[b]);
        let cost = CostModel::default();

        // Weight side: fetched and reused chunks partition the
        // destination's content-addressed chunk set. (The partition is
        // exact at the id level; naive byte sums would double-count
        // content the decoder deduplicates internally, e.g. identical
        // zero-initialized LayerNorm tensors across layers.)
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let split = plan_chunks(&plan, &dst, DEFAULT_CHUNK_BYTES);
        let dst_unique: std::collections::HashMap<_, u64> =
            optimus_store::model_chunks(&dst, DEFAULT_CHUNK_BYTES)
                .into_iter()
                .map(|c| (c.id, c.bytes))
                .collect();
        let fetched_ids: std::collections::HashSet<_> =
            split.fetched.iter().map(|c| c.id).collect();
        let reused_ids: std::collections::HashSet<_> =
            split.reused.iter().map(|c| c.id).collect();
        prop_assert!(fetched_ids.is_disjoint(&reused_ids));
        let union: std::collections::HashSet<_> =
            fetched_ids.union(&reused_ids).copied().collect();
        let dst_ids: std::collections::HashSet<_> = dst_unique.keys().copied().collect();
        prop_assert_eq!(union, dst_ids);
        let reused_unique: u64 = dst_unique
            .iter()
            .filter(|(id, _)| reused_ids.contains(id))
            .map(|(_, b)| b)
            .sum();
        let unique_total: u64 = dst_unique.values().sum();
        prop_assert_eq!(split.fetched_bytes() + reused_unique, unique_total);

        // State side: the KV plan partitions the destination reservation.
        let src_kv = KvCacheSpec::of_model(&src).expect("decoders have KV specs");
        let dst_kv = KvCacheSpec::of_model(&dst).expect("decoders have KV specs");
        let cache = KvCache::filled(src_kv, fill);
        let kv = plan_kv_transform(&cache, &dst_kv);
        prop_assert_eq!(kv.carried_bytes + kv.materialized_bytes, dst_kv.byte_size());
        prop_assert_eq!(kv.carried_bytes + kv.dropped_bytes, cache.live_bytes());
        // Same-size siblings differ only in context length: their caches
        // are row-compatible and all live state within the destination
        // window survives.
        if configs[a].size == configs[b].size {
            prop_assert!(src_kv.row_compatible(&dst_kv));
            prop_assert_eq!(kv.carried, cache.filled.min(dst_kv.context));
        }
    }
}
