//! Sharded plan-cache contracts: for any catalog and any shard count the
//! sharded decide path must be byte-identical to a single-map oracle that
//! re-derives every decision from the planner directly, and readers must
//! never stall behind a concurrent bulk registration (the lock-striped
//! design's whole point).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use optimus_core::{GroupPlanner, ModelRepository, Planner};
use optimus_model::ModelGraph;
use optimus_profile::{CostModel, CostProvider};
use proptest::prelude::*;

/// A small, cheap-to-plan NASBench architecture (one cell per stage).
fn nas(index: u64) -> ModelGraph {
    optimus_zoo::nasbench::nasbench_model_sized(index, 1, 0)
}

/// The pre-shard oracle: one flat map, decisions recomputed from the
/// planner itself. `(name → (load, name → plan_total))` mirrors exactly
/// what the old single-`HashMap` repository stored.
struct FlatOracle {
    load: HashMap<String, f64>,
    plan_total: HashMap<(String, String), f64>,
}

impl FlatOracle {
    fn build(models: &[ModelGraph], cost: &CostModel) -> FlatOracle {
        let mut load = HashMap::new();
        let mut plan_total = HashMap::new();
        for m in models {
            load.insert(m.name().to_string(), cost.model_load_cost(m));
        }
        for src in models {
            for dst in models {
                if src.name() == dst.name() {
                    continue;
                }
                let plan = GroupPlanner.plan(src, dst, cost);
                plan_total.insert(
                    (src.name().to_string(), dst.name().to_string()),
                    plan.cost.total(),
                );
            }
        }
        FlatOracle { load, plan_total }
    }

    /// `(is_transform, latency)` for `src → dst`, replicating the
    /// repository's safeguard (ratio 1.0, no overrun demotions).
    fn decide(&self, src: &str, dst: &str) -> (bool, f64) {
        let load = self.load[dst];
        match self.plan_total.get(&(src.to_string(), dst.to_string())) {
            Some(&total) if total <= load => (true, total),
            _ => (false, load),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any catalog, any shard count: every directed pair's decision —
    /// branch *and* exact latency bits — matches the flat single-map
    /// oracle.
    #[test]
    fn sharded_decisions_match_flat_oracle(
        indices in prop::collection::vec(prop::sample::select(
            vec![0u64, 3, 77, 341, 1_029, 5_000, 9_431, 15_624]), 2..6),
        shards in prop::sample::select(vec![1usize, 2, 4, 8, 32]),
    ) {
        // Dedup while keeping first-seen order, like the repository does.
        let mut seen = std::collections::HashSet::new();
        let models: Vec<ModelGraph> = indices
            .into_iter()
            .filter(|i| seen.insert(*i))
            .map(nas)
            .collect();
        let cost = CostModel::default();
        let oracle = FlatOracle::build(&models, &cost);

        let repo = ModelRepository::new(Box::new(GroupPlanner)).with_shards(shards);
        repo.register_all(models.clone(), &cost);

        for src in &models {
            for dst in &models {
                if src.name() == dst.name() {
                    continue;
                }
                let d = repo
                    .decide(src.name(), dst.name())
                    .expect("registered pair is decidable");
                let (want_transform, want_latency) = oracle.decide(src.name(), dst.name());
                prop_assert_eq!(
                    d.is_transform(),
                    want_transform,
                    "branch diverged for {} -> {} at {} shards",
                    src.name(), dst.name(), shards
                );
                prop_assert_eq!(
                    d.latency().to_bits(),
                    want_latency.to_bits(),
                    "latency bits diverged for {} -> {} at {} shards",
                    src.name(), dst.name(), shards
                );
            }
        }
    }
}

/// Readers must keep decide latency flat while a bulk registration plans
/// and installs a batch on worker threads: the planning sweep happens off
/// the shard locks, and installs take one shard write lock at a time for
/// a map insert — never for the duration of planning.
#[test]
fn decide_latency_is_unaffected_by_concurrent_registration() {
    let cost = CostModel::default();
    let repo = Arc::new(ModelRepository::new(Box::new(GroupPlanner)));
    repo.register_all(vec![nas(0), nas(1)], &cost);
    let (a, b) = (nas(0).name().to_string(), nas(1).name().to_string());

    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let repo = repo.clone();
        let done = done.clone();
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let mut worst = Duration::ZERO;
            let mut calls = 0u64;
            while !done.load(Ordering::Acquire) {
                let t = Instant::now();
                let d = repo.decide(&a, &b).expect("pre-registered pair");
                let dt = t.elapsed();
                assert!(d.latency().is_finite());
                if dt > worst {
                    worst = dt;
                }
                calls += 1;
            }
            (worst, calls)
        })
    };

    // A real planning load: VGG-scale graphs across 4 worker threads.
    let batch: Vec<ModelGraph> = (0..8u64)
        .map(|v| optimus_zoo::vgg::vgg_scaled([11, 13, 16, 19][(v as usize) % 4], 1.0, v))
        .collect();
    let t0 = Instant::now();
    repo.register_all_with_threads(batch, &cost, 4);
    let reg_time = t0.elapsed();
    done.store(true, Ordering::Release);
    let (worst, calls) = reader.join().expect("reader never panics");

    assert!(calls > 0, "the reader made progress during registration");
    // A coarse-locked design stalls readers for the whole planning sweep
    // (~`reg_time`); the sharded one pauses them only for per-shard map
    // inserts. The bound is generous to stay robust on loaded CI boxes,
    // yet far below any planning-sweep stall.
    let bound = Duration::from_millis(250).max(reg_time / 4);
    assert!(
        worst < bound,
        "worst decide {worst:?} during a {reg_time:?} registration exceeds {bound:?}: \
         readers are stalling behind the installer"
    );
}
