//! Concurrency contract of the snapshot → fan-out → install registration
//! pipeline: `decide()` readers racing a bulk `register_all` must observe
//! either the pre-registration plan set or the complete post-registration
//! one — never a partially installed batch — and pre-registered pairs must
//! stay decidable throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;

#[test]
fn readers_never_observe_partial_plan_sets() {
    let cost = CostModel::default();
    let repo = Arc::new(ModelRepository::new(Box::new(GroupPlanner)));
    repo.register_all(
        vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()],
        &cost,
    );
    assert!(repo.decide("vgg11", "vgg16").unwrap().is_transform());

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let repo = repo.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut saw_new = false;
            while !stop.load(Ordering::Acquire) {
                // The pre-registered pair must stay decidable (old plans
                // are never unpublished during a registration).
                let d = repo
                    .decide("vgg11", "vgg16")
                    .expect("pre-registered pair always decidable");
                assert!(d.is_transform(), "vgg11→vgg16 plan must stay cached");
                // Atomic install: the moment a new model is visible, its
                // entire plan set (both directions, against every
                // same-paradigm model) must be visible with it.
                if repo.model("vgg19").is_some() {
                    saw_new = true;
                    for (src, dst) in [
                        ("vgg19", "vgg11"),
                        ("vgg11", "vgg19"),
                        ("vgg19", "vgg16"),
                        ("vgg16", "vgg19"),
                        ("vgg19", "resnet18"),
                        ("resnet18", "vgg19"),
                    ] {
                        assert!(
                            repo.plan(src, dst).is_some(),
                            "model visible but plan {src}->{dst} missing: partial install"
                        );
                    }
                    assert!(
                        repo.load_cost("vgg19").is_some(),
                        "model visible but load cost missing"
                    );
                }
            }
            saw_new
        }));
    }

    // Bulk-register two more CNNs on a worker pool while readers hammer
    // the cache.
    repo.register_all_with_threads(
        vec![optimus_zoo::vgg::vgg19(), optimus_zoo::resnet::resnet18()],
        &cost,
        2,
    );
    // Give readers a window to observe the installed state, then stop.
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
    while std::time::Instant::now() < deadline && repo.model("vgg19").is_none() {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join()
            .expect("reader panicked (partial plan set observed)");
    }

    // Final state: the full 4-model CNN clique is planned.
    assert_eq!(repo.model_count(), 4);
    let names = ["vgg11", "vgg16", "vgg19", "resnet18"];
    for src in names {
        for dst in names {
            if src != dst {
                assert!(repo.plan(src, dst).is_some(), "missing {src}->{dst}");
            }
        }
    }
}

#[test]
fn concurrent_reregistration_never_publishes_stale_plans() {
    // Two threads race to (re-)register overlapping catalogs; the
    // generation check forces the loser to re-plan against the winner's
    // graphs, so the final cache must be exactly what sequential
    // registration of the final model set produces.
    let cost = CostModel::default();
    let repo = Arc::new(ModelRepository::new(Box::new(GroupPlanner)));
    repo.register(optimus_zoo::vgg::vgg11(), &cost);

    let a = {
        let repo = repo.clone();
        std::thread::spawn(move || {
            let cost = CostModel::default();
            repo.register_all_with_threads(
                vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()],
                &cost,
                2,
            );
        })
    };
    let b = {
        let repo = repo.clone();
        std::thread::spawn(move || {
            let cost = CostModel::default();
            repo.register_all_with_threads(
                vec![optimus_zoo::resnet::resnet18(), optimus_zoo::vgg::vgg19()],
                &cost,
                2,
            );
        })
    };
    a.join().unwrap();
    b.join().unwrap();

    let expected = {
        let seq = ModelRepository::new(Box::new(GroupPlanner));
        for m in [
            optimus_zoo::vgg::vgg11(),
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::resnet::resnet18(),
        ] {
            seq.register(m, &cost);
        }
        seq.snapshot().canonicalized().to_json()
    };
    assert_eq!(
        repo.snapshot().canonicalized().to_json(),
        expected,
        "racing registrations must converge to the sequential plan cache"
    );
}
