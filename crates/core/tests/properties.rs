//! Property-based tests of the planning/execution invariants.

use optimus_core::{execute_plan, GroupPlanner, MunkresPlanner, NaivePlanner, Planner};
use optimus_model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus_profile::{CostModel, CostProvider};
use proptest::prelude::*;

/// A random small CNN chain described by per-layer (channels, kernel,
/// with_bn, with_pool) tuples.
fn arb_chain_spec() -> impl Strategy<Value = Vec<(usize, usize, bool, bool)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec![4usize, 8, 12, 16, 24, 32]),
            prop::sample::select(vec![1usize, 3, 5]),
            any::<bool>(),
            any::<bool>(),
        ),
        1..6,
    )
}

fn build_chain(name: &str, spec: &[(usize, usize, bool, bool)], variant: u64) -> ModelGraph {
    let mut b = GraphBuilder::new(name).weight_variant(variant);
    let mut x = b.input([1, 3, 64, 64]);
    let mut ch = 3;
    for &(c, k, bn, pool) in spec {
        x = b.conv2d_after(x, ch, c, (k, k), (1, 1), 1);
        if bn {
            x = b.batchnorm_after(x, c);
        }
        x = b.activation_after(x, Activation::Relu);
        if pool {
            x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
        }
        ch = c;
    }
    let x = b.global_avg_pool_after(x);
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch, 10);
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every plan a planner produces executes successfully and yields a
    /// graph structurally identical to the destination.
    #[test]
    fn plans_execute_and_verify(
        src_spec in arb_chain_spec(),
        dst_spec in arb_chain_spec(),
    ) {
        let cost = CostModel::default();
        let src = build_chain("psrc", &src_spec, 0);
        let dst = build_chain("pdst", &dst_spec, 1);
        for planner in [&GroupPlanner as &dyn Planner, &MunkresPlanner, &NaivePlanner] {
            let plan = planner.plan(&src, &dst, &cost);
            let mut g = src.clone();
            let report = execute_plan(&mut g, &plan, &dst)
                .unwrap_or_else(|e| panic!("{}: {e}", planner.name()));
            prop_assert!(report.verified);
            prop_assert!(g.structurally_equal(&dst));
        }
    }

    /// Plan cost is non-negative and the cost breakdown matches the steps.
    #[test]
    fn cost_breakdown_is_consistent(
        src_spec in arb_chain_spec(),
        dst_spec in arb_chain_spec(),
    ) {
        let cost = CostModel::default();
        let src = build_chain("psrc", &src_spec, 0);
        let dst = build_chain("pdst", &dst_spec, 1);
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        prop_assert!(plan.cost.total() >= 0.0);
        prop_assert_eq!(plan.cost.step_count(), plan.steps.len());
        let n_replace = plan.steps.iter().filter(|s| s.kind_name() == "replace").count();
        let n_add = plan.steps.iter().filter(|s| s.kind_name() == "add").count();
        prop_assert_eq!(n_replace, plan.cost.n_replace);
        prop_assert_eq!(n_add, plan.cost.n_add);
    }

    /// Munkres never produces a costlier plan than the group heuristic or
    /// the naive baseline (it is optimal among mappings).
    #[test]
    fn munkres_lower_bounds_other_planners(
        src_spec in arb_chain_spec(),
        dst_spec in arb_chain_spec(),
    ) {
        let cost = CostModel::default();
        let src = build_chain("psrc", &src_spec, 0);
        let dst = build_chain("pdst", &dst_spec, 1);
        // Compare op-level costs: the matrix formulation (like the paper's
        // Eq. 1) excludes negligible Edge costs, so mappings of equal
        // op-level cost may differ in edge-step counts.
        let op_cost = |p: &optimus_core::TransformPlan| p.cost.total() - p.cost.edge;
        let optimal = op_cost(&MunkresPlanner.plan(&src, &dst, &cost));
        let group = op_cost(&GroupPlanner.plan(&src, &dst, &cost));
        let naive = op_cost(&NaivePlanner.plan(&src, &dst, &cost));
        prop_assert!(optimal <= group + 1e-9, "optimal {} > group {}", optimal, group);
        prop_assert!(optimal <= naive + 1e-9, "optimal {} > naive {}", optimal, naive);
    }

    /// Transforming a model into itself is free; into a weight variant of
    /// itself needs only Replace steps.
    #[test]
    fn identity_and_weight_variant_plans(spec in arb_chain_spec()) {
        let cost = CostModel::default();
        let a = build_chain("m", &spec, 0);
        let ident = GroupPlanner.plan(&a, &a, &cost);
        prop_assert!(ident.is_identity());
        prop_assert_eq!(ident.cost.total(), 0.0);

        let b = build_chain("m", &spec, 1);
        let wv = GroupPlanner.plan(&a, &b, &cost);
        prop_assert_eq!(wv.cost.n_reshape, 0);
        prop_assert_eq!(wv.cost.n_add, 0);
        prop_assert_eq!(wv.cost.n_reduce, 0);
        prop_assert_eq!(wv.cost.n_edge, 0);
    }

    /// The safeguard invariant: min(plan, load) never exceeds the scratch
    /// load cost — Optimus is never worse than a traditional platform.
    #[test]
    fn safeguard_never_worse_than_loading(
        src_spec in arb_chain_spec(),
        dst_spec in arb_chain_spec(),
    ) {
        let cost = CostModel::default();
        let src = build_chain("psrc", &src_spec, 0);
        let dst = build_chain("pdst", &dst_spec, 1);
        let plan = GroupPlanner.plan(&src, &dst, &cost).cost.total();
        let load = cost.model_load_cost(&dst);
        let effective = plan.min(load);
        prop_assert!(effective <= load + 1e-12);
    }
}
