//! Content-addressed, versioned persistence of the plan cache.
//!
//! A [`PlanArtifact`] is the durable form of a repository's plan cache:
//! every cached plan keyed by the **content hashes** of its source and
//! destination graphs ([`ModelGraph::content_hash`]) instead of their
//! names. Content addressing makes the artifact portable — a restarted
//! gateway, a fleet joiner, or a sibling catalog that registers the same
//! graphs under different names all warm-load the same plans — and makes
//! staleness detection free: edit a model and its hash (hence its cache
//! key) changes, so the stale plan simply never matches.
//!
//! Artifacts are double-stamped, following the `SNAPSHOT_VERSION` pattern
//! in [`crate::persist`]:
//!
//! - [`PLAN_ARTIFACT_VERSION`] guards the serialized *format*;
//! - [`optimus_profile::COST_MODEL_VERSION`] guards the *semantics* — a
//!   plan computed against one cost calibration must not be replayed
//!   against another, so a calibration bump invalidates every persisted
//!   plan at load time ([`PlanArtifactError::CostModelMismatch`]).
//!
//! Both stamps are probed on the raw JSON value tree **before** the full
//! structure is deserialized, so incompatible artifacts fail with a typed
//! error rather than a confusing field-level parse failure.
//!
//! For transport, an artifact's serialized bytes chunk like any other
//! store payload ([`PlanArtifact::chunks_for_bytes`] →
//! [`optimus_store::blob_chunks`]), so fleet joiners receive the plan
//! cache through the same multicast path as model weights.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use optimus_profile::COST_MODEL_VERSION;
use optimus_store::ChunkRef;
use serde::{Deserialize, Serialize};

use crate::metaop::TransformPlan;

/// Current artifact schema version. Bump on any incompatible change to
/// [`PlanArtifact`] (or to the serialized form of [`TransformPlan`]).
pub const PLAN_ARTIFACT_VERSION: u32 = 1;

/// Why a persisted plan artifact could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanArtifactError {
    /// The input is not valid JSON, or not an artifact-shaped object.
    Malformed(String),
    /// The artifact was written with a different schema version.
    /// `found == 0` means the input predates version stamping.
    UnsupportedVersion {
        /// Version recorded in the artifact (0 if absent).
        found: u64,
        /// Version this build reads ([`PLAN_ARTIFACT_VERSION`]).
        expected: u32,
    },
    /// The artifact's plans were computed against a different cost-model
    /// calibration; replaying them would warm the cache with costs the
    /// safeguard no longer agrees with.
    CostModelMismatch {
        /// Cost-model version recorded in the artifact (0 if absent).
        found: u64,
        /// Version this build plans with
        /// ([`optimus_profile::COST_MODEL_VERSION`]).
        expected: u32,
    },
}

impl fmt::Display for PlanArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanArtifactError::Malformed(e) => write!(f, "malformed plan artifact: {e}"),
            PlanArtifactError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported plan artifact version {found} (this build reads version {expected})"
            ),
            PlanArtifactError::CostModelMismatch { found, expected } => write!(
                f,
                "plan artifact computed against cost model version {found} \
                 (this build plans with version {expected})"
            ),
        }
    }
}

impl std::error::Error for PlanArtifactError {}

/// One persisted plan, keyed by the content hashes of its endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanArtifactEntry {
    /// [`ModelGraph::content_hash`](optimus_model::ModelGraph::content_hash)
    /// of the source graph.
    pub src_hash: u64,
    /// Content hash of the destination graph.
    pub dst_hash: u64,
    /// The cached plan. Its `src_model`/`dst_model` names are those of the
    /// exporting repository; importers rebind them to local names on hit.
    pub plan: TransformPlan,
}

/// Serializable, content-addressed snapshot of a plan cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanArtifact {
    /// Schema version ([`PLAN_ARTIFACT_VERSION`] when written by this
    /// build).
    pub version: u32,
    /// Cost-model calibration the plans were computed against
    /// ([`optimus_profile::COST_MODEL_VERSION`]).
    pub cost_model: u32,
    /// Persisted plans, sorted by `(src_hash, dst_hash)` so equal plan
    /// sets serialize to identical bytes.
    pub entries: Vec<PlanArtifactEntry>,
}

impl PlanArtifact {
    /// An artifact holding no plans, stamped with this build's versions.
    pub fn empty() -> PlanArtifact {
        PlanArtifact {
            version: PLAN_ARTIFACT_VERSION,
            cost_model: COST_MODEL_VERSION,
            entries: Vec::new(),
        }
    }

    /// Number of persisted plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the artifact holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plan artifact serialization cannot fail")
    }

    /// Deserialize from JSON, checking both version stamps first.
    ///
    /// # Errors
    ///
    /// [`PlanArtifactError::Malformed`] on invalid JSON or a non-object
    /// root; [`PlanArtifactError::UnsupportedVersion`] when the `version`
    /// stamp is missing or differs from [`PLAN_ARTIFACT_VERSION`];
    /// [`PlanArtifactError::CostModelMismatch`] when the plans were
    /// computed against a different cost calibration. Both stamps are
    /// probed on the raw value tree before the struct layout is parsed.
    pub fn from_json(json: &str) -> Result<PlanArtifact, PlanArtifactError> {
        let value: serde_json::Value =
            serde_json::from_str(json).map_err(|e| PlanArtifactError::Malformed(e.to_string()))?;
        if value.as_object().is_none() {
            return Err(PlanArtifactError::Malformed(
                "plan artifact root is not an object".to_string(),
            ));
        }
        let found = value.get("version").and_then(|v| v.as_u64()).unwrap_or(0);
        if found != u64::from(PLAN_ARTIFACT_VERSION) {
            return Err(PlanArtifactError::UnsupportedVersion {
                found,
                expected: PLAN_ARTIFACT_VERSION,
            });
        }
        let cost_model = value
            .get("cost_model")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        if cost_model != u64::from(COST_MODEL_VERSION) {
            return Err(PlanArtifactError::CostModelMismatch {
                found: cost_model,
                expected: COST_MODEL_VERSION,
            });
        }
        serde_json::from_str(json).map_err(|e| PlanArtifactError::Malformed(e.to_string()))
    }

    /// Merge `other`'s plans into this artifact, keeping this artifact's
    /// entry wherever both hold the same `(src_hash, dst_hash)` key. The
    /// incremental-persistence primitive: a freshly exported artifact
    /// merges the on-disk one *into itself*, so single-model `register`
    /// rewrites keep every previously persisted plan while newer plans
    /// win. Returns the number of entries adopted from `other`; a version
    /// or cost-model mismatch adopts nothing (stale plans must not leak
    /// back in through the merge path).
    pub fn merge_from(&mut self, other: &PlanArtifact) -> usize {
        if other.version != self.version || other.cost_model != self.cost_model {
            return 0;
        }
        let have: std::collections::HashSet<(u64, u64)> = self
            .entries
            .iter()
            .map(|e| (e.src_hash, e.dst_hash))
            .collect();
        let mut adopted = 0;
        for e in &other.entries {
            if !have.contains(&(e.src_hash, e.dst_hash)) {
                self.entries.push(e.clone());
                adopted += 1;
            }
        }
        if adopted > 0 {
            self.entries.sort_by_key(|e| (e.src_hash, e.dst_hash));
        }
        adopted
    }

    /// Drop every entry whose source *or* destination hash is no longer in
    /// `live` (the registered catalog's content hashes), returning the
    /// number of entries collected. This is what keeps the on-disk file
    /// from growing monotonically as models churn through the catalog:
    /// without GC, each merge-rewrite cycle re-adopts plans for models
    /// that were dropped long ago.
    pub fn gc(&mut self, live: &std::collections::HashSet<u64>) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|e| live.contains(&e.src_hash) && live.contains(&e.dst_hash));
        before - self.entries.len()
    }

    /// Index the entries by cache key for O(1) warm-load probes.
    pub fn index(&self) -> HashMap<(u64, u64), Arc<TransformPlan>> {
        self.entries
            .iter()
            .map(|e| ((e.src_hash, e.dst_hash), Arc::new(e.plan.clone())))
            .collect()
    }

    /// Chunk references of this artifact's serialized bytes (serializes
    /// internally; when the caller already holds the bytes — e.g. to also
    /// write them to disk — use [`PlanArtifact::chunks_for_bytes`]).
    pub fn chunks(&self, chunk_bytes: u64) -> Vec<ChunkRef> {
        PlanArtifact::chunks_for_bytes(self.to_json().as_bytes(), chunk_bytes)
    }

    /// Chunk references of a serialized artifact, content-addressed by a
    /// fingerprint of the bytes. Distinct from weight chunks by
    /// construction ([`optimus_store::blob_chunks`] mixes its own tag),
    /// so pinning an artifact never aliases a tensor.
    pub fn chunks_for_bytes(bytes: &[u8], chunk_bytes: u64) -> Vec<ChunkRef> {
        optimus_store::blob_chunks(fingerprint(bytes), bytes.len() as u64, chunk_bytes)
    }
}

/// FNV-1a-with-avalanche fingerprint of a byte string (the same mixer as
/// the model crate's content hash, over raw bytes).
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut acc: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |v: u64| {
        acc ^= v;
        acc = acc.wrapping_mul(0x1000_0000_01B3);
        acc ^= acc >> 29;
    };
    mix(0x4152_5446); // "ARTF"
    mix(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        mix(u64::from_le_bytes(word));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ModelRepository;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    fn sample_artifact() -> PlanArtifact {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register_all(
            vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()],
            &cost,
        );
        repo.export_plan_artifact()
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let art = sample_artifact();
        assert_eq!(art.version, PLAN_ARTIFACT_VERSION);
        assert_eq!(art.cost_model, COST_MODEL_VERSION);
        assert_eq!(art.len(), 2, "two directed plans");
        let back = PlanArtifact::from_json(&art.to_json()).unwrap();
        assert_eq!(back.len(), art.len());
        for (a, b) in art.entries.iter().zip(&back.entries) {
            assert_eq!((a.src_hash, a.dst_hash), (b.src_hash, b.dst_hash));
            assert_eq!(a.plan.cost, b.plan.cost);
        }
    }

    #[test]
    fn bumped_version_is_rejected_before_deserialization() {
        // The payload below matches the current layout exactly except for
        // the stamp, so a field-level parse would have succeeded — the
        // probe must fire first.
        let mut art = sample_artifact();
        art.version = PLAN_ARTIFACT_VERSION + 1;
        match PlanArtifact::from_json(&art.to_json()) {
            Err(PlanArtifactError::UnsupportedVersion { found, expected }) => {
                assert_eq!(found, u64::from(PLAN_ARTIFACT_VERSION) + 1);
                assert_eq!(expected, PLAN_ARTIFACT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Unstamped input reports version 0.
        match PlanArtifact::from_json("{\"entries\":[]}") {
            Err(PlanArtifactError::UnsupportedVersion { found: 0, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn cost_model_mismatch_is_a_typed_error() {
        let mut art = sample_artifact();
        art.cost_model = COST_MODEL_VERSION + 7;
        match PlanArtifact::from_json(&art.to_json()) {
            Err(PlanArtifactError::CostModelMismatch { found, expected }) => {
                assert_eq!(found, u64::from(COST_MODEL_VERSION) + 7);
                assert_eq!(expected, COST_MODEL_VERSION);
            }
            other => panic!("expected CostModelMismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(matches!(
            PlanArtifact::from_json("{nope"),
            Err(PlanArtifactError::Malformed(_))
        ));
        assert!(matches!(
            PlanArtifact::from_json("[]"),
            Err(PlanArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn merge_keeps_own_entries_and_adopts_missing_ones() {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register_all(
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::vgg::vgg19(),
            ],
            &cost,
        );
        let full = repo.export_plan_artifact(); // 6 directed plans
        let pair = sample_artifact(); // vgg16 ↔ vgg19 (2 plans)

        let mut merged = pair.clone();
        let adopted = merged.merge_from(&full);
        assert_eq!(adopted, full.len() - pair.len());
        assert_eq!(merged.len(), full.len());
        // Sorted order restored: key-for-key identical to a full export
        // (plan *timings* are wall-clock and may differ between runs).
        for (m, f) in merged.entries.iter().zip(&full.entries) {
            assert_eq!((m.src_hash, m.dst_hash), (f.src_hash, f.dst_hash));
            assert_eq!(m.plan.cost, f.plan.cost);
        }
        // Self-merge and re-merge adopt nothing.
        assert_eq!(merged.merge_from(&full), 0);
    }

    #[test]
    fn merge_rejects_version_and_cost_mismatches() {
        let mut dst = PlanArtifact::empty();
        let mut stale = sample_artifact();
        stale.cost_model = COST_MODEL_VERSION + 1;
        assert_eq!(dst.merge_from(&stale), 0, "stale cost model adopted");
        stale.cost_model = COST_MODEL_VERSION;
        stale.version = PLAN_ARTIFACT_VERSION + 1;
        assert_eq!(dst.merge_from(&stale), 0, "wrong schema version adopted");
        assert!(dst.is_empty());
    }

    #[test]
    fn gc_drops_entries_leaving_the_catalog() {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register_all(
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::vgg::vgg19(),
            ],
            &cost,
        );
        let mut art = repo.export_plan_artifact();
        assert_eq!(art.len(), 6);

        // Live catalog without vgg19: the four plans touching it go.
        let survivors = ModelRepository::new(Box::new(GroupPlanner));
        survivors.register_all(
            vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()],
            &cost,
        );
        let live = survivors.catalog_hashes();
        assert_eq!(art.gc(&live), 4);
        assert_eq!(art.len(), 2);
        for e in &art.entries {
            assert!(live.contains(&e.src_hash) && live.contains(&e.dst_hash));
        }
        // GC against the full catalog is a no-op.
        assert_eq!(art.gc(&repo.catalog_hashes()), 0);
    }

    #[test]
    fn single_register_with_artifact_replays_persisted_plans() {
        let cost = CostModel::default();
        let art = sample_artifact();
        let warm = ModelRepository::new(Box::new(GroupPlanner));
        warm.register_with_artifact(optimus_zoo::vgg::vgg16(), &cost, &art);
        warm.register_with_artifact(optimus_zoo::vgg::vgg19(), &cost, &art);
        assert_eq!(warm.planner_invocations(), 0, "artifact covered all pairs");
        assert!(warm.decide("vgg16", "vgg19").unwrap().is_transform());
    }

    #[test]
    fn chunks_cover_the_serialized_bytes() {
        let art = sample_artifact();
        let json = art.to_json();
        let chunks = PlanArtifact::chunks_for_bytes(json.as_bytes(), 4096);
        assert_eq!(
            chunks.iter().map(|c| c.bytes).sum::<u64>(),
            json.len() as u64
        );
        assert_eq!(chunks, art.chunks(4096), "convenience form agrees");
        // Different payloads never share chunk ids.
        let other = PlanArtifact::empty();
        let oc = other.chunks(4096);
        assert!(oc.is_empty() || chunks.iter().all(|c| c.id != oc[0].id));
        assert!(PlanArtifact::chunks_for_bytes(b"", 4096).is_empty());
    }
}
