//! KV-cache meta-operators: carrying attention state across a transform.
//!
//! When a transformation retargets a warm decoder container to a sibling
//! model, the weight side is handled by [`MetaOp`](crate::MetaOp) plans —
//! but a decoder container also holds *state*: the KV cache of any
//! in-flight or recently-served context. These meta-operators are the
//! state-side counterpart (the `resize_kv_cache` / attention-layout stages
//! of TensorRT-LLM's auto-deploy pipeline, see SNIPPETS.md): they describe
//! how many cached positions survive the transform verbatim, which merely
//! change head layout (a zero-copy re-split of `d_model`), which reserved
//! positions must be freshly materialized for the destination window, and
//! which live positions must be dropped.
//!
//! They are deliberately **not** part of [`TransformPlan`] — plans are
//! persisted in the versioned [`PlanArtifact`](crate::PlanArtifact) and
//! KV state is ephemeral per-container, so folding state steps into the
//! artifact would bump `PLAN_ARTIFACT_VERSION` for no durable benefit.
//! A [`KvPlan`] is computed on demand from two [`KvCacheSpec`]s; the
//! byte-accounting invariant mirrors [`plan_chunks`](crate::plan_chunks):
//! `carried_bytes + materialized_bytes == dst.byte_size()`.

use optimus_model::{KvCache, KvCacheSpec};
use serde::{Deserialize, Serialize};

/// One KV-cache state meta-operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvMetaOp {
    /// Carry `positions` cached rows into the destination verbatim.
    Carry {
        /// Live context positions surviving the transform.
        positions: usize,
    },
    /// Re-split carried rows from `from_heads` to `to_heads` attention
    /// heads. Valid only between row-compatible specs (same `d_model`),
    /// where it is a zero-copy view change.
    ReshapeHeads {
        /// Source head count.
        from_heads: usize,
        /// Destination head count.
        to_heads: usize,
    },
    /// Resize the reserved context window from `from` to `to` positions
    /// (the `resize_kv_cache` stage): growing materializes fresh rows,
    /// shrinking trims reserved-but-empty ones.
    ResizeContext {
        /// Source context length.
        from: usize,
        /// Destination context length.
        to: usize,
    },
    /// Drop `positions` live rows that cannot survive (row-incompatible
    /// layouts, or live state beyond the destination window).
    Drop {
        /// Live context positions discarded.
        positions: usize,
    },
}

impl KvMetaOp {
    /// Short kind name (for reports and breakdowns).
    pub fn kind(&self) -> &'static str {
        match self {
            KvMetaOp::Carry { .. } => "carry",
            KvMetaOp::ReshapeHeads { .. } => "reshape_heads",
            KvMetaOp::ResizeContext { .. } => "resize_context",
            KvMetaOp::Drop { .. } => "drop",
        }
    }
}

/// A state-transformation plan between two KV-cache shapes.
///
/// Invariants (checked by `debug_assert` on construction and by the
/// `kv_props` proptests):
///
/// - `carried_bytes + materialized_bytes == KvCacheSpec::byte_size(dst)` —
///   the destination reservation is fully accounted, exactly like the
///   fetched/reused chunk partition of [`plan_chunks`](crate::plan_chunks);
/// - `carried_bytes + dropped_bytes == src.live_bytes()` — every live
///   source byte is either carried or dropped, never both;
/// - a same-spec transform is the identity: no resize/reshape/drop steps,
///   and `apply` returns the source cache unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPlan {
    /// Destination cache shape.
    pub dst: KvCacheSpec,
    /// Ordered state meta-operators.
    pub steps: Vec<KvMetaOp>,
    /// Live context positions carried across.
    pub carried: usize,
    /// Bytes of live state carried across verbatim.
    pub carried_bytes: u64,
    /// Bytes of the destination reservation that must be freshly
    /// materialized (not present in the source cache).
    pub materialized_bytes: u64,
    /// Bytes of live source state dropped by the transform.
    pub dropped_bytes: u64,
}

impl KvPlan {
    /// Whether this plan changes nothing (same-spec transform): no state
    /// dropped and no resize/reshape steps. `materialized_bytes` may still
    /// be positive — it then counts the reserved-but-empty remainder of
    /// the (unchanged) context window.
    pub fn is_identity(&self) -> bool {
        self.dropped_bytes == 0
            && self
                .steps
                .iter()
                .all(|s| matches!(s, KvMetaOp::Carry { .. }))
    }

    /// Apply the plan to the cache it was computed from, yielding the
    /// destination-shaped cache with the carried fill level.
    pub fn apply(&self, src: &KvCache) -> KvCache {
        debug_assert!(self.carried <= src.filled);
        KvCache::filled(self.dst, self.carried)
    }
}

/// Plan the KV-cache state transformation from a (possibly filled) source
/// cache to the destination spec. Total — any pair of shapes yields a
/// plan; incompatible layouts simply carry nothing.
pub fn plan_kv_transform(src: &KvCache, dst: &KvCacheSpec) -> KvPlan {
    let compatible = src.spec.row_compatible(dst);
    let carried = if compatible {
        src.filled.min(dst.context)
    } else {
        0
    };
    let dropped = src.filled - carried;

    let mut steps = Vec::new();
    if carried > 0 {
        steps.push(KvMetaOp::Carry { positions: carried });
    }
    if compatible && src.spec.heads != dst.heads {
        steps.push(KvMetaOp::ReshapeHeads {
            from_heads: src.spec.heads,
            to_heads: dst.heads,
        });
    }
    if compatible && src.spec.context != dst.context {
        steps.push(KvMetaOp::ResizeContext {
            from: src.spec.context,
            to: dst.context,
        });
    }
    if dropped > 0 {
        steps.push(KvMetaOp::Drop { positions: dropped });
    }

    let carried_bytes = dst.bytes_at(carried);
    let plan = KvPlan {
        dst: *dst,
        steps,
        carried,
        carried_bytes,
        materialized_bytes: dst.byte_size() - carried_bytes,
        dropped_bytes: src.live_bytes() - src.spec.bytes_at(carried),
    };
    debug_assert_eq!(
        plan.carried_bytes + plan.materialized_bytes,
        dst.byte_size()
    );
    debug_assert_eq!(plan.carried_bytes + plan.dropped_bytes, src.live_bytes());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(layers: usize, heads: usize, head_dim: usize, context: usize) -> KvCacheSpec {
        KvCacheSpec::new(layers, heads, head_dim, context)
    }

    #[test]
    fn identity_transform_is_noop() {
        let s = spec(4, 8, 64, 1024);
        let cache = KvCache::filled(s, 300);
        let plan = plan_kv_transform(&cache, &s);
        assert!(plan.is_identity());
        assert_eq!(plan.carried, 300);
        assert_eq!(plan.dropped_bytes, 0);
        assert_eq!(plan.apply(&cache), cache);
    }

    #[test]
    fn context_growth_carries_all_live_state() {
        let cache = KvCache::filled(spec(4, 8, 64, 1024), 1000);
        let dst = spec(4, 8, 64, 4096);
        let plan = plan_kv_transform(&cache, &dst);
        assert_eq!(plan.carried, 1000);
        assert_eq!(plan.carried_bytes, cache.live_bytes());
        assert_eq!(
            plan.carried_bytes + plan.materialized_bytes,
            dst.byte_size()
        );
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            KvMetaOp::ResizeContext {
                from: 1024,
                to: 4096
            }
        )));
        assert_eq!(plan.apply(&cache).filled, 1000);
    }

    #[test]
    fn context_shrink_drops_overflow() {
        let cache = KvCache::filled(spec(2, 4, 32, 2048), 1500);
        let dst = spec(2, 4, 32, 1024);
        let plan = plan_kv_transform(&cache, &dst);
        assert_eq!(plan.carried, 1024);
        assert_eq!(plan.dropped_bytes, dst.bytes_at(1500 - 1024));
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, KvMetaOp::Drop { positions: 476 })));
    }

    #[test]
    fn head_resplit_is_carried_not_dropped() {
        // Same d_model re-split across twice the heads: zero-copy carry.
        let cache = KvCache::filled(spec(4, 8, 64, 1024), 512);
        let dst = spec(4, 16, 32, 1024);
        let plan = plan_kv_transform(&cache, &dst);
        assert_eq!(plan.carried, 512);
        assert_eq!(plan.dropped_bytes, 0);
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            KvMetaOp::ReshapeHeads {
                from_heads: 8,
                to_heads: 16
            }
        )));
        // The context window is unchanged: no degenerate resize step
        // (from == to) rides along in the report.
        assert!(!plan
            .steps
            .iter()
            .any(|s| matches!(s, KvMetaOp::ResizeContext { .. })));
    }

    #[test]
    fn incompatible_layouts_carry_nothing() {
        let cache = KvCache::filled(spec(4, 8, 64, 1024), 512);
        let dst = spec(8, 8, 64, 1024); // different layer count
        let plan = plan_kv_transform(&cache, &dst);
        assert_eq!(plan.carried, 0);
        assert_eq!(plan.carried_bytes, 0);
        assert_eq!(plan.materialized_bytes, dst.byte_size());
        assert_eq!(plan.dropped_bytes, cache.live_bytes());
        // Nothing crosses an incompatible layout boundary, so no
        // resize/reshape operator pretends otherwise.
        assert!(plan
            .steps
            .iter()
            .all(|s| matches!(s, KvMetaOp::Drop { .. })));
    }
}
