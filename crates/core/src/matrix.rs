//! The Riesen–Bunke edit-cost matrix (§4.4 Module 2, Figure 10).
//!
//! For a source model with `n` operations and a destination model with `m`
//! operations, the `(n+m)×(n+m)` matrix is laid out as
//!
//! ```text
//!        ┌───────────────┬──────────────┐
//!        │ substitution  │  deletion    │   n rows
//!        │   c(i, j)     │  c(i, ε)     │
//!        ├───────────────┼──────────────┤
//!        │ insertion     │      0       │   m rows
//!        │   c(ε, j)     │              │
//!        └───────────────┴──────────────┘
//!            m cols           n cols
//! ```
//!
//! where substitution is `Reshape`+`Replace` (or cheaper), deletion is
//! `Reduce`, and insertion is `Add`. Impossible substitutions (different
//! operation kinds) and off-diagonal delete/insert cells carry a large
//! finite sentinel so the Hungarian solver never picks them.
//!
//! The costs live in a single flat row-major buffer (`costs[i * dim + j]`)
//! so the Hungarian kernel walks contiguous rows with no pointer chasing
//! and the whole matrix is one allocation.

use optimus_model::{ModelGraph, OpId};
use optimus_profile::CostProvider;

/// Sentinel for forbidden assignments; large but finite so potentials
/// arithmetic stays well-behaved.
pub(crate) const FORBIDDEN: f64 = 1.0e9;

/// The edit-cost matrix plus the op-id orderings it was built from.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    /// `(n+m)×(n+m)` costs, flat row-major: entry `(i, j)` is
    /// `costs[i * dim + j]` (see [`CostMatrix::at`]).
    pub costs: Vec<f64>,
    /// Side length `n + m`.
    dim: usize,
    /// Source op ids in row order (first `n` rows).
    pub src_ids: Vec<OpId>,
    /// Destination op ids in column order (first `m` columns).
    pub dst_ids: Vec<OpId>,
}

impl CostMatrix {
    /// Build the matrix for transforming `src` into `dst` under `cost`.
    pub fn build(src: &ModelGraph, dst: &ModelGraph, cost: &impl CostProvider) -> CostMatrix {
        let src_ids = src.op_ids();
        let dst_ids = dst.op_ids();
        let n = src_ids.len();
        let m = dst_ids.len();
        let k = n + m;
        let mut costs = vec![FORBIDDEN; k * k];
        for (i, &sid) in src_ids.iter().enumerate() {
            let sop = src.op(sid).expect("src id");
            let row = &mut costs[i * k..(i + 1) * k];
            // Substitution block.
            for (j, &did) in dst_ids.iter().enumerate() {
                let dop = dst.op(did).expect("dst id");
                if let Some(c) = cost.substitute_cost(sop, dop) {
                    row[j] = c;
                }
            }
            // Deletion block: row i may map to column m+i only.
            row[m + i] = cost.reduce_cost(&sop.attrs);
        }
        for (j, &did) in dst_ids.iter().enumerate() {
            let dop = dst.op(did).expect("dst id");
            // Insertion block: row n+j may map to column j only.
            costs[(n + j) * k + j] = cost.add_cost(&dop.attrs);
        }
        // Bottom-right block: ε→ε is free.
        for i in 0..m {
            costs[(n + i) * k + m..(n + i) * k + k].fill(0.0);
        }
        CostMatrix {
            costs,
            dim: k,
            src_ids,
            dst_ids,
        }
    }

    /// Cost entry `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.costs[i * self.dim + j]
    }

    /// Side length of the square matrix (`n + m`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of source operations `n`.
    pub fn n(&self) -> usize {
        self.src_ids.len()
    }

    /// Number of destination operations `m`.
    pub fn m(&self) -> usize {
        self.dst_ids.len()
    }

    /// Copy out the nested `Vec<Vec<f64>>` representation (test oracle
    /// bridge to [`crate::solve_assignment`]).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.costs.chunks(self.dim).map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::{Activation, GraphBuilder};
    use optimus_profile::CostModel;

    fn tiny(name: &str, convs: usize) -> ModelGraph {
        let mut b = GraphBuilder::new(name);
        let mut x = b.input([1, 3, 8, 8]);
        let mut ch = 3;
        for _ in 0..convs {
            x = b.conv2d_after(x, ch, 8, (3, 3), (1, 1), 1);
            x = b.activation_after(x, Activation::Relu);
            ch = 8;
        }
        b.finish().unwrap()
    }

    #[test]
    fn matrix_dimensions() {
        let a = tiny("a", 1); // 3 ops
        let b = tiny("b", 2); // 5 ops
        let m = CostMatrix::build(&a, &b, &CostModel::default());
        assert_eq!(m.n(), 3);
        assert_eq!(m.m(), 5);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.costs.len(), 64, "flat buffer holds dim² entries");
        let nested = m.to_nested();
        assert_eq!(nested.len(), 8);
        assert!(nested.iter().all(|r| r.len() == 8));
    }

    #[test]
    fn blocks_have_expected_structure() {
        let a = tiny("a", 1);
        let b = tiny("b", 1);
        let cm = CostMatrix::build(&a, &b, &CostModel::default());
        let (n, m) = (cm.n(), cm.m());
        // Deletion block: diagonal finite, off-diagonal forbidden.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    assert!(cm.at(i, m + j) < FORBIDDEN);
                } else {
                    assert_eq!(cm.at(i, m + j), FORBIDDEN);
                }
            }
        }
        // Insertion block: diagonal finite.
        for j in 0..m {
            assert!(cm.at(n + j, j) < FORBIDDEN);
        }
        // Bottom-right block all zeros.
        for i in 0..m {
            for j in 0..n {
                assert_eq!(cm.at(n + i, m + j), 0.0);
            }
        }
    }

    #[test]
    fn flat_and_nested_views_agree() {
        let a = tiny("a", 2);
        let b = tiny("b", 3);
        let cm = CostMatrix::build(&a, &b, &CostModel::default());
        let nested = cm.to_nested();
        for (i, row) in nested.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cm.at(i, j), cell);
            }
        }
    }

    #[test]
    fn cross_kind_substitution_forbidden() {
        let a = tiny("a", 1);
        let b = tiny("b", 1);
        let cm = CostMatrix::build(&a, &b, &CostModel::default());
        // Find a conv row and an activation column.
        let conv_row = cm
            .src_ids
            .iter()
            .position(|id| a.op(*id).unwrap().kind() == optimus_model::OpKind::Conv2d)
            .unwrap();
        let act_col = cm
            .dst_ids
            .iter()
            .position(|id| b.op(*id).unwrap().kind() == optimus_model::OpKind::Activation)
            .unwrap();
        assert_eq!(cm.at(conv_row, act_col), FORBIDDEN);
    }
}
