//! The Riesen–Bunke edit-cost matrix (§4.4 Module 2, Figure 10).
//!
//! For a source model with `n` operations and a destination model with `m`
//! operations, the `(n+m)×(n+m)` matrix is laid out as
//!
//! ```text
//!        ┌───────────────┬──────────────┐
//!        │ substitution  │  deletion    │   n rows
//!        │   c(i, j)     │  c(i, ε)     │
//!        ├───────────────┼──────────────┤
//!        │ insertion     │      0       │   m rows
//!        │   c(ε, j)     │              │
//!        └───────────────┴──────────────┘
//!            m cols           n cols
//! ```
//!
//! where substitution is `Reshape`+`Replace` (or cheaper), deletion is
//! `Reduce`, and insertion is `Add`. Impossible substitutions (different
//! operation kinds) and off-diagonal delete/insert cells carry a large
//! finite sentinel so the Hungarian solver never picks them.

use optimus_model::{ModelGraph, OpId};
use optimus_profile::CostProvider;

/// Sentinel for forbidden assignments; large but finite so potentials
/// arithmetic stays well-behaved.
pub(crate) const FORBIDDEN: f64 = 1.0e9;

/// The edit-cost matrix plus the op-id orderings it was built from.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    /// `(n+m)×(n+m)` costs.
    pub costs: Vec<Vec<f64>>,
    /// Source op ids in row order (first `n` rows).
    pub src_ids: Vec<OpId>,
    /// Destination op ids in column order (first `m` columns).
    pub dst_ids: Vec<OpId>,
}

impl CostMatrix {
    /// Build the matrix for transforming `src` into `dst` under `cost`.
    pub fn build(src: &ModelGraph, dst: &ModelGraph, cost: &impl CostProvider) -> CostMatrix {
        let src_ids = src.op_ids();
        let dst_ids = dst.op_ids();
        let n = src_ids.len();
        let m = dst_ids.len();
        let k = n + m;
        let mut costs = vec![vec![FORBIDDEN; k]; k];
        for (i, &sid) in src_ids.iter().enumerate() {
            let sop = src.op(sid).expect("src id");
            // Substitution block.
            for (j, &did) in dst_ids.iter().enumerate() {
                let dop = dst.op(did).expect("dst id");
                if let Some(c) = cost.substitute_cost(sop, dop) {
                    costs[i][j] = c;
                }
            }
            // Deletion block: row i may map to column m+i only.
            costs[i][m + i] = cost.reduce_cost(&sop.attrs);
        }
        for (j, &did) in dst_ids.iter().enumerate() {
            let dop = dst.op(did).expect("dst id");
            // Insertion block: row n+j may map to column j only.
            costs[n + j][j] = cost.add_cost(&dop.attrs);
        }
        // Bottom-right block: ε→ε is free.
        for j in 0..n {
            for i in 0..m {
                costs[n + i][m + j] = 0.0;
            }
        }
        CostMatrix {
            costs,
            src_ids,
            dst_ids,
        }
    }

    /// Number of source operations `n`.
    pub fn n(&self) -> usize {
        self.src_ids.len()
    }

    /// Number of destination operations `m`.
    pub fn m(&self) -> usize {
        self.dst_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::{Activation, GraphBuilder};
    use optimus_profile::CostModel;

    fn tiny(name: &str, convs: usize) -> ModelGraph {
        let mut b = GraphBuilder::new(name);
        let mut x = b.input([1, 3, 8, 8]);
        let mut ch = 3;
        for _ in 0..convs {
            x = b.conv2d_after(x, ch, 8, (3, 3), (1, 1), 1);
            x = b.activation_after(x, Activation::Relu);
            ch = 8;
        }
        b.finish().unwrap()
    }

    #[test]
    fn matrix_dimensions() {
        let a = tiny("a", 1); // 3 ops
        let b = tiny("b", 2); // 5 ops
        let m = CostMatrix::build(&a, &b, &CostModel::default());
        assert_eq!(m.n(), 3);
        assert_eq!(m.m(), 5);
        assert_eq!(m.costs.len(), 8);
        assert!(m.costs.iter().all(|r| r.len() == 8));
    }

    #[test]
    fn blocks_have_expected_structure() {
        let a = tiny("a", 1);
        let b = tiny("b", 1);
        let cm = CostMatrix::build(&a, &b, &CostModel::default());
        let (n, m) = (cm.n(), cm.m());
        // Deletion block: diagonal finite, off-diagonal forbidden.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    assert!(cm.costs[i][m + j] < FORBIDDEN);
                } else {
                    assert_eq!(cm.costs[i][m + j], FORBIDDEN);
                }
            }
        }
        // Insertion block: diagonal finite.
        for j in 0..m {
            assert!(cm.costs[n + j][j] < FORBIDDEN);
        }
        // Bottom-right block all zeros.
        for i in 0..m {
            for j in 0..n {
                assert_eq!(cm.costs[n + i][m + j], 0.0);
            }
        }
    }

    #[test]
    fn cross_kind_substitution_forbidden() {
        let a = tiny("a", 1);
        let b = tiny("b", 1);
        let cm = CostMatrix::build(&a, &b, &CostModel::default());
        // Find a conv row and an activation column.
        let conv_row = cm
            .src_ids
            .iter()
            .position(|id| a.op(*id).unwrap().kind() == optimus_model::OpKind::Conv2d)
            .unwrap();
        let act_col = cm
            .dst_ids
            .iter()
            .position(|id| b.op(*id).unwrap().kind() == optimus_model::OpKind::Activation)
            .unwrap();
        assert_eq!(cm.costs[conv_row][act_col], FORBIDDEN);
    }
}
