//! Hungarian (Munkres) algorithm for the linear assignment problem.
//!
//! A from-scratch O(n³) implementation using the potentials/augmenting-path
//! formulation. The basic planner (§4.4 Module 2) runs it on the
//! Riesen–Bunke `(n+m)×(n+m)` edit-cost matrix, exactly as the paper's
//! reference [31] prescribes.
//!
//! Two entry points share the algorithm:
//!
//! - [`solve_assignment_flat`] — the production kernel: indexes a flat
//!   row-major `&[f64]` buffer directly and keeps every working array in a
//!   caller-owned [`MunkresScratch`], so repeated solves (the offline plan
//!   cache's O(N²) sweep) allocate nothing after the first call.
//! - [`solve_assignment`] — the original `Vec<Vec<f64>>` implementation,
//!   kept verbatim as the reference oracle the flat kernel is tested
//!   against.

/// Reusable working memory for [`solve_assignment_flat`].
///
/// One scratch serves any sequence of solves; its buffers grow to the
/// largest dimension seen and are reused (never shrunk) afterwards, so a
/// planning sweep over a whole model catalog performs exactly one
/// allocation burst on its largest matrix.
#[derive(Debug, Default)]
pub struct MunkresScratch {
    /// Row potentials `u[0..=n]`.
    u: Vec<f64>,
    /// Column potentials `v[0..=n]`.
    v: Vec<f64>,
    /// `p[j]`: row currently matched to column `j` (0 = unmatched).
    p: Vec<usize>,
    /// Augmenting-path back-pointers.
    way: Vec<usize>,
    /// Per-column minimum reduced cost of the current row's search tree.
    minv: Vec<f64>,
    /// Columns already in the search tree.
    used: Vec<bool>,
    /// Output assignment, row → column.
    assignment: Vec<usize>,
    /// How many times the buffers had to (re)allocate — 0 fresh, 1 after
    /// the first solve, and still 1 after any number of same-or-smaller
    /// solves (asserted by tests).
    grows: usize,
}

impl MunkresScratch {
    /// Empty scratch; the first solve sizes it.
    pub fn new() -> Self {
        MunkresScratch::default()
    }

    /// Scratch pre-sized for `n×n` solves (no allocation on first use).
    pub fn with_capacity(n: usize) -> Self {
        let mut s = MunkresScratch::default();
        s.grow_to(n);
        s.grows = 0;
        s
    }

    /// Number of allocation events since construction.
    pub fn allocations(&self) -> usize {
        self.grows
    }

    fn grow_to(&mut self, n: usize) {
        if self.u.len() < n + 1 {
            self.u.resize(n + 1, 0.0);
            self.v.resize(n + 1, 0.0);
            self.p.resize(n + 1, 0);
            self.way.resize(n + 1, 0);
            self.minv.resize(n + 1, 0.0);
            self.used.resize(n + 1, false);
            self.assignment.resize(n, 0);
            self.grows += 1;
        }
    }

    /// Reset the per-solve state for an `n×n` problem without shrinking.
    fn reset(&mut self, n: usize) {
        self.grow_to(n);
        self.u[..=n].fill(0.0);
        self.v[..=n].fill(0.0);
        self.p[..=n].fill(0);
        self.way[..=n].fill(0);
        self.assignment.resize(n, usize::MAX);
        self.assignment[..n].fill(usize::MAX);
    }
}

/// Solve the square assignment problem on a flat row-major cost buffer:
/// `costs[i * n + j]` is the cost of assigning row `i` to column `j`.
/// Returns the minimising assignment as a slice borrowed from `scratch`
/// (`assignment[i] = j`); copy it out before the next solve.
///
/// Costs may include large "forbidden" sentinels; the solver only requires
/// that at least one finite-total assignment exists (always true for edit
/// matrices, where the diagonal delete/insert entries are finite).
///
/// # Panics
///
/// Panics when `costs.len() != n * n`.
pub fn solve_assignment_flat<'a>(
    costs: &[f64],
    n: usize,
    scratch: &'a mut MunkresScratch,
) -> &'a [usize] {
    assert_eq!(costs.len(), n * n, "flat cost buffer must be n×n");
    scratch.reset(n);
    if n == 0 {
        return &scratch.assignment;
    }
    // Borrow the working arrays as local slices once: keeps the hot loops
    // free of repeated field loads (base pointers stay in registers, like
    // the nested version's stack-local Vecs).
    let u = &mut scratch.u[..=n];
    let v = &mut scratch.v[..=n];
    let p = &mut scratch.p[..=n];
    let way = &mut scratch.way[..=n];
    let minv = &mut scratch.minv[..=n];
    let used = &mut scratch.used[..=n];
    // Potentials-based Hungarian algorithm, 1-indexed internally; identical
    // control flow to `solve_assignment`, with flat indexing and no
    // per-row allocations.
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        minv.fill(f64::INFINITY);
        used.fill(false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let row = &costs[(i0 - 1) * n..i0 * n];
            let u_i0 = u[i0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = row[j - 1] - u_i0 - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    for (j, &pj) in p.iter().enumerate().take(n + 1).skip(1) {
        if pj != 0 {
            scratch.assignment[pj - 1] = j - 1;
        }
    }
    &scratch.assignment
}

/// Solve the square assignment problem: `cost[i][j]` is the cost of
/// assigning row `i` to column `j`; returns `assignment[i] = j` minimising
/// the total cost.
///
/// This is the original nested-`Vec` implementation, retained as the
/// reference oracle for [`solve_assignment_flat`] (which the planners use).
///
/// # Panics
///
/// Panics when the matrix is not square or is empty rows-wise with
/// inconsistent columns.
pub fn solve_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    for row in cost {
        assert_eq!(row.len(), n, "assignment matrix must be square");
    }
    // Potentials-based Hungarian algorithm, 1-indexed internally.
    // u[i], v[j] potentials; p[j] = row matched to column j.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row assigned to column j (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Total cost of an assignment under a cost matrix.
#[cfg(test)]
pub(crate) fn assignment_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }

    fn flatten(cost: &[Vec<f64>]) -> Vec<f64> {
        cost.iter().flat_map(|r| r.iter().copied()).collect()
    }

    fn solve_flat(cost: &[Vec<f64>]) -> Vec<usize> {
        let mut scratch = MunkresScratch::new();
        solve_assignment_flat(&flatten(cost), cost.len(), &mut scratch).to_vec()
    }

    #[test]
    fn trivial_identity() {
        let cost = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let a = solve_assignment(&cost);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(assignment_cost(&cost, &a), 2.0);
        assert_eq!(solve_flat(&cost), a);
    }

    #[test]
    fn off_diagonal_optimum() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let a = solve_assignment(&cost);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(solve_flat(&cost), a);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices via a simple LCG.
        let mut state: u64 = 0xDEADBEEF;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        let mut scratch = MunkresScratch::new();
        for n in 2..=7 {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| next() * 10.0).collect())
                    .collect();
                let a = solve_assignment(&cost);
                // Assignment is a permutation.
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j], "duplicate column");
                    seen[j] = true;
                }
                let got = assignment_cost(&cost, &a);
                let want = brute_force_min(&cost);
                assert!(
                    (got - want).abs() < 1e-9,
                    "n={n}: got {got}, optimal {want}"
                );
                // The flat kernel must agree exactly (same control flow).
                let flat = solve_assignment_flat(&flatten(&cost), n, &mut scratch);
                assert_eq!(flat, &a[..], "flat/nested divergence at n={n}");
            }
        }
    }

    #[test]
    fn handles_forbidden_sentinels() {
        const BIG: f64 = 1e12;
        let cost = vec![
            vec![BIG, 1.0, BIG],
            vec![2.0, BIG, BIG],
            vec![BIG, BIG, 3.0],
        ];
        let a = solve_assignment(&cost);
        assert_eq!(a, vec![1, 0, 2]);
        assert_eq!(solve_flat(&cost), a);
    }

    #[test]
    fn empty_matrix() {
        assert!(solve_assignment(&[]).is_empty());
        let mut scratch = MunkresScratch::new();
        assert!(solve_assignment_flat(&[], 0, &mut scratch).is_empty());
    }

    #[test]
    fn single_element() {
        assert_eq!(solve_assignment(&[vec![5.0]]), vec![0]);
        assert_eq!(solve_flat(&[vec![5.0]]), vec![0]);
    }

    #[test]
    fn scratch_allocates_once_across_repeated_solves() {
        // A 64×64 solve repeated many times must reuse one scratch: one
        // allocation event total (the first grow), zero afterwards.
        let n = 64;
        let mut state: u64 = 7;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        let costs: Vec<f64> = (0..n * n).map(|_| next() * 100.0).collect();
        let mut scratch = MunkresScratch::new();
        assert_eq!(scratch.allocations(), 0);
        for _ in 0..10 {
            let a = solve_assignment_flat(&costs, n, &mut scratch);
            assert_eq!(a.len(), n);
        }
        assert_eq!(scratch.allocations(), 1, "exactly one grow for 10 solves");
        // Smaller problems fit in the same buffers.
        let small: Vec<f64> = (0..9).map(|i| i as f64).collect();
        solve_assignment_flat(&small, 3, &mut scratch);
        assert_eq!(scratch.allocations(), 1);
        // Pre-sized scratch never allocates at all.
        let mut sized = MunkresScratch::with_capacity(n);
        solve_assignment_flat(&costs, n, &mut sized);
        assert_eq!(sized.allocations(), 0);
    }
}
