//! Hungarian (Munkres) algorithm for the linear assignment problem.
//!
//! A from-scratch O(n³) implementation using the potentials/augmenting-path
//! formulation. The basic planner (§4.4 Module 2) runs it on the
//! Riesen–Bunke `(n+m)×(n+m)` edit-cost matrix, exactly as the paper's
//! reference [31] prescribes.

/// Solve the square assignment problem: `cost[i][j]` is the cost of
/// assigning row `i` to column `j`; returns `assignment[i] = j` minimising
/// the total cost.
///
/// Costs may include large "forbidden" sentinels; the solver only requires
/// that at least one finite-total assignment exists (always true for edit
/// matrices, where the diagonal delete/insert entries are finite).
///
/// # Panics
///
/// Panics when the matrix is not square or is empty rows-wise with
/// inconsistent columns.
pub fn solve_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    for row in cost {
        assert_eq!(row.len(), n, "assignment matrix must be square");
    }
    // Potentials-based Hungarian algorithm, 1-indexed internally.
    // u[i], v[j] potentials; p[j] = row matched to column j.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row assigned to column j (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Total cost of an assignment under a cost matrix.
#[cfg(test)]
pub(crate) fn assignment_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }

    #[test]
    fn trivial_identity() {
        let cost = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let a = solve_assignment(&cost);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(assignment_cost(&cost, &a), 2.0);
    }

    #[test]
    fn off_diagonal_optimum() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let a = solve_assignment(&cost);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices via a simple LCG.
        let mut state: u64 = 0xDEADBEEF;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        for n in 2..=7 {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| next() * 10.0).collect())
                    .collect();
                let a = solve_assignment(&cost);
                // Assignment is a permutation.
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j], "duplicate column");
                    seen[j] = true;
                }
                let got = assignment_cost(&cost, &a);
                let want = brute_force_min(&cost);
                assert!(
                    (got - want).abs() < 1e-9,
                    "n={n}: got {got}, optimal {want}"
                );
            }
        }
    }

    #[test]
    fn handles_forbidden_sentinels() {
        const BIG: f64 = 1e12;
        let cost = vec![
            vec![BIG, 1.0, BIG],
            vec![2.0, BIG, BIG],
            vec![BIG, BIG, 3.0],
        ];
        let a = solve_assignment(&cost);
        assert_eq!(a, vec![1, 0, 2]);
    }

    #[test]
    fn empty_matrix() {
        assert!(solve_assignment(&[]).is_empty());
    }

    #[test]
    fn single_element() {
        assert_eq!(solve_assignment(&[vec![5.0]]), vec![0]);
    }
}
