//! Chunk-level accounting of transformation plans.
//!
//! A cached plan rewrites some destination tensors (`Replace`/`Add`
//! payloads) and carries the rest over from the source in place. Content
//! addressing turns that split into plain set arithmetic: the payload
//! tensors chunk to the ids a store must **fetch**, and the remaining
//! destination chunks are **reused** source content. This is the "a
//! transform fetches only the delta" contract the simulator and the live
//! workers price loads with.

use std::collections::{BTreeMap, HashSet};

use optimus_model::ModelGraph;
use optimus_store::{model_chunks, weights_chunks, ChunkId, ChunkRef};

use crate::metaop::{MetaOp, TransformPlan};

/// Chunk split of one transformation: what must move vs. what is already
/// in the container.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChunks {
    /// Chunks of the `Replace`/`Add` payloads — the transformation delta
    /// the store fetches (deduplicated).
    pub fetched: Vec<ChunkRef>,
    /// Destination-model chunks *not* written by the plan: source content
    /// kept in place.
    pub reused: Vec<ChunkRef>,
}

impl PlanChunks {
    /// Bytes the transformation fetches.
    pub fn fetched_bytes(&self) -> u64 {
        self.fetched.iter().map(|c| c.bytes).sum()
    }

    /// Bytes the transformation reuses in place.
    pub fn reused_bytes(&self) -> u64 {
        self.reused.iter().map(|c| c.bytes).sum()
    }
}

/// Split `plan`'s effect on `dst` into fetched and reused chunks.
pub fn plan_chunks(plan: &TransformPlan, dst: &ModelGraph, chunk_bytes: u64) -> PlanChunks {
    let mut fetched: Vec<ChunkRef> = Vec::new();
    let mut seen: HashSet<ChunkId> = HashSet::new();
    for step in &plan.steps {
        let payload = match step {
            MetaOp::Replace { weights, .. } => Some(weights),
            MetaOp::Add { op, .. } => op.weights.as_ref(),
            _ => None,
        };
        if let Some(w) = payload {
            for c in weights_chunks(w, chunk_bytes) {
                if seen.insert(c.id) {
                    fetched.push(c);
                }
            }
        }
    }
    let reused = model_chunks(dst, chunk_bytes)
        .into_iter()
        .filter(|c| !seen.contains(&c.id))
        .collect();
    PlanChunks { fetched, reused }
}

/// Deduplicated union of the `Replace`/`Add` payload chunks of many
/// plans, sorted by id — the working set a node pins so LRU pressure
/// never evicts the bytes cached plans are about to write.
pub fn plans_referenced_chunks<'a>(
    plans: impl Iterator<Item = &'a TransformPlan>,
    chunk_bytes: u64,
) -> Vec<ChunkRef> {
    let mut unique: BTreeMap<ChunkId, ChunkRef> = BTreeMap::new();
    for plan in plans {
        for step in &plan.steps {
            let payload = match step {
                MetaOp::Replace { weights, .. } => Some(weights),
                MetaOp::Add { op, .. } => op.weights.as_ref(),
                _ => None,
            };
            if let Some(w) = payload {
                for c in weights_chunks(w, chunk_bytes) {
                    unique.entry(c.id).or_insert(c);
                }
            }
        }
    }
    unique.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{GroupPlanner, Planner};
    use optimus_profile::CostModel;
    use optimus_store::DEFAULT_CHUNK_BYTES;

    #[test]
    fn plan_chunks_partition_the_destination() {
        let src = optimus_zoo::vgg::vgg16();
        let dst = optimus_zoo::vgg::vgg19();
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let split = plan_chunks(&plan, &dst, DEFAULT_CHUNK_BYTES);
        assert!(!split.fetched.is_empty(), "cross-model plans move bytes");
        assert_eq!(
            split.fetched_bytes() + split.reused_bytes(),
            dst.byte_size() as u64,
            "fetched + reused must cover the destination"
        );
        // The chunk-level split agrees with the executor's byte accounting.
        let mut g = src.clone();
        let report = crate::executor::execute_plan(&mut g, &plan, &dst).unwrap();
        assert_eq!(split.fetched_bytes(), report.fetched_bytes);
        assert_eq!(split.reused_bytes(), report.reused_bytes);
    }

    #[test]
    fn identity_plan_fetches_nothing() {
        let m = optimus_zoo::resnet::resnet18();
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&m, &m, &cost);
        let split = plan_chunks(&plan, &m, DEFAULT_CHUNK_BYTES);
        assert_eq!(split.fetched_bytes(), 0);
        assert_eq!(split.reused_bytes(), m.byte_size() as u64);
    }

    #[test]
    fn referenced_chunks_are_unique_and_sorted() {
        let a = optimus_zoo::vgg::vgg11();
        let b = optimus_zoo::vgg::vgg16();
        let cost = CostModel::default();
        let ab = GroupPlanner.plan(&a, &b, &cost);
        let ba = GroupPlanner.plan(&b, &a, &cost);
        let refs = plans_referenced_chunks([&ab, &ba].into_iter(), DEFAULT_CHUNK_BYTES);
        assert!(!refs.is_empty());
        assert!(refs.windows(2).all(|w| w[0].id < w[1].id), "sorted, unique");
        // Payload chunks are destination-model content, so every id also
        // appears in one of the two catalogs — the dedup the store gets
        // from content addressing.
        let catalog: std::collections::HashSet<ChunkId> = model_chunks(&a, DEFAULT_CHUNK_BYTES)
            .into_iter()
            .chain(model_chunks(&b, DEFAULT_CHUNK_BYTES))
            .map(|c| c.id)
            .collect();
        assert!(refs.iter().all(|c| catalog.contains(&c.id)));
    }
}
