//! Meta-operators and transformation plans (§4.3, §4.4).

use optimus_model::{OpAttrs, OpId, Operation, Weights};
use serde::{Deserialize, Serialize};

/// One in-container transformation meta-operator (§4.3).
///
/// Ids in `src` fields refer to operations of the *source* graph (the model
/// currently loaded in the container); `Add` carries the full destination
/// operation to create.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetaOp {
    /// Overwrite an operation's weights in place (structure preserved).
    Replace {
        /// Source operation to rewrite.
        src: OpId,
        /// New weights (the destination operation's values).
        weights: Weights,
    },
    /// Morph an operation's attributes (kernel size, channel count, …)
    /// without recreating it; weights are crop/zero-padded into the new
    /// shape.
    Reshape {
        /// Source operation to morph.
        src: OpId,
        /// New attributes (same kind as the source's).
        attrs: OpAttrs,
    },
    /// Delete a source operation that matches nothing in the destination.
    Reduce {
        /// Source operation to delete.
        src: OpId,
    },
    /// Create a destination operation from scratch.
    Add {
        /// The operation to create (attributes + weights).
        op: Operation,
        /// The destination-graph id this new op corresponds to (used by the
        /// executor to wire edges).
        dst: OpId,
    },
    /// Add one data-flow edge between (transformed) operations, addressed
    /// by *destination-graph* ids.
    EdgeAdd {
        /// Edge source (destination-graph id).
        from: OpId,
        /// Edge target (destination-graph id).
        to: OpId,
    },
    /// Remove one data-flow edge of the source graph.
    EdgeRemove {
        /// Edge source (source-graph id).
        from: OpId,
        /// Edge target (source-graph id).
        to: OpId,
    },
}

impl MetaOp {
    /// Short kind name (for reports and Figure 15 breakdowns).
    pub fn kind_name(&self) -> &'static str {
        match self {
            MetaOp::Replace { .. } => "replace",
            MetaOp::Reshape { .. } => "reshape",
            MetaOp::Reduce { .. } => "reduce",
            MetaOp::Add { .. } => "add",
            MetaOp::EdgeAdd { .. } | MetaOp::EdgeRemove { .. } => "edge",
        }
    }
}

/// Per-meta-operator-kind latency breakdown of a plan (Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PlanCost {
    /// Total `Replace` latency (s).
    pub replace: f64,
    /// Total `Reshape` latency (s).
    pub reshape: f64,
    /// Total `Reduce` latency (s).
    pub reduce: f64,
    /// Total `Add` latency (s).
    pub add: f64,
    /// Total `Edge` latency (s).
    pub edge: f64,
    /// Number of `Replace` steps.
    pub n_replace: usize,
    /// Number of `Reshape` steps.
    pub n_reshape: usize,
    /// Number of `Reduce` steps.
    pub n_reduce: usize,
    /// Number of `Add` steps.
    pub n_add: usize,
    /// Number of `Edge` steps.
    pub n_edge: usize,
}

impl PlanCost {
    /// Total plan execution latency (s).
    pub fn total(&self) -> f64 {
        self.replace + self.reshape + self.reduce + self.add + self.edge
    }

    /// Total number of meta-operator steps.
    pub fn step_count(&self) -> usize {
        self.n_replace + self.n_reshape + self.n_reduce + self.n_add + self.n_edge
    }
}

/// A complete transformation plan from a source model to a destination
/// model: an executable sequence of meta-operators plus its estimated cost.
///
/// The order of meta-operators does not change the cost (§4.4); plans store
/// op-level steps first and edge steps last, which is also a valid
/// execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformPlan {
    /// Source model name.
    pub src_model: String,
    /// Destination model name.
    pub dst_model: String,
    /// Executable meta-operator sequence.
    pub steps: Vec<MetaOp>,
    /// Kept-operation mapping: `(source id, destination id)` pairs that are
    /// transformed in place (possibly with zero-cost identity matches).
    pub mapping: Vec<(OpId, OpId)>,
    /// Estimated cost breakdown from offline profiling.
    pub cost: PlanCost,
    /// Name of the planner that produced this plan.
    pub planner: String,
    /// Planning latency in seconds of *host* time (Table 1 measures the
    /// planner itself, not simulated time).
    pub planning_seconds: f64,
}

impl TransformPlan {
    /// Whether this plan transforms a model into itself with no work.
    pub fn is_identity(&self) -> bool {
        self.steps.is_empty()
    }

    /// Human-readable multi-line description of the plan (for CLIs and
    /// logs): header, per-meta-operator totals, and the first few steps.
    pub fn describe(&self) -> String {
        let c = &self.cost;
        let mut out = format!(
            "plan {} -> {} ({} planner, {} steps, {:.3} s)\n",
            self.src_model,
            self.dst_model,
            self.planner,
            self.steps.len(),
            c.total()
        );
        out.push_str(&format!(
            "  replace x{} ({:.3} s)  reshape x{} ({:.3} s)  reduce x{} ({:.3} s)\n  add x{} ({:.3} s)  edge x{} ({:.4} s)\n",
            c.n_replace, c.replace, c.n_reshape, c.reshape, c.n_reduce, c.reduce,
            c.n_add, c.add, c.n_edge, c.edge
        ));
        for step in self.steps.iter().take(8) {
            let line = match step {
                MetaOp::Replace { src, .. } => format!("  Replace  {src}"),
                MetaOp::Reshape { src, attrs } => {
                    format!("  Reshape  {src} -> {:?}", attrs.kind())
                }
                MetaOp::Reduce { src } => format!("  Reduce   {src}"),
                MetaOp::Add { op, dst } => {
                    format!("  Add      {dst} ({} '{}')", op.kind(), op.name)
                }
                MetaOp::EdgeAdd { from, to } => format!("  Edge+    {from} -> {to}"),
                MetaOp::EdgeRemove { from, to } => format!("  Edge-    {from} -> {to}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        if self.steps.len() > 8 {
            out.push_str(&format!("  ... {} more steps\n", self.steps.len() - 8));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cost_totals() {
        let c = PlanCost {
            replace: 0.1,
            reshape: 0.2,
            reduce: 0.05,
            add: 0.5,
            edge: 0.01,
            n_replace: 1,
            n_reshape: 2,
            n_reduce: 3,
            n_add: 4,
            n_edge: 5,
        };
        assert!((c.total() - 0.86).abs() < 1e-12);
        assert_eq!(c.step_count(), 15);
    }

    #[test]
    fn kind_names() {
        let op = MetaOp::Reduce { src: OpId(1) };
        assert_eq!(op.kind_name(), "reduce");
        let e = MetaOp::EdgeAdd {
            from: OpId(0),
            to: OpId(1),
        };
        assert_eq!(e.kind_name(), "edge");
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn describe_summarises_plan() {
        let plan = TransformPlan {
            src_model: "a".into(),
            dst_model: "b".into(),
            steps: vec![
                MetaOp::Reduce { src: OpId(1) },
                MetaOp::EdgeAdd {
                    from: OpId(2),
                    to: OpId(3),
                },
            ],
            mapping: vec![],
            cost: PlanCost {
                reduce: 0.001,
                edge: 0.00005,
                n_reduce: 1,
                n_edge: 1,
                ..PlanCost::default()
            },
            planner: "group".into(),
            planning_seconds: 0.0,
        };
        let d = plan.describe();
        assert!(d.contains("plan a -> b"));
        assert!(d.contains("Reduce   #1"));
        assert!(d.contains("Edge+    #2 -> #3"));
        assert!(d.contains("reduce x1"));
    }

    #[test]
    fn describe_truncates_long_plans() {
        let steps: Vec<MetaOp> = (0..20).map(|i| MetaOp::Reduce { src: OpId(i) }).collect();
        let plan = TransformPlan {
            src_model: "a".into(),
            dst_model: "b".into(),
            steps,
            mapping: vec![],
            cost: PlanCost::default(),
            planner: "group".into(),
            planning_seconds: 0.0,
        };
        assert!(plan.describe().contains("... 12 more steps"));
    }
}
