//! Plan cache, model repository, and the safeguard (§4.4 Module 3).
//!
//! When a model registers in the global repository, Optimus computes and
//! caches transformation plans against the already-registered models
//! offline. At request time the scheduler *reads* the cache — no online
//! planning — and the safeguard compares the cached plan's cost with the
//! scratch-load cost, falling back to a plain load whenever transformation
//! would not help, so worst-case performance equals a traditional platform.

use std::collections::HashMap;
use std::sync::Arc;

use optimus_model::ModelGraph;
use optimus_profile::CostProvider;
use optimus_telemetry::{Counter, Histogram, MetricsRegistry};
use parking_lot::RwLock;

use crate::metaop::TransformPlan;
use crate::planner::Planner;

/// Pre-resolved telemetry handles of one repository.
///
/// `optimus_plan_cache_total{result=...}` counts the §4.4 Module 3
/// outcomes (`hit` = cached plan applied, `reject` = plan exists but the
/// safeguard chose loading, `miss` = no plan cached);
/// `optimus_planning_seconds` is the registration-time planning latency.
struct RepoTelemetry {
    plan_hit: Counter,
    plan_reject: Counter,
    plan_miss: Counter,
    planning: Histogram,
}

impl RepoTelemetry {
    fn resolve(registry: &MetricsRegistry) -> RepoTelemetry {
        let outcome =
            |result: &str| registry.counter("optimus_plan_cache_total", &[("result", result)]);
        RepoTelemetry {
            plan_hit: outcome("hit"),
            plan_reject: outcome("reject"),
            plan_miss: outcome("miss"),
            planning: registry.histogram("optimus_planning_seconds", &[]),
        }
    }
}

/// The scheduler's verdict for serving a model from a given container.
#[derive(Debug, Clone)]
pub enum TransformDecision {
    /// Transform the container's current model via the cached plan.
    Transform(Arc<TransformPlan>),
    /// Load the destination model from scratch (safeguard, §4.4).
    LoadScratch {
        /// Scratch-load latency (s).
        cost: f64,
    },
}

impl TransformDecision {
    /// Latency of taking this decision (plan cost or scratch load cost).
    pub fn latency(&self) -> f64 {
        match self {
            TransformDecision::Transform(plan) => plan.cost.total(),
            TransformDecision::LoadScratch { cost } => *cost,
        }
    }

    /// Whether the decision is a transformation.
    pub fn is_transform(&self) -> bool {
        matches!(self, TransformDecision::Transform(_))
    }
}

/// Global model repository with an offline-computed plan cache.
///
/// Thread-safe: the simulator's gateway registers models once and many
/// simulated nodes read plans concurrently.
pub struct ModelRepository {
    planner: Box<dyn Planner + Send + Sync>,
    inner: RwLock<Inner>,
    /// Plans whose transformation latency exceeds `safeguard_ratio` × the
    /// scratch-load cost are rejected in favour of loading (1.0 = paper's
    /// behaviour; lower values make the safeguard more conservative).
    safeguard_ratio: f64,
    telemetry: RwLock<RepoTelemetry>,
}

#[derive(Default)]
struct Inner {
    models: HashMap<String, Arc<ModelGraph>>,
    load_costs: HashMap<String, f64>,
    plans: HashMap<(String, String), Arc<TransformPlan>>,
}

impl ModelRepository {
    /// Repository using the given planner (production: [`crate::GroupPlanner`]).
    pub fn new(planner: Box<dyn Planner + Send + Sync>) -> Self {
        ModelRepository {
            planner,
            inner: RwLock::new(Inner::default()),
            safeguard_ratio: 1.0,
            telemetry: RwLock::new(RepoTelemetry::resolve(&optimus_telemetry::global())),
        }
    }

    /// Re-resolve telemetry handles against `registry` (the default is the
    /// process-wide [`optimus_telemetry::global`] registry). The live
    /// gateway points its repository at the registry backing its
    /// `/metrics` endpoint; hermetic tests use a private one.
    pub fn set_metrics_registry(&self, registry: &MetricsRegistry) {
        *self.telemetry.write() = RepoTelemetry::resolve(registry);
    }

    /// Override the safeguard threshold (ablation experiments; `f64::MAX`
    /// effectively disables the safeguard).
    pub fn with_safeguard_ratio(mut self, ratio: f64) -> Self {
        self.safeguard_ratio = ratio;
        self
    }

    /// Register a model: stores it, profiles its scratch-load cost, and
    /// computes + caches plans to and from every existing model (the
    /// paper's "planning strategy caching" — registration-time work).
    ///
    /// Registering the same name twice replaces the model and recomputes
    /// its plans.
    pub fn register(&self, model: ModelGraph, cost: &dyn CostProvider) {
        let name = model.name().to_string();
        let model = Arc::new(model);
        let mut inner = self.inner.write();
        inner
            .load_costs
            .insert(name.clone(), cost.model_load_cost(&model));
        let existing: Vec<Arc<ModelGraph>> = inner
            .models
            .values()
            .filter(|m| m.name() != name)
            .cloned()
            .collect();
        let planning = self.telemetry.read().planning.clone();
        for other in existing {
            // CNN↔transformer plans always lose to scratch loading (§8.2);
            // skip computing them at all and let the safeguard pick loading.
            if other.family().is_transformer() != model.family().is_transformer() {
                continue;
            }
            let t0 = std::time::Instant::now();
            let to = self.planner.plan(&other, &model, cost);
            planning.observe(t0.elapsed().as_secs_f64());
            let t1 = std::time::Instant::now();
            let from = self.planner.plan(&model, &other, cost);
            planning.observe(t1.elapsed().as_secs_f64());
            inner
                .plans
                .insert((other.name().to_string(), name.clone()), Arc::new(to));
            inner
                .plans
                .insert((name.clone(), other.name().to_string()), Arc::new(from));
        }
        inner.models.insert(name, model);
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.inner.read().models.len()
    }

    /// Look up a registered model.
    pub fn model(&self, name: &str) -> Option<Arc<ModelGraph>> {
        self.inner.read().models.get(name).cloned()
    }

    /// Profiled scratch-load cost of a registered model.
    pub fn load_cost(&self, name: &str) -> Option<f64> {
        self.inner.read().load_costs.get(name).copied()
    }

    /// Cached plan from `src` to `dst`, if both are registered and the pair
    /// is plannable.
    pub fn plan(&self, src: &str, dst: &str) -> Option<Arc<TransformPlan>> {
        self.inner
            .read()
            .plans
            .get(&(src.to_string(), dst.to_string()))
            .cloned()
    }

    /// The §4.4 Module 3 decision: serve `dst` from a container currently
    /// holding `src` — transform if the cached plan beats the scratch load
    /// (safeguard), otherwise load from scratch.
    ///
    /// Returns `None` when `dst` is not registered.
    pub fn decide(&self, src: &str, dst: &str) -> Option<TransformDecision> {
        let (decision, cached) = self.decide_uncounted(src, dst)?;
        let telemetry = self.telemetry.read();
        match (&decision, cached) {
            (TransformDecision::Transform(_), _) => telemetry.plan_hit.inc(),
            (TransformDecision::LoadScratch { .. }, true) => telemetry.plan_reject.inc(),
            (TransformDecision::LoadScratch { .. }, false) => telemetry.plan_miss.inc(),
        }
        Some(decision)
    }

    /// The decision plus whether a plan was cached for the pair, without
    /// touching the plan-cache counters.
    fn decide_uncounted(&self, src: &str, dst: &str) -> Option<(TransformDecision, bool)> {
        let inner = self.inner.read();
        let load = *inner.load_costs.get(dst)?;
        let plan = inner.plans.get(&(src.to_string(), dst.to_string()));
        Some(match plan {
            Some(p) if p.cost.total() <= load * self.safeguard_ratio => {
                (TransformDecision::Transform(p.clone()), true)
            }
            Some(_) => (TransformDecision::LoadScratch { cost: load }, true),
            None => (TransformDecision::LoadScratch { cost: load }, false),
        })
    }

    /// Transformation latency that `decide` would report, ignoring which
    /// branch is taken (used by load balancers as an edit-distance metric).
    /// Deliberately bypasses the plan-cache hit/miss counters — placement
    /// probes are not request-time cache lookups.
    pub fn transform_latency(&self, src: &str, dst: &str) -> Option<f64> {
        self.decide_uncounted(src, dst).map(|(d, _)| d.latency())
    }

    /// Names of all registered models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().models.keys().cloned().collect();
        v.sort();
        v
    }

    /// Internal: snapshot the state for persistence (see `persist`).
    pub(crate) fn snapshot_parts(&self) -> crate::persist::RepositorySnapshot {
        let inner = self.inner.read();
        let mut models: Vec<ModelGraph> = inner.models.values().map(|m| (**m).clone()).collect();
        models.sort_by(|a, b| a.name().cmp(b.name()));
        let mut plans: Vec<((String, String), crate::metaop::TransformPlan)> = inner
            .plans
            .iter()
            .map(|(k, v)| (k.clone(), (**v).clone()))
            .collect();
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        crate::persist::RepositorySnapshot {
            models,
            load_costs: inner.load_costs.clone(),
            plans,
        }
    }

    /// Internal: rebuild from persisted state (see `persist`).
    pub(crate) fn from_parts(
        planner: Box<dyn Planner + Send + Sync>,
        models: HashMap<String, Arc<ModelGraph>>,
        load_costs: HashMap<String, f64>,
        plans: HashMap<(String, String), Arc<TransformPlan>>,
    ) -> ModelRepository {
        ModelRepository {
            planner,
            inner: RwLock::new(Inner {
                models,
                load_costs,
                plans,
            }),
            safeguard_ratio: 1.0,
            telemetry: RwLock::new(RepoTelemetry::resolve(&optimus_telemetry::global())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    fn repo_with(models: Vec<ModelGraph>) -> ModelRepository {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        for m in models {
            repo.register(m, &cost);
        }
        repo
    }

    #[test]
    fn registration_precomputes_bidirectional_plans() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        assert_eq!(repo.model_count(), 2);
        assert!(repo.plan("vgg16", "vgg19").is_some());
        assert!(repo.plan("vgg19", "vgg16").is_some());
        assert!(repo.plan("vgg16", "vgg16").is_none());
    }

    #[test]
    fn decide_transforms_within_family() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let d = repo.decide("vgg16", "vgg19").unwrap();
        assert!(d.is_transform(), "vgg16→vgg19 should transform");
        assert!(d.latency() < repo.load_cost("vgg19").unwrap());
    }

    #[test]
    fn safeguard_rejects_cnn_to_transformer() {
        let repo = repo_with(vec![
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ]);
        let d = repo.decide("resnet50", "bert-mini-uncased").unwrap();
        assert!(!d.is_transform(), "CNN→transformer must load from scratch");
        assert_eq!(d.latency(), repo.load_cost("bert-mini-uncased").unwrap());
    }

    #[test]
    fn unknown_destination_yields_none() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16()]);
        assert!(repo.decide("vgg16", "missing").is_none());
        assert!(repo.load_cost("missing").is_none());
        assert!(repo.model("missing").is_none());
    }

    #[test]
    fn safeguard_ratio_zero_disables_transformation() {
        let repo = ModelRepository::new(Box::new(GroupPlanner)).with_safeguard_ratio(0.0);
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        let d = repo.decide("vgg16", "vgg19").unwrap();
        assert!(!d.is_transform());
    }

    #[test]
    fn decide_counts_plan_cache_outcomes() {
        let registry = optimus_telemetry::MetricsRegistry::new();
        let repo = repo_with(vec![
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ]);
        repo.set_metrics_registry(&registry);
        let hit = registry.counter("optimus_plan_cache_total", &[("result", "hit")]);
        let miss = registry.counter("optimus_plan_cache_total", &[("result", "miss")]);
        repo.decide("vgg16", "vgg19").unwrap(); // cached plan applies
        repo.decide("vgg16", "vgg19").unwrap();
        repo.decide("vgg16", "bert-mini-uncased").unwrap(); // never planned
        assert_eq!(hit.get(), 2);
        assert_eq!(miss.get(), 1);
        // Placement probes must not count as request-time lookups.
        repo.transform_latency("vgg16", "vgg19").unwrap();
        assert_eq!(hit.get(), 2);
        // Registration in `repo_with` ran before the registry swap, so its
        // planning latency landed in the global registry: vgg16↔vgg19 is
        // the one planned pair (both BERT directions are family-skipped).
        let planning = optimus_telemetry::global().histogram("optimus_planning_seconds", &[]);
        assert!(planning.count() >= 2, "two plan directions observed");
    }

    #[test]
    fn model_names_sorted() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg19(), optimus_zoo::vgg::vgg11()]);
        assert_eq!(repo.model_names(), vec!["vgg11", "vgg19"]);
    }
}
