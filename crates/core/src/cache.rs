//! Plan cache, model repository, and the safeguard (§4.4 Module 3).
//!
//! When a model registers in the global repository, Optimus computes and
//! caches transformation plans against the already-registered models
//! offline. At request time the scheduler *reads* the cache — no online
//! planning — and the safeguard compares the cached plan's cost with the
//! scratch-load cost, falling back to a plain load whenever transformation
//! would not help, so worst-case performance equals a traditional platform.
//!
//! # Sharded decide path
//!
//! The request-hot [`ModelRepository::decide_by_id`] never touches the
//! string-keyed catalog maps: everything a decision needs — the
//! destination's scratch-load cost, its model graph, and the map of plans
//! *into* it keyed by source [`ModelId`] — lives in a **lock-striped
//! shard** selected by `dst.index() & (shards - 1)`. A decision takes one
//! shard read lock; a registration installing into other shards contends
//! with none of it, and even installs into the *same* shard hold its
//! write lock only for the final flush (planning runs lock-free). Memory
//! is proportional to the number of cached plans (per-destination hash
//! maps), not to N² — the dense id×id plan matrix this replaces would be
//! 800 MB of `Option` pointers at a 10k-model catalog.
//!
//! The name-keyed [`ModelRepository::decide`] resolves ids through the
//! interner and delegates to `decide_by_id`, so there is exactly one
//! lookup implementation.
//!
//! # Registration concurrency
//!
//! The pairwise planning sweep never runs under a repository lock. Every
//! registration — single [`ModelRepository::register`] or bulk
//! [`ModelRepository::register_all`] — follows a snapshot → fan-out →
//! install pipeline:
//!
//! 1. **Snapshot**: a brief read lock captures the existing models (Arc
//!    clones) together with their *generation* counters.
//! 2. **Fan-out**: all pairwise plans are computed lock-free, optionally
//!    across a scoped worker pool (`crossbeam::thread::scope`). When a
//!    persisted [`PlanArtifact`] is supplied, each pair first probes it
//!    by `(src content hash, dst content hash)` — a hit skips the
//!    planner entirely (the warm-load path).
//! 3. **Install**: an installer mutex serializes installs; a short write
//!    lock on the catalog re-checks every snapshotted generation (a
//!    concurrent re-registration forces a re-plan from a fresh snapshot,
//!    so a stale plan is never published), then the affected shards are
//!    flushed one write lock at a time.
//!
//! # Catalog-scale registration
//!
//! All-pairs planning is O(N²) — the right default for product catalogs,
//! infeasible at 10k+ models. [`PlanScope::Window`] bounds the sweep to
//! each batch model's `w` nearest neighbours in batch order (O(N·w)),
//! which is how the `exp_catalog_scale` experiment registers the full
//! NASBench-201 slice; pairs outside the window simply have no cached
//! plan, so the safeguard serves them with a scratch load, exactly like
//! any other unplanned pair.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use optimus_model::{InternKey, Interner, ModelGraph, ModelId};
use optimus_profile::CostProvider;
use optimus_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::{Mutex, RwLock};

use crate::artifact::{PlanArtifact, PlanArtifactEntry, PLAN_ARTIFACT_VERSION};
use crate::metaop::TransformPlan;
use crate::planner::Planner;

/// Source id the name path uses when the source model is unknown: no plan
/// map contains it, so the decision is an honest cache miss.
const UNKNOWN_SRC: ModelId = ModelId(u32::MAX);

/// Pre-resolved telemetry handles of one repository.
///
/// `optimus_plan_cache_total{result=...}` counts the §4.4 Module 3
/// outcomes (`hit` = cached plan applied, `reject` = plan exists but the
/// safeguard chose loading, `miss` = no plan cached);
/// `optimus_plan_cache_warm_total{result=...}` counts artifact warm-load
/// probes during registration (`hit` = persisted plan reused, `miss` =
/// pair re-planned); `optimus_planning_seconds` is the per-plan planning
/// latency; `optimus_plan_warmup_seconds` is the wall-clock of one whole
/// registration batch (snapshot → fan-out → install);
/// `optimus_plan_warmup_threads` is the worker-pool width of the most
/// recent batch.
struct RepoTelemetry {
    plan_hit: Counter,
    plan_reject: Counter,
    plan_miss: Counter,
    warm_hit: Counter,
    warm_miss: Counter,
    planning: Histogram,
    warmup: Histogram,
    warmup_threads: Gauge,
}

impl RepoTelemetry {
    fn resolve(registry: &MetricsRegistry) -> RepoTelemetry {
        let outcome =
            |result: &str| registry.counter("optimus_plan_cache_total", &[("result", result)]);
        let warm =
            |result: &str| registry.counter("optimus_plan_cache_warm_total", &[("result", result)]);
        RepoTelemetry {
            plan_hit: outcome("hit"),
            plan_reject: outcome("reject"),
            plan_miss: outcome("miss"),
            warm_hit: warm("hit"),
            warm_miss: warm("miss"),
            planning: registry.histogram("optimus_planning_seconds", &[]),
            warmup: registry.histogram("optimus_plan_warmup_seconds", &[]),
            warmup_threads: registry.gauge("optimus_plan_warmup_threads", &[]),
        }
    }
}

/// The scheduler's verdict for serving a model from a given container.
#[derive(Debug, Clone)]
pub enum TransformDecision {
    /// Transform the container's current model via the cached plan.
    Transform(Arc<TransformPlan>),
    /// Load the destination model from scratch (safeguard, §4.4).
    LoadScratch {
        /// Scratch-load latency (s).
        cost: f64,
    },
}

impl TransformDecision {
    /// Latency of taking this decision (plan cost or scratch load cost).
    pub fn latency(&self) -> f64 {
        match self {
            TransformDecision::Transform(plan) => plan.cost.total(),
            TransformDecision::LoadScratch { cost } => *cost,
        }
    }

    /// Whether the decision is a transformation.
    pub fn is_transform(&self) -> bool {
        matches!(self, TransformDecision::Transform(_))
    }
}

/// How far a registration batch's pairwise planning sweep reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanScope {
    /// Plan every directed same-paradigm pair — new↔existing and new↔new
    /// (the paper's O(N²) registration-time sweep).
    AllPairs,
    /// Plan each batch model only against its `w` predecessors in batch
    /// order (both directions): O(N·w) work, the catalog-scale bulk-load
    /// mode. Pairs outside the window (including every pair against the
    /// pre-existing catalog) stay unplanned and fall back to the
    /// safeguard's scratch load.
    Window(usize),
}

/// Mutable state behind the [`OverrunGuard`] lock.
#[derive(Default)]
struct OverrunState {
    /// EWMA of observed from-scratch load seconds per destination model —
    /// the live baseline a transform's wall-clock is judged against.
    load_ewma: HashMap<ModelId, f64>,
    /// Consecutive budget overruns observed per `(src, dst)` plan.
    overruns: HashMap<(ModelId, ModelId), u32>,
    /// Plans demoted to scratch loading after too many overruns.
    demoted: HashSet<(ModelId, ModelId)>,
}

/// Runtime escalation of the §6.3 safeguard: the *planned* cost model can
/// be wrong under faults (stragglers, retries, contention), so the
/// repository also watches the *measured* wall-clock of each applied
/// plan. A plan whose execution repeatedly overruns `factor ×` the
/// destination's observed scratch-load time is **demoted**: `decide`
/// answers `LoadScratch` for that pair from then on (counted as a plan
/// rejection), exactly as if the offline safeguard had rejected it.
struct OverrunGuard {
    /// A transform execution overruns when it takes longer than
    /// `factor ×` the destination's observed scratch-load EWMA.
    factor: f64,
    /// Consecutive overruns tolerated before the pair is demoted.
    max_overruns: u32,
    state: RwLock<OverrunState>,
    /// Fast-path flag: `false` means no pair was ever demoted, so
    /// `decide` can skip the demotion probe entirely.
    any_demoted: AtomicBool,
}

impl OverrunGuard {
    fn new(factor: f64, max_overruns: u32) -> Self {
        OverrunGuard {
            factor,
            max_overruns,
            state: RwLock::new(OverrunState::default()),
            any_demoted: AtomicBool::new(false),
        }
    }

    /// Fold one observed scratch-load wall-clock into the baseline EWMA.
    fn note_load(&self, dst: ModelId, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let mut state = self.state.write();
        state
            .load_ewma
            .entry(dst)
            .and_modify(|ewma| *ewma = 0.7 * *ewma + 0.3 * seconds)
            .or_insert(seconds);
    }

    /// Judge one observed transform wall-clock; returns `true` when the
    /// observation demoted (or had already demoted) the pair. Without a
    /// load baseline for `dst` the observation is a no-op — the guard
    /// never demotes on guesswork.
    fn note_transform(&self, src: ModelId, dst: ModelId, seconds: f64) -> bool {
        if !seconds.is_finite() || seconds < 0.0 {
            return false;
        }
        let mut state = self.state.write();
        if state.demoted.contains(&(src, dst)) {
            return true;
        }
        let Some(&baseline) = state.load_ewma.get(&dst) else {
            return false;
        };
        if seconds <= self.factor * baseline {
            state.overruns.remove(&(src, dst));
            return false;
        }
        let overruns = state.overruns.entry((src, dst)).or_insert(0);
        *overruns += 1;
        if *overruns >= self.max_overruns {
            state.demoted.insert((src, dst));
            self.any_demoted.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Whether `src → dst` has been demoted. The common no-demotions case
    /// is a single relaxed atomic load.
    fn is_demoted(&self, src: ModelId, dst: ModelId) -> bool {
        self.any_demoted.load(Ordering::Acquire) && self.state.read().demoted.contains(&(src, dst))
    }
}

/// One lock stripe of the decide path, owning every id whose index maps
/// to it (`id.index() & (shards - 1)`). Slot `id.index() >> shard_bits`
/// within the stripe holds everything a `decide(…, dst=id)` needs, so a
/// decision is exactly one shard read lock.
#[derive(Default)]
struct Shard {
    /// Scratch-load cost per slot (`NAN` = not registered).
    load_costs: Vec<f64>,
    /// Model graph per slot (feeds `plan_chunks_by_id`).
    models: Vec<Option<Arc<ModelGraph>>>,
    /// Plans *into* the slot's model, keyed by source [`ModelId`]. Memory
    /// is proportional to cached plans, never to catalog².
    plans_in: Vec<HashMap<ModelId, Arc<TransformPlan>>>,
}

impl Shard {
    fn ensure(&mut self, slot: usize) {
        if slot >= self.load_costs.len() {
            self.load_costs.resize(slot + 1, f64::NAN);
            self.models.resize(slot + 1, None);
            self.plans_in.resize_with(slot + 1, HashMap::new);
        }
    }

    fn apply(&mut self, op: FlushOp) {
        match op {
            FlushOp::Model { slot, load, model } => {
                self.ensure(slot);
                self.load_costs[slot] = load;
                self.models[slot] = Some(model);
            }
            FlushOp::Plan { slot, src, plan } => {
                self.ensure(slot);
                self.plans_in[slot].insert(src, plan);
            }
        }
    }
}

/// One buffered shard mutation of an install's flush phase.
enum FlushOp {
    Model {
        slot: usize,
        load: f64,
        model: Arc<ModelGraph>,
    },
    Plan {
        slot: usize,
        src: ModelId,
        plan: Arc<TransformPlan>,
    },
}

/// Global model repository with an offline-computed plan cache.
///
/// Thread-safe: the simulator's gateway registers models once and many
/// simulated nodes read plans concurrently.
pub struct ModelRepository {
    planner: Box<dyn Planner + Send + Sync>,
    inner: RwLock<Inner>,
    /// Name ↔ id table, in its own lock so id resolution never contends
    /// with catalog installs.
    ids: RwLock<Interner<ModelId>>,
    /// Lock stripes of the decide path; length is a power of two.
    shards: Box<[RwLock<Shard>]>,
    /// `log2(shards.len())` — slot within a shard is `index >> shard_bits`.
    shard_bits: u32,
    /// Serializes install+flush phases so shard state can never lag a
    /// *later* install's flush (planning still runs concurrently).
    install: Mutex<()>,
    /// Times the planner was actually invoked (artifact warm-load hits
    /// don't count) — the "restarted node never re-plans" machine check.
    planner_calls: AtomicU64,
    /// Plans whose transformation latency exceeds `safeguard_ratio` × the
    /// scratch-load cost are rejected in favour of loading (1.0 = paper's
    /// behaviour; lower values make the safeguard more conservative).
    safeguard_ratio: f64,
    /// Measured-wall-clock escalation of the safeguard (see
    /// [`OverrunGuard`]): plans that repeatedly overrun their budget at
    /// execution time are demoted to scratch loading.
    overrun: OverrunGuard,
    telemetry: RwLock<RepoTelemetry>,
}

/// Catalog state behind the (cold-path) lock: the string-keyed source of
/// truth for persistence, snapshots, and name-based getters. The decide
/// hot path reads the [`Shard`]s instead.
#[derive(Default)]
struct Inner {
    models: HashMap<Arc<str>, Arc<ModelGraph>>,
    load_costs: HashMap<Arc<str>, f64>,
    plans: HashMap<Arc<str>, HashMap<Arc<str>, Arc<TransformPlan>>>,
    /// Per-model registration generation: bumped every time a name is
    /// (re-)registered. The install phase uses it to detect that a model
    /// snapshotted for planning was re-registered concurrently.
    generations: HashMap<Arc<str>, u64>,
    /// Content hash per model ([`ModelGraph::content_hash`]) — the
    /// plan-artifact cache key halves.
    hashes: HashMap<Arc<str>, u64>,
}

/// A model being installed by the current batch.
struct NewModel {
    name: Arc<str>,
    model: Arc<ModelGraph>,
    hash: u64,
    load: f64,
}

/// A pre-existing model snapshotted for planning.
struct ExistingModel {
    name: Arc<str>,
    model: Arc<ModelGraph>,
    hash: u64,
    generation: u64,
}

/// One directed planning job of a registration batch.
struct PlanTask {
    src: Arc<ModelGraph>,
    dst: Arc<ModelGraph>,
    src_hash: u64,
    dst_hash: u64,
}

/// Shard count sized to the machine: enough stripes that concurrent
/// decide readers rarely collide, small enough that an install's flush
/// stays cheap.
fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism().map_or(8, std::num::NonZero::get);
    (cores * 2).next_power_of_two().clamp(8, 128)
}

/// Build a fresh stripe set from the catalog (restore and re-shard paths).
fn build_shards(
    count: usize,
    shard_bits: u32,
    inner: &Inner,
    ids: &Interner<ModelId>,
) -> Box<[RwLock<Shard>]> {
    let mask = count - 1;
    let mut shards: Vec<Shard> = (0..count).map(|_| Shard::default()).collect();
    for (name, model) in &inner.models {
        let id = ids.get(name).expect("registered name is interned");
        let slot = id.index() >> shard_bits;
        let shard = &mut shards[id.index() & mask];
        shard.ensure(slot);
        shard.load_costs[slot] = inner.load_costs.get(name).copied().unwrap_or(f64::NAN);
        shard.models[slot] = Some(model.clone());
    }
    for (src, per_src) in &inner.plans {
        let Some(si) = ids.get(src) else {
            continue;
        };
        for (dst, plan) in per_src {
            let Some(di) = ids.get(dst) else {
                continue;
            };
            let slot = di.index() >> shard_bits;
            let shard = &mut shards[di.index() & mask];
            shard.ensure(slot);
            shard.plans_in[slot].insert(si, plan.clone());
        }
    }
    shards.into_iter().map(RwLock::new).collect()
}

/// Reuse a warm-loaded plan for a task, rebinding the endpoint names when
/// the exporting repository knew the graphs under different ones.
fn rebind(hit: &Arc<TransformPlan>, src: &ModelGraph, dst: &ModelGraph) -> Arc<TransformPlan> {
    if hit.src_model == src.name() && hit.dst_model == dst.name() {
        return hit.clone();
    }
    let mut plan = (**hit).clone();
    plan.src_model = src.name().to_string();
    plan.dst_model = dst.name().to_string();
    Arc::new(plan)
}

impl ModelRepository {
    /// Repository using the given planner (production: [`crate::GroupPlanner`]),
    /// with a machine-sized shard count.
    pub fn new(planner: Box<dyn Planner + Send + Sync>) -> Self {
        let count = default_shard_count();
        ModelRepository {
            planner,
            inner: RwLock::new(Inner::default()),
            ids: RwLock::new(Interner::new()),
            shards: (0..count).map(|_| RwLock::new(Shard::default())).collect(),
            shard_bits: count.trailing_zeros(),
            install: Mutex::new(()),
            planner_calls: AtomicU64::new(0),
            safeguard_ratio: 1.0,
            overrun: OverrunGuard::new(3.0, 2),
            telemetry: RwLock::new(RepoTelemetry::resolve(&optimus_telemetry::global())),
        }
    }

    /// Re-resolve telemetry handles against `registry` (the default is the
    /// process-wide [`optimus_telemetry::global`] registry). The live
    /// gateway points its repository at the registry backing its
    /// `/metrics` endpoint; hermetic tests use a private one.
    pub fn set_metrics_registry(&self, registry: &MetricsRegistry) {
        *self.telemetry.write() = RepoTelemetry::resolve(registry);
    }

    /// Override the safeguard threshold (ablation experiments; `f64::MAX`
    /// effectively disables the safeguard).
    pub fn with_safeguard_ratio(mut self, ratio: f64) -> Self {
        self.safeguard_ratio = ratio;
        self
    }

    /// Override the decide-path stripe count (rounded up to a power of
    /// two; `1` = the single-map baseline). Rebuilds the stripes from the
    /// catalog, so it is safe after registrations too — but it takes
    /// `self` by value, so only before the repository is shared.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        self.shard_bits = count.trailing_zeros();
        self.shards = build_shards(
            count,
            self.shard_bits,
            self.inner.get_mut(),
            self.ids.get_mut(),
        );
        self
    }

    /// Number of decide-path lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Times the planner has actually been invoked by this repository.
    /// Artifact warm-load hits bypass the planner and do not count — a
    /// node restarted against a complete artifact reports 0.
    pub fn planner_invocations(&self) -> u64 {
        self.planner_calls.load(Ordering::Relaxed)
    }

    /// Override the runtime overrun policy: a plan whose measured
    /// execution exceeds `factor ×` the destination's observed
    /// scratch-load time `max_overruns` consecutive times is demoted to
    /// scratch loading (default: 3.0×, 2 overruns).
    pub fn with_overrun_policy(mut self, factor: f64, max_overruns: u32) -> Self {
        self.overrun = OverrunGuard::new(factor, max_overruns.max(1));
        self
    }

    /// Report the measured wall-clock of a from-scratch load of `dst`,
    /// feeding the baseline the overrun guard judges transforms against.
    pub fn note_load_seconds(&self, dst: ModelId, seconds: f64) {
        self.overrun.note_load(dst, seconds);
    }

    /// Report the measured wall-clock of an applied `src → dst`
    /// transform. Returns `true` when the observation demoted (or the
    /// guard had already demoted) the pair — the caller's signal to count
    /// an overrun and expect `decide` to answer `LoadScratch` from now on.
    pub fn note_transform_seconds(&self, src: ModelId, dst: ModelId, seconds: f64) -> bool {
        self.overrun.note_transform(src, dst, seconds)
    }

    /// Whether the overrun guard has demoted `src → dst` to scratch
    /// loading.
    pub fn is_demoted(&self, src: ModelId, dst: ModelId) -> bool {
        self.overrun.is_demoted(src, dst)
    }

    /// Register a model: stores it, profiles its scratch-load cost, and
    /// computes + caches plans to and from every existing model (the
    /// paper's "planning strategy caching" — registration-time work).
    ///
    /// Planning runs outside the repository lock (see the module docs);
    /// `decide()` readers are never blocked for the duration of the sweep.
    ///
    /// Registering the same name twice replaces the model and recomputes
    /// its plans.
    pub fn register(&self, model: ModelGraph, cost: &(dyn CostProvider + Sync)) {
        self.register_batch(vec![model], cost, 1, PlanScope::AllPairs, None);
    }

    /// [`ModelRepository::register`] warm-loading from a persisted
    /// [`PlanArtifact`]: pairs touching the new model whose content-hash
    /// key hits the artifact reuse the persisted plan without invoking
    /// the planner. The incremental-catalog-growth path — a gateway that
    /// registers models one at a time replays plans exactly like the
    /// bulk restart path does.
    pub fn register_with_artifact(
        &self,
        model: ModelGraph,
        cost: &(dyn CostProvider + Sync),
        artifact: &PlanArtifact,
    ) {
        self.register_batch(vec![model], cost, 1, PlanScope::AllPairs, Some(artifact));
    }

    /// Bulk-register a whole catalog, fanning the O(N²) pairwise planning
    /// sweep across a scoped worker pool sized to the machine
    /// ([`std::thread::available_parallelism`]).
    ///
    /// The resulting plan set is identical to registering the models one
    /// by one with [`ModelRepository::register`]; only the wall-clock (and
    /// the lock-hold time) differs. When `models` contains duplicates of a
    /// name the last one wins, matching sequential re-registration.
    pub fn register_all(&self, models: Vec<ModelGraph>, cost: &(dyn CostProvider + Sync)) {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        self.register_batch(models, cost, threads, PlanScope::AllPairs, None);
    }

    /// [`ModelRepository::register_all`] with an explicit worker count
    /// (`1` = plan inline on the calling thread; used by the warmup
    /// scaling experiment).
    pub fn register_all_with_threads(
        &self,
        models: Vec<ModelGraph>,
        cost: &(dyn CostProvider + Sync),
        threads: usize,
    ) {
        self.register_batch(models, cost, threads.max(1), PlanScope::AllPairs, None);
    }

    /// [`ModelRepository::register_all`] warm-loading from a persisted
    /// [`PlanArtifact`]: pairs whose `(src content hash, dst content
    /// hash)` key hits the artifact reuse the persisted plan without
    /// invoking the planner. The restart/fleet-join path.
    pub fn register_all_with_artifact(
        &self,
        models: Vec<ModelGraph>,
        cost: &(dyn CostProvider + Sync),
        artifact: &PlanArtifact,
    ) {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        self.register_batch(models, cost, threads, PlanScope::AllPairs, Some(artifact));
    }

    /// Fully explicit bulk registration: worker count, planning scope
    /// (see [`PlanScope`]), and an optional warm-load artifact. The
    /// catalog-scale entry point — `exp_catalog_scale` registers 10k+
    /// models with `PlanScope::Window`.
    pub fn register_all_scoped(
        &self,
        models: Vec<ModelGraph>,
        cost: &(dyn CostProvider + Sync),
        threads: usize,
        scope: PlanScope,
        artifact: Option<&PlanArtifact>,
    ) {
        self.register_batch(models, cost, threads.max(1), scope, artifact);
    }

    /// The snapshot → fan-out → install pipeline shared by all
    /// registration entry points.
    fn register_batch(
        &self,
        models: Vec<ModelGraph>,
        cost: &(dyn CostProvider + Sync),
        threads: usize,
        scope: PlanScope,
        artifact: Option<&PlanArtifact>,
    ) {
        if models.is_empty() {
            return;
        }
        let t0 = Instant::now();
        // Dedupe by name, last occurrence wins (sequential semantics);
        // first-seen position defines the Window neighbourhood order.
        let mut order: Vec<Arc<str>> = Vec::with_capacity(models.len());
        let mut by_name: HashMap<Arc<str>, Arc<ModelGraph>> = HashMap::with_capacity(models.len());
        for model in models {
            let name: Arc<str> = Arc::from(model.name());
            if by_name.insert(name.clone(), Arc::new(model)).is_none() {
                order.push(name);
            }
        }
        let new: Vec<NewModel> = order
            .into_iter()
            .map(|name| {
                let model = by_name[&name].clone();
                NewModel {
                    hash: model.content_hash(),
                    load: cost.model_load_cost(&model),
                    name,
                    model,
                }
            })
            .collect();
        let warm_index = artifact.map(|a| a.index());
        loop {
            // 1. Snapshot the existing catalog under a brief read lock.
            let existing: Vec<ExistingModel> = {
                let inner = self.inner.read();
                inner
                    .models
                    .iter()
                    .filter(|(name, _)| !by_name.contains_key(*name))
                    .map(|(name, model)| ExistingModel {
                        name: name.clone(),
                        model: model.clone(),
                        hash: inner.hashes.get(name).copied().unwrap_or(0),
                        generation: inner.generations.get(name).copied().unwrap_or(0),
                    })
                    .collect()
            };
            // 2. Fan the pairwise sweep out, lock-free.
            let tasks = self.build_tasks(&new, &existing, scope);
            let planned = self.execute_tasks(&tasks, cost, threads, warm_index.as_ref());
            // 3. Install: catalog maps first (one short write lock,
            //    re-checking the snapshot generations), then flush the
            //    affected shards. The installer mutex spans both so a
            //    later install can never be overtaken by our flush.
            let _installer = self.install.lock();
            let mut inner = self.inner.write();
            let snapshot_names: HashSet<&Arc<str>> = existing.iter().map(|e| &e.name).collect();
            let stale = existing
                .iter()
                .any(|e| inner.generations.get(&e.name).copied().unwrap_or(0) != e.generation)
                || inner
                    .models
                    .keys()
                    .any(|name| !by_name.contains_key(name) && !snapshot_names.contains(name));
            if stale {
                // A concurrent registration changed the catalog while we
                // planned; our batch may reference stale graphs or miss
                // pairs. Discard and re-plan against a fresh snapshot.
                drop(inner);
                continue;
            }
            for m in &new {
                inner.models.insert(m.name.clone(), m.model.clone());
                inner.load_costs.insert(m.name.clone(), m.load);
                inner.hashes.insert(m.name.clone(), m.hash);
                *inner.generations.entry(m.name.clone()).or_insert(0) += 1;
            }
            for (task, plan) in tasks.iter().zip(&planned) {
                let src: Arc<str> = Arc::from(task.src.name());
                let dst: Arc<str> = Arc::from(task.dst.name());
                inner
                    .plans
                    .entry(src)
                    .or_default()
                    .insert(dst, plan.clone());
            }
            // Intern new names in sorted order so id assignment is
            // deterministic regardless of batch order, then buffer the
            // flush per shard while the tables are consistent.
            let mut ids = self.ids.write();
            let mut sorted_new: Vec<&NewModel> = new.iter().collect();
            sorted_new.sort_by(|a, b| a.name.cmp(&b.name));
            for m in sorted_new {
                ids.resolve(&m.name);
            }
            let mask = self.shards.len() - 1;
            let mut per_shard: Vec<Vec<FlushOp>> =
                (0..self.shards.len()).map(|_| Vec::new()).collect();
            for m in &new {
                let id = ids.get(&m.name).expect("just interned");
                per_shard[id.index() & mask].push(FlushOp::Model {
                    slot: id.index() >> self.shard_bits,
                    load: m.load,
                    model: m.model.clone(),
                });
            }
            for (task, plan) in tasks.iter().zip(&planned) {
                let si = ids
                    .get(task.src.name())
                    .expect("task endpoints are interned");
                let di = ids
                    .get(task.dst.name())
                    .expect("task endpoints are interned");
                per_shard[di.index() & mask].push(FlushOp::Plan {
                    slot: di.index() >> self.shard_bits,
                    src: si,
                    plan: plan.clone(),
                });
            }
            drop(ids);
            drop(inner);
            // 4. Flush, one shard write lock at a time: a concurrent
            //    decide contends with at most one stripe's batch, never
            //    with the whole install.
            for (shard, ops) in self.shards.iter().zip(per_shard) {
                if ops.is_empty() {
                    continue;
                }
                let mut shard = shard.write();
                for op in ops {
                    shard.apply(op);
                }
            }
            break;
        }
        let telemetry = self.telemetry.read();
        telemetry.warmup.observe(t0.elapsed().as_secs_f64());
        telemetry.warmup_threads.set(threads as f64);
    }

    /// All directed planning jobs of a batch under `scope`, skipping
    /// cross-paradigm pairs (CNN↔transformer plans always lose to scratch
    /// loading, §8.2 — the safeguard picks loading without a cached plan).
    fn build_tasks(
        &self,
        new: &[NewModel],
        existing: &[ExistingModel],
        scope: PlanScope,
    ) -> Vec<PlanTask> {
        let mut tasks = Vec::new();
        let mut push_pair = |a: (&Arc<ModelGraph>, u64), b: (&Arc<ModelGraph>, u64)| {
            if a.0.family().is_transformer() != b.0.family().is_transformer() {
                return;
            }
            tasks.push(PlanTask {
                src: a.0.clone(),
                dst: b.0.clone(),
                src_hash: a.1,
                dst_hash: b.1,
            });
            tasks.push(PlanTask {
                src: b.0.clone(),
                dst: a.0.clone(),
                src_hash: b.1,
                dst_hash: a.1,
            });
        };
        match scope {
            PlanScope::AllPairs => {
                for m in new {
                    for e in existing {
                        push_pair((&e.model, e.hash), (&m.model, m.hash));
                    }
                }
                for (i, a) in new.iter().enumerate() {
                    for b in new.iter().skip(i + 1) {
                        push_pair((&a.model, a.hash), (&b.model, b.hash));
                    }
                }
            }
            PlanScope::Window(w) => {
                for (i, b) in new.iter().enumerate() {
                    for a in new.iter().take(i).skip(i.saturating_sub(w)) {
                        push_pair((&a.model, a.hash), (&b.model, b.hash));
                    }
                }
            }
        }
        tasks
    }

    /// Compute every task's plan: inline for a single worker, otherwise on
    /// a scoped pool pulling tasks off a shared atomic cursor (dynamic
    /// load balancing — plan sizes vary wildly across model pairs). With a
    /// warm index, each task first probes the persisted artifact by
    /// content-hash key; hits bypass the planner entirely.
    fn execute_tasks(
        &self,
        tasks: &[PlanTask],
        cost: &(dyn CostProvider + Sync),
        threads: usize,
        warm: Option<&HashMap<(u64, u64), Arc<TransformPlan>>>,
    ) -> Vec<Arc<TransformPlan>> {
        let (planning, warm_hit, warm_miss) = {
            let telemetry = self.telemetry.read();
            (
                telemetry.planning.clone(),
                telemetry.warm_hit.clone(),
                telemetry.warm_miss.clone(),
            )
        };
        let plan_one = |task: &PlanTask| -> Arc<TransformPlan> {
            if let Some(index) = warm {
                if let Some(hit) = index.get(&(task.src_hash, task.dst_hash)) {
                    warm_hit.inc();
                    return rebind(hit, &task.src, &task.dst);
                }
                warm_miss.inc();
            }
            let t = Instant::now();
            let plan = self.planner.plan(&task.src, &task.dst, cost);
            self.planner_calls.fetch_add(1, Ordering::Relaxed);
            planning.observe(t.elapsed().as_secs_f64());
            Arc::new(plan)
        };
        let workers = threads.min(tasks.len());
        if workers <= 1 {
            return tasks.iter().map(plan_one).collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<Arc<TransformPlan>>>> =
            tasks.iter().map(|_| std::sync::Mutex::new(None)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    *results[i].lock().expect("unshared slot") = Some(plan_one(task));
                });
            }
        })
        .expect("planning worker panicked");
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("slot filled"))
            .collect()
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.inner.read().models.len()
    }

    /// Look up a registered model.
    pub fn model(&self, name: &str) -> Option<Arc<ModelGraph>> {
        self.inner.read().models.get(name).cloned()
    }

    /// Profiled scratch-load cost of a registered model.
    pub fn load_cost(&self, name: &str) -> Option<f64> {
        self.inner.read().load_costs.get(name).copied()
    }

    /// Cached plan from `src` to `dst`, if both are registered and the pair
    /// is plannable.
    pub fn plan(&self, src: &str, dst: &str) -> Option<Arc<TransformPlan>> {
        let inner = self.inner.read();
        inner.plans.get(src)?.get(dst).cloned()
    }

    /// Resolve a `(src, dst)` name pair to ids: `None` when the
    /// destination is unregistered, the [`UNKNOWN_SRC`] sentinel when
    /// only the source is (an honest plan miss downstream).
    fn resolve_pair(&self, src: &str, dst: &str) -> Option<(ModelId, ModelId)> {
        let ids = self.ids.read();
        let di = ids.get(dst)?;
        Some((ids.get(src).unwrap_or(UNKNOWN_SRC), di))
    }

    /// The §4.4 Module 3 decision: serve `dst` from a container currently
    /// holding `src` — transform if the cached plan beats the scratch load
    /// (safeguard), otherwise load from scratch.
    ///
    /// Returns `None` when `dst` is not registered. Delegates to
    /// [`ModelRepository::decide_by_id`] — the name path is id resolution
    /// plus the one sharded lookup implementation.
    pub fn decide(&self, src: &str, dst: &str) -> Option<TransformDecision> {
        let (si, di) = self.resolve_pair(src, dst)?;
        self.decide_by_id(si, di)
    }

    /// Interned id of a registered model (`None` if the name is unknown).
    ///
    /// Ids are dense, stable across re-registrations, and valid only
    /// against this repository instance; they feed the `*_by_id` fast
    /// paths the simulator's per-event loop runs on.
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.ids.read().get(name)
    }

    /// Name behind an interned id (`None` for an id this repository never
    /// handed out).
    pub fn model_name_of(&self, id: ModelId) -> Option<String> {
        let ids = self.ids.read();
        (id.index() < ids.len()).then(|| ids.name(id).to_string())
    }

    /// Id-keyed [`ModelRepository::decide`]: same decision and the same
    /// plan-cache telemetry, but the lookup is one shard read lock and
    /// two slot probes — the per-donor cost of the simulator's donor scan.
    pub fn decide_by_id(&self, src: ModelId, dst: ModelId) -> Option<TransformDecision> {
        let (decision, cached) = self.decide_uncounted_by_id(src, dst)?;
        let telemetry = self.telemetry.read();
        match (&decision, cached) {
            (TransformDecision::Transform(_), _) => telemetry.plan_hit.inc(),
            (TransformDecision::LoadScratch { .. }, true) => telemetry.plan_reject.inc(),
            (TransformDecision::LoadScratch { .. }, false) => telemetry.plan_miss.inc(),
        }
        Some(decision)
    }

    /// Id-keyed [`ModelRepository::transform_latency`] (placement probes;
    /// bypasses the plan-cache counters).
    pub fn transform_latency_by_id(&self, src: ModelId, dst: ModelId) -> Option<f64> {
        self.decide_uncounted_by_id(src, dst)
            .map(|(d, _)| d.latency())
    }

    fn decide_uncounted_by_id(
        &self,
        src: ModelId,
        dst: ModelId,
    ) -> Option<(TransformDecision, bool)> {
        let shard = self.shards[dst.index() & (self.shards.len() - 1)].read();
        let slot = dst.index() >> self.shard_bits;
        let load = *shard.load_costs.get(slot)?;
        if load.is_nan() {
            return None;
        }
        let plan = shard.plans_in[slot].get(&src);
        Some(match plan {
            Some(p) if p.cost.total() <= load * self.safeguard_ratio => {
                if self.overrun.is_demoted(src, dst) {
                    (TransformDecision::LoadScratch { cost: load }, true)
                } else {
                    (TransformDecision::Transform(p.clone()), true)
                }
            }
            Some(_) => (TransformDecision::LoadScratch { cost: load }, true),
            None => (TransformDecision::LoadScratch { cost: load }, false),
        })
    }

    /// Transformation latency that `decide` would report, ignoring which
    /// branch is taken (used by load balancers as an edit-distance metric).
    /// Deliberately bypasses the plan-cache hit/miss counters — placement
    /// probes are not request-time cache lookups.
    pub fn transform_latency(&self, src: &str, dst: &str) -> Option<f64> {
        let (si, di) = self.resolve_pair(src, dst)?;
        self.transform_latency_by_id(si, di)
    }

    /// Chunk split of the cached `src → dst` plan (see
    /// [`crate::plan_chunks`]): the payload chunks a store must fetch vs.
    /// the destination chunks reused from the source in place. `None`
    /// when either model is unregistered or no plan is cached.
    pub fn plan_chunks(
        &self,
        src: &str,
        dst: &str,
        chunk_bytes: u64,
    ) -> Option<crate::chunks::PlanChunks> {
        let (si, di) = self.resolve_pair(src, dst)?;
        self.plan_chunks_by_id(si, di, chunk_bytes)
    }

    /// Id-keyed [`ModelRepository::plan_chunks`] (used by the simulator's
    /// store-state precomputation).
    pub fn plan_chunks_by_id(
        &self,
        src: ModelId,
        dst: ModelId,
        chunk_bytes: u64,
    ) -> Option<crate::chunks::PlanChunks> {
        let (plan, model) = {
            let shard = self.shards[dst.index() & (self.shards.len() - 1)].read();
            let slot = dst.index() >> self.shard_bits;
            let plan = shard.plans_in.get(slot)?.get(&src)?.clone();
            let model = shard.models.get(slot)?.clone()?;
            (plan, model)
        };
        Some(crate::chunks::plan_chunks(&plan, &model, chunk_bytes))
    }

    /// Deduplicated union of every cached plan's payload chunks, sorted
    /// by id. Nodes pin this working set in their weight store so LRU
    /// pressure never evicts bytes a cached transformation is about to
    /// write.
    pub fn plan_referenced_chunks(&self, chunk_bytes: u64) -> Vec<optimus_store::ChunkRef> {
        let plans: Vec<Arc<TransformPlan>> = {
            let inner = self.inner.read();
            inner
                .plans
                .values()
                .flat_map(|per_src| per_src.values().cloned())
                .collect()
        };
        crate::chunks::plans_referenced_chunks(plans.iter().map(|p| p.as_ref()), chunk_bytes)
    }

    /// Export the plan cache as a content-addressed, version-stamped
    /// [`PlanArtifact`]: every cached plan keyed by its endpoints'
    /// [`ModelGraph::content_hash`], sorted for byte-determinism. The
    /// inverse of [`ModelRepository::register_all_with_artifact`].
    pub fn export_plan_artifact(&self) -> PlanArtifact {
        let inner = self.inner.read();
        let mut entries: Vec<PlanArtifactEntry> = Vec::new();
        for (src, per_src) in &inner.plans {
            let Some(&src_hash) = inner.hashes.get(src) else {
                continue;
            };
            for (dst, plan) in per_src {
                let Some(&dst_hash) = inner.hashes.get(dst) else {
                    continue;
                };
                entries.push(PlanArtifactEntry {
                    src_hash,
                    dst_hash,
                    plan: (**plan).clone(),
                });
            }
        }
        entries.sort_by(|a, b| {
            (a.src_hash, a.dst_hash, &a.plan.src_model, &a.plan.dst_model).cmp(&(
                b.src_hash,
                b.dst_hash,
                &b.plan.src_model,
                &b.plan.dst_model,
            ))
        });
        PlanArtifact {
            version: PLAN_ARTIFACT_VERSION,
            cost_model: optimus_profile::COST_MODEL_VERSION,
            entries,
        }
    }

    /// Content hashes of every registered model — the liveness set for
    /// [`PlanArtifact::gc`]: an artifact entry whose endpoints are both in
    /// this set belongs to the current catalog.
    pub fn catalog_hashes(&self) -> std::collections::HashSet<u64> {
        self.inner.read().hashes.values().copied().collect()
    }

    /// Names of all registered models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .models
            .keys()
            .map(|k| k.to_string())
            .collect();
        v.sort();
        v
    }

    /// Internal: snapshot the state for persistence (see `persist`).
    pub(crate) fn snapshot_parts(&self) -> crate::persist::RepositorySnapshot {
        let inner = self.inner.read();
        let mut models: Vec<ModelGraph> = inner.models.values().map(|m| (**m).clone()).collect();
        models.sort_by(|a, b| a.name().cmp(b.name()));
        let mut plans: Vec<((String, String), crate::metaop::TransformPlan)> = inner
            .plans
            .iter()
            .flat_map(|(src, per_src)| {
                per_src
                    .iter()
                    .map(|(dst, plan)| ((src.to_string(), dst.to_string()), (**plan).clone()))
            })
            .collect();
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        crate::persist::RepositorySnapshot {
            version: crate::persist::SNAPSHOT_VERSION,
            models,
            load_costs: inner
                .load_costs
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            plans,
        }
    }

    /// Internal: rebuild from persisted state (see `persist`).
    pub(crate) fn from_parts(
        planner: Box<dyn Planner + Send + Sync>,
        models: HashMap<String, Arc<ModelGraph>>,
        load_costs: HashMap<String, f64>,
        plans: HashMap<(String, String), Arc<TransformPlan>>,
    ) -> ModelRepository {
        let mut inner = Inner::default();
        for (name, model) in models {
            let name: Arc<str> = Arc::from(name.as_str());
            inner.generations.insert(name.clone(), 1);
            inner.hashes.insert(name.clone(), model.content_hash());
            inner.models.insert(name, model);
        }
        for (name, cost) in load_costs {
            inner.load_costs.insert(Arc::from(name.as_str()), cost);
        }
        for ((src, dst), plan) in plans {
            inner
                .plans
                .entry(Arc::from(src.as_str()))
                .or_default()
                .insert(Arc::from(dst.as_str()), plan);
        }
        let mut ids = Interner::new();
        let mut names: Vec<&Arc<str>> = inner.models.keys().collect();
        names.sort();
        for name in names {
            ids.resolve(name);
        }
        let count = default_shard_count();
        let shard_bits = count.trailing_zeros();
        let shards = build_shards(count, shard_bits, &inner, &ids);
        ModelRepository {
            planner,
            inner: RwLock::new(inner),
            ids: RwLock::new(ids),
            shards,
            shard_bits,
            install: Mutex::new(()),
            planner_calls: AtomicU64::new(0),
            safeguard_ratio: 1.0,
            overrun: OverrunGuard::new(3.0, 2),
            telemetry: RwLock::new(RepoTelemetry::resolve(&optimus_telemetry::global())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    fn repo_with(models: Vec<ModelGraph>) -> ModelRepository {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        for m in models {
            repo.register(m, &cost);
        }
        repo
    }

    #[test]
    fn registration_precomputes_bidirectional_plans() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        assert_eq!(repo.model_count(), 2);
        assert!(repo.plan("vgg16", "vgg19").is_some());
        assert!(repo.plan("vgg19", "vgg16").is_some());
        assert!(repo.plan("vgg16", "vgg16").is_none());
    }

    #[test]
    fn decide_transforms_within_family() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let d = repo.decide("vgg16", "vgg19").unwrap();
        assert!(d.is_transform(), "vgg16→vgg19 should transform");
        assert!(d.latency() < repo.load_cost("vgg19").unwrap());
    }

    #[test]
    fn safeguard_rejects_cnn_to_transformer() {
        let repo = repo_with(vec![
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ]);
        let d = repo.decide("resnet50", "bert-mini-uncased").unwrap();
        assert!(!d.is_transform(), "CNN→transformer must load from scratch");
        assert_eq!(d.latency(), repo.load_cost("bert-mini-uncased").unwrap());
    }

    #[test]
    fn unknown_destination_yields_none() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16()]);
        assert!(repo.decide("vgg16", "missing").is_none());
        assert!(repo.load_cost("missing").is_none());
        assert!(repo.model("missing").is_none());
    }

    #[test]
    fn overrun_guard_demotes_after_repeated_overruns() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()])
            .with_overrun_policy(3.0, 2);
        let src = repo.model_id("vgg16").unwrap();
        let dst = repo.model_id("vgg19").unwrap();
        assert!(repo.decide_by_id(src, dst).unwrap().is_transform());

        // No load baseline yet: overrun observations are a no-op.
        assert!(!repo.note_transform_seconds(src, dst, 100.0));
        assert!(!repo.is_demoted(src, dst));

        repo.note_load_seconds(dst, 1.0);
        // Within budget: nothing happens, even repeatedly.
        assert!(!repo.note_transform_seconds(src, dst, 2.0));
        // First overrun tolerated, second demotes.
        assert!(!repo.note_transform_seconds(src, dst, 10.0));
        assert!(repo.decide_by_id(src, dst).unwrap().is_transform());
        assert!(repo.note_transform_seconds(src, dst, 10.0));
        assert!(repo.is_demoted(src, dst));

        // Both decide paths now answer LoadScratch for the demoted pair
        // (counted as a plan rejection), while the reverse direction is
        // untouched.
        assert!(!repo.decide_by_id(src, dst).unwrap().is_transform());
        assert!(!repo.decide("vgg16", "vgg19").unwrap().is_transform());
        assert!(repo.decide_by_id(dst, src).unwrap().is_transform());
        assert!(repo.decide("vgg19", "vgg16").unwrap().is_transform());
    }

    #[test]
    fn overrun_guard_resets_streak_on_in_budget_execution() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()])
            .with_overrun_policy(3.0, 2);
        let src = repo.model_id("vgg16").unwrap();
        let dst = repo.model_id("vgg19").unwrap();
        repo.note_load_seconds(dst, 1.0);
        // overrun, in-budget (streak resets), overrun: still not demoted.
        assert!(!repo.note_transform_seconds(src, dst, 10.0));
        assert!(!repo.note_transform_seconds(src, dst, 1.0));
        assert!(!repo.note_transform_seconds(src, dst, 10.0));
        assert!(!repo.is_demoted(src, dst));
        assert!(repo.decide_by_id(src, dst).unwrap().is_transform());
    }

    #[test]
    fn safeguard_ratio_zero_disables_transformation() {
        let repo = ModelRepository::new(Box::new(GroupPlanner)).with_safeguard_ratio(0.0);
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        let d = repo.decide("vgg16", "vgg19").unwrap();
        assert!(!d.is_transform());
    }

    #[test]
    fn decide_counts_plan_cache_outcomes() {
        let registry = optimus_telemetry::MetricsRegistry::new();
        let repo = repo_with(vec![
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ]);
        repo.set_metrics_registry(&registry);
        let hit = registry.counter("optimus_plan_cache_total", &[("result", "hit")]);
        let miss = registry.counter("optimus_plan_cache_total", &[("result", "miss")]);
        repo.decide("vgg16", "vgg19").unwrap(); // cached plan applies
        repo.decide("vgg16", "vgg19").unwrap();
        repo.decide("vgg16", "bert-mini-uncased").unwrap(); // never planned
        assert_eq!(hit.get(), 2);
        assert_eq!(miss.get(), 1);
        // Placement probes must not count as request-time lookups.
        repo.transform_latency("vgg16", "vgg19").unwrap();
        assert_eq!(hit.get(), 2);
        // Registration in `repo_with` ran before the registry swap, so its
        // planning latency landed in the global registry: vgg16↔vgg19 is
        // the one planned pair (both BERT directions are family-skipped).
        let planning = optimus_telemetry::global().histogram("optimus_planning_seconds", &[]);
        assert!(planning.count() >= 2, "two plan directions observed");
    }

    #[test]
    fn model_names_sorted() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg19(), optimus_zoo::vgg::vgg11()]);
        assert_eq!(repo.model_names(), vec!["vgg11", "vgg19"]);
    }

    #[test]
    fn register_all_matches_sequential_registration() {
        let models = || {
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::resnet::resnet18(),
                optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
            ]
        };
        let cost = CostModel::default();
        let sequential = repo_with(models());
        let bulk = ModelRepository::new(Box::new(GroupPlanner));
        bulk.register_all_with_threads(models(), &cost, 4);
        assert_eq!(bulk.model_names(), sequential.model_names());
        let a = sequential.snapshot().canonicalized().to_json();
        let b = bulk.snapshot().canonicalized().to_json();
        assert_eq!(a, b, "bulk and sequential registration must agree");
    }

    #[test]
    fn register_all_records_warmup_telemetry() {
        let registry = optimus_telemetry::MetricsRegistry::new();
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        repo.set_metrics_registry(&registry);
        let cost = CostModel::default();
        repo.register_all_with_threads(
            vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()],
            &cost,
            2,
        );
        let warmup = registry.histogram("optimus_plan_warmup_seconds", &[]);
        assert_eq!(warmup.count(), 1, "one batch observed");
        let threads = registry.gauge("optimus_plan_warmup_threads", &[]);
        assert_eq!(threads.get(), 2.0);
    }

    #[test]
    fn register_all_dedupes_names_last_wins() {
        let cost = CostModel::default();
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        // Same name twice in one batch: the later graph must win, exactly
        // like sequential re-registration.
        let first = optimus_zoo::vgg::vgg11();
        let second = optimus_zoo::vgg::vgg11();
        repo.register_all_with_threads(vec![first, second, optimus_zoo::vgg::vgg16()], &cost, 2);
        assert_eq!(repo.model_count(), 2);
        assert!(repo.plan("vgg11", "vgg16").is_some());
        assert!(repo.plan("vgg16", "vgg11").is_some());
    }

    #[test]
    fn id_fast_path_agrees_with_string_path() {
        let repo = repo_with(vec![
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
        ]);
        let names = repo.model_names();
        for src in &names {
            let si = repo.model_id(src).expect("registered");
            assert_eq!(repo.model_name_of(si).as_deref(), Some(src.as_str()));
            for dst in &names {
                let di = repo.model_id(dst).expect("registered");
                let by_name = repo
                    .decide(src, dst)
                    .map(|d| (d.is_transform(), d.latency()));
                let by_id = repo
                    .decide_by_id(si, di)
                    .map(|d| (d.is_transform(), d.latency()));
                assert_eq!(by_name, by_id, "{src} -> {dst}");
                assert_eq!(
                    repo.transform_latency(src, dst),
                    repo.transform_latency_by_id(si, di)
                );
                let chunk = 1 << 20;
                assert_eq!(
                    repo.plan_chunks(src, dst, chunk),
                    repo.plan_chunks_by_id(si, di, chunk)
                );
            }
        }
        assert!(repo.model_id("missing").is_none());
        assert!(repo.model_name_of(ModelId(999)).is_none());
        assert!(repo.decide_by_id(ModelId(0), ModelId(999)).is_none());
    }

    #[test]
    fn ids_stable_across_reregistration() {
        let cost = CostModel::default();
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let before = repo.model_id("vgg16").unwrap();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        assert_eq!(repo.model_id("vgg16"), Some(before));
        repo.register(optimus_zoo::vgg::vgg11(), &cost);
        assert_eq!(
            repo.model_id("vgg16"),
            Some(before),
            "old ids survive growth"
        );
        let d = repo
            .decide_by_id(before, repo.model_id("vgg11").unwrap())
            .unwrap();
        assert!(d.is_transform());
    }

    #[test]
    fn reregistration_replaces_plans() {
        let cost = CostModel::default();
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let before = repo.plan("vgg16", "vgg19").unwrap();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        let after = repo.plan("vgg16", "vgg19").unwrap();
        assert_eq!(before.cost, after.cost, "same graph, same plan");
        assert_eq!(repo.model_count(), 2);
    }

    #[test]
    fn shard_count_is_configurable_and_decisions_agree() {
        let models = || {
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::vgg::vgg19(),
                optimus_zoo::resnet::resnet18(),
            ]
        };
        let cost = CostModel::default();
        let baseline = ModelRepository::new(Box::new(GroupPlanner)).with_shards(1);
        assert_eq!(baseline.shard_count(), 1);
        baseline.register_all_with_threads(models(), &cost, 2);
        for shards in [2, 8, 64] {
            let repo = ModelRepository::new(Box::new(GroupPlanner)).with_shards(shards);
            assert_eq!(repo.shard_count(), shards);
            repo.register_all_with_threads(models(), &cost, 2);
            for src in baseline.model_names() {
                for dst in baseline.model_names() {
                    let a = baseline
                        .decide(&src, &dst)
                        .map(|d| (d.is_transform(), d.latency().to_bits()));
                    let b = repo
                        .decide(&src, &dst)
                        .map(|d| (d.is_transform(), d.latency().to_bits()));
                    assert_eq!(a, b, "{src} -> {dst} at {shards} shards");
                }
            }
        }
        // Re-sharding after registration rebuilds the stripes correctly.
        let reshard = {
            let repo = ModelRepository::new(Box::new(GroupPlanner)).with_shards(1);
            repo.register_all_with_threads(models(), &cost, 2);
            repo.with_shards(16)
        };
        assert!(reshard.decide("vgg11", "vgg16").unwrap().is_transform());
    }

    #[test]
    fn window_scope_bounds_planning() {
        let cost = CostModel::default();
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let models = vec![
            optimus_zoo::vgg::vgg11(),
            optimus_zoo::vgg::vgg13(),
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
        ];
        repo.register_all_scoped(models, &cost, 2, PlanScope::Window(1), None);
        assert_eq!(repo.model_count(), 4);
        // Adjacent pairs (batch order) are planned, both directions…
        assert!(repo.plan("vgg11", "vgg13").is_some());
        assert!(repo.plan("vgg13", "vgg11").is_some());
        assert!(repo.plan("vgg16", "vgg19").is_some());
        // …pairs outside the window are not, and decide still serves them
        // (scratch load).
        assert!(repo.plan("vgg11", "vgg19").is_none());
        let d = repo.decide("vgg11", "vgg19").unwrap();
        assert!(!d.is_transform());
    }

    #[test]
    fn artifact_roundtrip_skips_the_planner() {
        let models = || vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()];
        let cost = CostModel::default();
        let cold = ModelRepository::new(Box::new(GroupPlanner));
        cold.register_all_with_threads(models(), &cost, 2);
        assert_eq!(cold.planner_invocations(), 2, "two directed pairs planned");
        let artifact = cold.export_plan_artifact();
        assert_eq!(artifact.len(), 2);

        // A "restarted node": fresh repository, same catalog, warm-loaded
        // plans — the planner is never invoked.
        let warm = ModelRepository::new(Box::new(GroupPlanner));
        warm.register_all_with_artifact(models(), &cost, &artifact);
        assert_eq!(warm.planner_invocations(), 0, "artifact covered all pairs");
        let d = warm.decide("vgg11", "vgg16").unwrap();
        assert!(d.is_transform(), "warm-loaded plan serves transforms");
        assert_eq!(
            d.latency(),
            cold.decide("vgg11", "vgg16").unwrap().latency(),
            "persisted plan is the plan"
        );
    }

    #[test]
    fn artifact_warm_load_counts_hits_and_misses() {
        let registry = optimus_telemetry::MetricsRegistry::new();
        let cost = CostModel::default();
        let cold = ModelRepository::new(Box::new(GroupPlanner));
        cold.register_all_with_threads(
            vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()],
            &cost,
            2,
        );
        let artifact = cold.export_plan_artifact();

        // Warm-load a catalog with one extra model: the persisted pairs
        // hit, the four directions touching vgg19 miss and re-plan.
        let warm = ModelRepository::new(Box::new(GroupPlanner));
        warm.set_metrics_registry(&registry);
        warm.register_all_with_artifact(
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::vgg::vgg19(),
            ],
            &cost,
            &artifact,
        );
        let hits = registry.counter("optimus_plan_cache_warm_total", &[("result", "hit")]);
        let misses = registry.counter("optimus_plan_cache_warm_total", &[("result", "miss")]);
        assert_eq!(hits.get(), 2);
        assert_eq!(misses.get(), 4);
        assert_eq!(warm.planner_invocations(), 4);
        assert!(warm.decide("vgg11", "vgg19").unwrap().is_transform());
    }

    #[test]
    fn artifact_rebinds_names_by_content() {
        // The same graph registered under a different name still hits the
        // content-addressed cache; the reused plan carries local names.
        let cost = CostModel::default();
        let cold = ModelRepository::new(Box::new(GroupPlanner));
        cold.register_all_with_threads(
            vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()],
            &cost,
            2,
        );
        let artifact = cold.export_plan_artifact();

        let mut renamed_a = optimus_zoo::vgg::vgg11();
        renamed_a.set_name("model-a");
        let mut renamed_b = optimus_zoo::vgg::vgg16();
        renamed_b.set_name("model-b");
        let warm = ModelRepository::new(Box::new(GroupPlanner));
        warm.register_all_with_artifact(vec![renamed_a, renamed_b], &cost, &artifact);
        assert_eq!(warm.planner_invocations(), 0);
        let plan = warm.plan("model-a", "model-b").unwrap();
        assert_eq!(plan.src_model, "model-a");
        assert_eq!(plan.dst_model, "model-b");
        assert!(warm.decide("model-a", "model-b").unwrap().is_transform());
    }
}
