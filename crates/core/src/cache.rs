//! Plan cache, model repository, and the safeguard (§4.4 Module 3).
//!
//! When a model registers in the global repository, Optimus computes and
//! caches transformation plans against the already-registered models
//! offline. At request time the scheduler *reads* the cache — no online
//! planning — and the safeguard compares the cached plan's cost with the
//! scratch-load cost, falling back to a plain load whenever transformation
//! would not help, so worst-case performance equals a traditional platform.
//!
//! # Registration concurrency
//!
//! The O(N²) pairwise planning sweep never runs under the repository lock.
//! Every registration — single [`ModelRepository::register`] or bulk
//! [`ModelRepository::register_all`] — follows a snapshot → fan-out →
//! install pipeline:
//!
//! 1. **Snapshot**: a brief read lock captures the existing models (Arc
//!    clones) together with their *generation* counters.
//! 2. **Fan-out**: all pairwise plans are computed lock-free, optionally
//!    across a scoped worker pool (`crossbeam::thread::scope`).
//! 3. **Install**: a short write lock re-checks every snapshotted
//!    generation; if any model was re-registered (or a new one appeared)
//!    in the meantime, the batch is re-planned from a fresh snapshot so a
//!    stale plan is never published. Models, load costs, and the entire
//!    plan batch are installed in one critical section, so concurrent
//!    `decide()` readers observe either the old or the new plan set —
//!    never a partial one.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use optimus_model::{InternKey, Interner, ModelGraph, ModelId};
use optimus_profile::CostProvider;
use optimus_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::RwLock;

use crate::metaop::TransformPlan;
use crate::planner::Planner;

/// Pre-resolved telemetry handles of one repository.
///
/// `optimus_plan_cache_total{result=...}` counts the §4.4 Module 3
/// outcomes (`hit` = cached plan applied, `reject` = plan exists but the
/// safeguard chose loading, `miss` = no plan cached);
/// `optimus_planning_seconds` is the per-plan planning latency;
/// `optimus_plan_warmup_seconds` is the wall-clock of one whole
/// registration batch (snapshot → fan-out → install);
/// `optimus_plan_warmup_threads` is the worker-pool width of the most
/// recent batch.
struct RepoTelemetry {
    plan_hit: Counter,
    plan_reject: Counter,
    plan_miss: Counter,
    planning: Histogram,
    warmup: Histogram,
    warmup_threads: Gauge,
}

impl RepoTelemetry {
    fn resolve(registry: &MetricsRegistry) -> RepoTelemetry {
        let outcome =
            |result: &str| registry.counter("optimus_plan_cache_total", &[("result", result)]);
        RepoTelemetry {
            plan_hit: outcome("hit"),
            plan_reject: outcome("reject"),
            plan_miss: outcome("miss"),
            planning: registry.histogram("optimus_planning_seconds", &[]),
            warmup: registry.histogram("optimus_plan_warmup_seconds", &[]),
            warmup_threads: registry.gauge("optimus_plan_warmup_threads", &[]),
        }
    }
}

/// The scheduler's verdict for serving a model from a given container.
#[derive(Debug, Clone)]
pub enum TransformDecision {
    /// Transform the container's current model via the cached plan.
    Transform(Arc<TransformPlan>),
    /// Load the destination model from scratch (safeguard, §4.4).
    LoadScratch {
        /// Scratch-load latency (s).
        cost: f64,
    },
}

impl TransformDecision {
    /// Latency of taking this decision (plan cost or scratch load cost).
    pub fn latency(&self) -> f64 {
        match self {
            TransformDecision::Transform(plan) => plan.cost.total(),
            TransformDecision::LoadScratch { cost } => *cost,
        }
    }

    /// Whether the decision is a transformation.
    pub fn is_transform(&self) -> bool {
        matches!(self, TransformDecision::Transform(_))
    }
}

/// Mutable state behind the [`OverrunGuard`] lock.
#[derive(Default)]
struct OverrunState {
    /// EWMA of observed from-scratch load seconds per destination model —
    /// the live baseline a transform's wall-clock is judged against.
    load_ewma: HashMap<ModelId, f64>,
    /// Consecutive budget overruns observed per `(src, dst)` plan.
    overruns: HashMap<(ModelId, ModelId), u32>,
    /// Plans demoted to scratch loading after too many overruns.
    demoted: HashSet<(ModelId, ModelId)>,
}

/// Runtime escalation of the §6.3 safeguard: the *planned* cost model can
/// be wrong under faults (stragglers, retries, contention), so the
/// repository also watches the *measured* wall-clock of each applied
/// plan. A plan whose execution repeatedly overruns `factor ×` the
/// destination's observed scratch-load time is **demoted**: `decide`
/// answers `LoadScratch` for that pair from then on (counted as a plan
/// rejection), exactly as if the offline safeguard had rejected it.
struct OverrunGuard {
    /// A transform execution overruns when it takes longer than
    /// `factor ×` the destination's observed scratch-load EWMA.
    factor: f64,
    /// Consecutive overruns tolerated before the pair is demoted.
    max_overruns: u32,
    state: RwLock<OverrunState>,
    /// Fast-path flag: `false` means no pair was ever demoted, so
    /// `decide` can skip the demotion probe entirely.
    any_demoted: AtomicBool,
}

impl OverrunGuard {
    fn new(factor: f64, max_overruns: u32) -> Self {
        OverrunGuard {
            factor,
            max_overruns,
            state: RwLock::new(OverrunState::default()),
            any_demoted: AtomicBool::new(false),
        }
    }

    /// Fold one observed scratch-load wall-clock into the baseline EWMA.
    fn note_load(&self, dst: ModelId, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let mut state = self.state.write();
        state
            .load_ewma
            .entry(dst)
            .and_modify(|ewma| *ewma = 0.7 * *ewma + 0.3 * seconds)
            .or_insert(seconds);
    }

    /// Judge one observed transform wall-clock; returns `true` when the
    /// observation demoted (or had already demoted) the pair. Without a
    /// load baseline for `dst` the observation is a no-op — the guard
    /// never demotes on guesswork.
    fn note_transform(&self, src: ModelId, dst: ModelId, seconds: f64) -> bool {
        if !seconds.is_finite() || seconds < 0.0 {
            return false;
        }
        let mut state = self.state.write();
        if state.demoted.contains(&(src, dst)) {
            return true;
        }
        let Some(&baseline) = state.load_ewma.get(&dst) else {
            return false;
        };
        if seconds <= self.factor * baseline {
            state.overruns.remove(&(src, dst));
            return false;
        }
        let overruns = state.overruns.entry((src, dst)).or_insert(0);
        *overruns += 1;
        if *overruns >= self.max_overruns {
            state.demoted.insert((src, dst));
            self.any_demoted.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Whether `src → dst` has been demoted. The common no-demotions case
    /// is a single relaxed atomic load.
    fn is_demoted(&self, src: ModelId, dst: ModelId) -> bool {
        self.any_demoted.load(Ordering::Acquire) && self.state.read().demoted.contains(&(src, dst))
    }
}

/// Global model repository with an offline-computed plan cache.
///
/// Thread-safe: the simulator's gateway registers models once and many
/// simulated nodes read plans concurrently.
pub struct ModelRepository {
    planner: Box<dyn Planner + Send + Sync>,
    inner: RwLock<Inner>,
    /// Plans whose transformation latency exceeds `safeguard_ratio` × the
    /// scratch-load cost are rejected in favour of loading (1.0 = paper's
    /// behaviour; lower values make the safeguard more conservative).
    safeguard_ratio: f64,
    /// Measured-wall-clock escalation of the safeguard (see
    /// [`OverrunGuard`]): plans that repeatedly overrun their budget at
    /// execution time are demoted to scratch loading.
    overrun: OverrunGuard,
    telemetry: RwLock<RepoTelemetry>,
}

/// Repository state behind the lock.
///
/// Plans are a two-level map `src → dst → plan` keyed by `Arc<str>`, so
/// the request-hot `decide()` path looks plans up with plain `&str`
/// borrows — no per-request `String` allocations — while inserts share
/// the interned name Arcs.
#[derive(Default)]
struct Inner {
    models: HashMap<Arc<str>, Arc<ModelGraph>>,
    load_costs: HashMap<Arc<str>, f64>,
    plans: HashMap<Arc<str>, HashMap<Arc<str>, Arc<TransformPlan>>>,
    /// Per-model registration generation: bumped every time a name is
    /// (re-)registered. The install phase uses it to detect that a model
    /// snapshotted for planning was re-registered concurrently.
    generations: HashMap<Arc<str>, u64>,
    /// Interned-id fast-path index over the string-keyed maps above:
    /// append-only name↔[`ModelId`] table plus dense per-id load costs and
    /// an id×id plan matrix, rebuilt inside every install critical section
    /// so it is always consistent with the maps. Ids are stable across
    /// re-registrations (the interner never forgets a name) but are only
    /// meaningful within this repository instance.
    ids: Interner<ModelId>,
    /// Scratch-load cost per [`ModelId`] (`NAN` = not registered).
    load_costs_by_id: Vec<f64>,
    /// Dense plan matrix `[src.index() * n + dst.index()]`, `n = ids.len()`.
    plans_by_id: Vec<Option<Arc<TransformPlan>>>,
}

impl Inner {
    /// Rebuild the id-keyed index from the string-keyed maps. Called with
    /// the write lock held, immediately after any mutation of
    /// `models`/`load_costs`/`plans`.
    fn rebuild_id_index(&mut self) {
        let mut names: Vec<&Arc<str>> = self.models.keys().collect();
        names.sort();
        for name in names {
            self.ids.resolve(name);
        }
        let n = self.ids.len();
        self.load_costs_by_id = vec![f64::NAN; n];
        self.plans_by_id = vec![None; n * n];
        for (name, &cost) in &self.load_costs {
            if let Some(id) = self.ids.get(name) {
                self.load_costs_by_id[id.index()] = cost;
            }
        }
        for (src, per_src) in &self.plans {
            let Some(si) = self.ids.get(src) else {
                continue;
            };
            for (dst, plan) in per_src {
                if let Some(di) = self.ids.get(dst) {
                    self.plans_by_id[si.index() * n + di.index()] = Some(plan.clone());
                }
            }
        }
    }
}

/// One directed planning job of a registration batch.
struct PlanTask {
    src: Arc<ModelGraph>,
    dst: Arc<ModelGraph>,
}

impl ModelRepository {
    /// Repository using the given planner (production: [`crate::GroupPlanner`]).
    pub fn new(planner: Box<dyn Planner + Send + Sync>) -> Self {
        ModelRepository {
            planner,
            inner: RwLock::new(Inner::default()),
            safeguard_ratio: 1.0,
            overrun: OverrunGuard::new(3.0, 2),
            telemetry: RwLock::new(RepoTelemetry::resolve(&optimus_telemetry::global())),
        }
    }

    /// Re-resolve telemetry handles against `registry` (the default is the
    /// process-wide [`optimus_telemetry::global`] registry). The live
    /// gateway points its repository at the registry backing its
    /// `/metrics` endpoint; hermetic tests use a private one.
    pub fn set_metrics_registry(&self, registry: &MetricsRegistry) {
        *self.telemetry.write() = RepoTelemetry::resolve(registry);
    }

    /// Override the safeguard threshold (ablation experiments; `f64::MAX`
    /// effectively disables the safeguard).
    pub fn with_safeguard_ratio(mut self, ratio: f64) -> Self {
        self.safeguard_ratio = ratio;
        self
    }

    /// Override the runtime overrun policy: a plan whose measured
    /// execution exceeds `factor ×` the destination's observed
    /// scratch-load time `max_overruns` consecutive times is demoted to
    /// scratch loading (default: 3.0×, 2 overruns).
    pub fn with_overrun_policy(mut self, factor: f64, max_overruns: u32) -> Self {
        self.overrun = OverrunGuard::new(factor, max_overruns.max(1));
        self
    }

    /// Report the measured wall-clock of a from-scratch load of `dst`,
    /// feeding the baseline the overrun guard judges transforms against.
    pub fn note_load_seconds(&self, dst: ModelId, seconds: f64) {
        self.overrun.note_load(dst, seconds);
    }

    /// Report the measured wall-clock of an applied `src → dst`
    /// transform. Returns `true` when the observation demoted (or the
    /// guard had already demoted) the pair — the caller's signal to count
    /// an overrun and expect `decide` to answer `LoadScratch` from now on.
    pub fn note_transform_seconds(&self, src: ModelId, dst: ModelId, seconds: f64) -> bool {
        self.overrun.note_transform(src, dst, seconds)
    }

    /// Whether the overrun guard has demoted `src → dst` to scratch
    /// loading.
    pub fn is_demoted(&self, src: ModelId, dst: ModelId) -> bool {
        self.overrun.is_demoted(src, dst)
    }

    /// Register a model: stores it, profiles its scratch-load cost, and
    /// computes + caches plans to and from every existing model (the
    /// paper's "planning strategy caching" — registration-time work).
    ///
    /// Planning runs outside the repository lock (see the module docs);
    /// `decide()` readers are never blocked for the duration of the sweep.
    ///
    /// Registering the same name twice replaces the model and recomputes
    /// its plans.
    pub fn register(&self, model: ModelGraph, cost: &(dyn CostProvider + Sync)) {
        self.register_batch(vec![model], cost, 1);
    }

    /// Bulk-register a whole catalog, fanning the O(N²) pairwise planning
    /// sweep across a scoped worker pool sized to the machine
    /// ([`std::thread::available_parallelism`]).
    ///
    /// The resulting plan set is identical to registering the models one
    /// by one with [`ModelRepository::register`]; only the wall-clock (and
    /// the lock-hold time) differs. When `models` contains duplicates of a
    /// name the last one wins, matching sequential re-registration.
    pub fn register_all(&self, models: Vec<ModelGraph>, cost: &(dyn CostProvider + Sync)) {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        self.register_batch(models, cost, threads);
    }

    /// [`ModelRepository::register_all`] with an explicit worker count
    /// (`1` = plan inline on the calling thread; used by the warmup
    /// scaling experiment).
    pub fn register_all_with_threads(
        &self,
        models: Vec<ModelGraph>,
        cost: &(dyn CostProvider + Sync),
        threads: usize,
    ) {
        self.register_batch(models, cost, threads.max(1));
    }

    /// The snapshot → fan-out → install pipeline shared by all
    /// registration entry points.
    fn register_batch(
        &self,
        models: Vec<ModelGraph>,
        cost: &(dyn CostProvider + Sync),
        threads: usize,
    ) {
        if models.is_empty() {
            return;
        }
        let t0 = Instant::now();
        // Dedupe by name, last occurrence wins (sequential semantics).
        let mut new: Vec<(Arc<str>, Arc<ModelGraph>)> = Vec::with_capacity(models.len());
        for model in models {
            let name: Arc<str> = Arc::from(model.name());
            new.retain(|(n, _)| *n != name);
            new.push((name, Arc::new(model)));
        }
        let new_names: HashSet<Arc<str>> = new.iter().map(|(n, _)| n.clone()).collect();
        let new_load_costs: Vec<f64> = new.iter().map(|(_, m)| cost.model_load_cost(m)).collect();
        loop {
            // 1. Snapshot the existing catalog under a brief read lock.
            let existing: Vec<(Arc<str>, Arc<ModelGraph>, u64)> = {
                let inner = self.inner.read();
                inner
                    .models
                    .iter()
                    .filter(|(name, _)| !new_names.contains(*name))
                    .map(|(name, model)| {
                        let gen = inner.generations.get(name).copied().unwrap_or(0);
                        (name.clone(), model.clone(), gen)
                    })
                    .collect()
            };
            // 2. Fan the pairwise sweep out, lock-free.
            let tasks = self.build_tasks(&new, &existing);
            let planned = self.execute_tasks(&tasks, cost, threads);
            // 3. Install everything in one short write-lock critical
            //    section, re-checking the snapshot generations first.
            let mut inner = self.inner.write();
            let snapshot_names: HashSet<&Arc<str>> =
                existing.iter().map(|(name, _, _)| name).collect();
            let stale = existing
                .iter()
                .any(|(name, _, gen)| inner.generations.get(name).copied().unwrap_or(0) != *gen)
                || inner
                    .models
                    .keys()
                    .any(|name| !new_names.contains(name) && !snapshot_names.contains(name));
            if stale {
                // A concurrent registration changed the catalog while we
                // planned; our batch may reference stale graphs or miss
                // pairs. Discard and re-plan against a fresh snapshot.
                drop(inner);
                continue;
            }
            for ((name, model), load) in new.iter().zip(&new_load_costs) {
                inner.models.insert(name.clone(), model.clone());
                inner.load_costs.insert(name.clone(), *load);
                *inner.generations.entry(name.clone()).or_insert(0) += 1;
            }
            for (task, plan) in tasks.iter().zip(planned) {
                let src: Arc<str> = Arc::from(task.src.name());
                let dst: Arc<str> = Arc::from(task.dst.name());
                inner.plans.entry(src).or_default().insert(dst, plan);
            }
            inner.rebuild_id_index();
            break;
        }
        let telemetry = self.telemetry.read();
        telemetry.warmup.observe(t0.elapsed().as_secs_f64());
        telemetry.warmup_threads.set(threads as f64);
    }

    /// All directed planning jobs of a batch: new↔existing pairs plus
    /// new↔new pairs, skipping cross-paradigm pairs (CNN↔transformer plans
    /// always lose to scratch loading, §8.2 — the safeguard picks loading
    /// without a cached plan).
    fn build_tasks(
        &self,
        new: &[(Arc<str>, Arc<ModelGraph>)],
        existing: &[(Arc<str>, Arc<ModelGraph>, u64)],
    ) -> Vec<PlanTask> {
        let mut tasks = Vec::new();
        let mut push_pair = |a: &Arc<ModelGraph>, b: &Arc<ModelGraph>| {
            if a.family().is_transformer() != b.family().is_transformer() {
                return;
            }
            tasks.push(PlanTask {
                src: a.clone(),
                dst: b.clone(),
            });
            tasks.push(PlanTask {
                src: b.clone(),
                dst: a.clone(),
            });
        };
        for (_, model) in new {
            for (_, other, _) in existing {
                push_pair(other, model);
            }
        }
        for (i, (_, a)) in new.iter().enumerate() {
            for (_, b) in new.iter().skip(i + 1) {
                push_pair(a, b);
            }
        }
        tasks
    }

    /// Compute every task's plan: inline for a single worker, otherwise on
    /// a scoped pool pulling tasks off a shared atomic cursor (dynamic
    /// load balancing — plan sizes vary wildly across model pairs).
    fn execute_tasks(
        &self,
        tasks: &[PlanTask],
        cost: &(dyn CostProvider + Sync),
        threads: usize,
    ) -> Vec<Arc<TransformPlan>> {
        let planning = self.telemetry.read().planning.clone();
        let plan_one = |task: &PlanTask| -> Arc<TransformPlan> {
            let t = Instant::now();
            let plan = self.planner.plan(&task.src, &task.dst, cost);
            planning.observe(t.elapsed().as_secs_f64());
            Arc::new(plan)
        };
        let workers = threads.min(tasks.len());
        if workers <= 1 {
            return tasks.iter().map(plan_one).collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Arc<TransformPlan>>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    *results[i].lock().expect("unshared slot") = Some(plan_one(task));
                });
            }
        })
        .expect("planning worker panicked");
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("slot filled"))
            .collect()
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.inner.read().models.len()
    }

    /// Look up a registered model.
    pub fn model(&self, name: &str) -> Option<Arc<ModelGraph>> {
        self.inner.read().models.get(name).cloned()
    }

    /// Profiled scratch-load cost of a registered model.
    pub fn load_cost(&self, name: &str) -> Option<f64> {
        self.inner.read().load_costs.get(name).copied()
    }

    /// Cached plan from `src` to `dst`, if both are registered and the pair
    /// is plannable.
    pub fn plan(&self, src: &str, dst: &str) -> Option<Arc<TransformPlan>> {
        let inner = self.inner.read();
        inner.plans.get(src)?.get(dst).cloned()
    }

    /// The §4.4 Module 3 decision: serve `dst` from a container currently
    /// holding `src` — transform if the cached plan beats the scratch load
    /// (safeguard), otherwise load from scratch.
    ///
    /// Returns `None` when `dst` is not registered.
    pub fn decide(&self, src: &str, dst: &str) -> Option<TransformDecision> {
        let (decision, cached) = self.decide_uncounted(src, dst)?;
        let telemetry = self.telemetry.read();
        match (&decision, cached) {
            (TransformDecision::Transform(_), _) => telemetry.plan_hit.inc(),
            (TransformDecision::LoadScratch { .. }, true) => telemetry.plan_reject.inc(),
            (TransformDecision::LoadScratch { .. }, false) => telemetry.plan_miss.inc(),
        }
        Some(decision)
    }

    /// The decision plus whether a plan was cached for the pair, without
    /// touching the plan-cache counters. Allocation-free: the plan map is
    /// probed with the borrowed `&str` keys directly.
    fn decide_uncounted(&self, src: &str, dst: &str) -> Option<(TransformDecision, bool)> {
        let inner = self.inner.read();
        let load = *inner.load_costs.get(dst)?;
        let plan = inner.plans.get(src).and_then(|per_src| per_src.get(dst));
        Some(match plan {
            Some(p) if p.cost.total() <= load * self.safeguard_ratio => {
                let demoted = self.overrun.any_demoted.load(Ordering::Acquire)
                    && match (inner.ids.get(src), inner.ids.get(dst)) {
                        (Some(si), Some(di)) => self.overrun.is_demoted(si, di),
                        _ => false,
                    };
                if demoted {
                    (TransformDecision::LoadScratch { cost: load }, true)
                } else {
                    (TransformDecision::Transform(p.clone()), true)
                }
            }
            Some(_) => (TransformDecision::LoadScratch { cost: load }, true),
            None => (TransformDecision::LoadScratch { cost: load }, false),
        })
    }

    /// Interned id of a registered model (`None` if the name is unknown).
    ///
    /// Ids are dense, stable across re-registrations, and valid only
    /// against this repository instance; they feed the `*_by_id` fast
    /// paths the simulator's per-event loop runs on.
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.inner.read().ids.get(name)
    }

    /// Name behind an interned id (`None` for an id this repository never
    /// handed out).
    pub fn model_name_of(&self, id: ModelId) -> Option<String> {
        let inner = self.inner.read();
        (id.index() < inner.ids.len()).then(|| inner.ids.name(id).to_string())
    }

    /// Id-keyed [`ModelRepository::decide`]: same decision and the same
    /// plan-cache telemetry, but the lookup is two dense-array probes
    /// instead of two string hashes — the per-donor cost of the
    /// simulator's donor scan.
    pub fn decide_by_id(&self, src: ModelId, dst: ModelId) -> Option<TransformDecision> {
        let (decision, cached) = self.decide_uncounted_by_id(src, dst)?;
        let telemetry = self.telemetry.read();
        match (&decision, cached) {
            (TransformDecision::Transform(_), _) => telemetry.plan_hit.inc(),
            (TransformDecision::LoadScratch { .. }, true) => telemetry.plan_reject.inc(),
            (TransformDecision::LoadScratch { .. }, false) => telemetry.plan_miss.inc(),
        }
        Some(decision)
    }

    /// Id-keyed [`ModelRepository::transform_latency`] (placement probes;
    /// bypasses the plan-cache counters).
    pub fn transform_latency_by_id(&self, src: ModelId, dst: ModelId) -> Option<f64> {
        self.decide_uncounted_by_id(src, dst)
            .map(|(d, _)| d.latency())
    }

    fn decide_uncounted_by_id(
        &self,
        src: ModelId,
        dst: ModelId,
    ) -> Option<(TransformDecision, bool)> {
        let inner = self.inner.read();
        let n = inner.ids.len();
        if dst.index() >= n {
            return None;
        }
        let load = inner.load_costs_by_id[dst.index()];
        if load.is_nan() {
            return None;
        }
        let plan = (src.index() < n)
            .then(|| inner.plans_by_id[src.index() * n + dst.index()].as_ref())
            .flatten();
        Some(match plan {
            Some(p) if p.cost.total() <= load * self.safeguard_ratio => {
                if self.overrun.is_demoted(src, dst) {
                    (TransformDecision::LoadScratch { cost: load }, true)
                } else {
                    (TransformDecision::Transform(p.clone()), true)
                }
            }
            Some(_) => (TransformDecision::LoadScratch { cost: load }, true),
            None => (TransformDecision::LoadScratch { cost: load }, false),
        })
    }

    /// Transformation latency that `decide` would report, ignoring which
    /// branch is taken (used by load balancers as an edit-distance metric).
    /// Deliberately bypasses the plan-cache hit/miss counters — placement
    /// probes are not request-time cache lookups.
    pub fn transform_latency(&self, src: &str, dst: &str) -> Option<f64> {
        self.decide_uncounted(src, dst).map(|(d, _)| d.latency())
    }

    /// Chunk split of the cached `src → dst` plan (see
    /// [`crate::plan_chunks`]): the payload chunks a store must fetch vs.
    /// the destination chunks reused from the source in place. `None`
    /// when either model is unregistered or no plan is cached.
    pub fn plan_chunks(
        &self,
        src: &str,
        dst: &str,
        chunk_bytes: u64,
    ) -> Option<crate::chunks::PlanChunks> {
        let (plan, model) = {
            let inner = self.inner.read();
            let plan = inner.plans.get(src)?.get(dst)?.clone();
            let model = inner.models.get(dst)?.clone();
            (plan, model)
        };
        Some(crate::chunks::plan_chunks(&plan, &model, chunk_bytes))
    }

    /// Id-keyed [`ModelRepository::plan_chunks`] (used by the simulator's
    /// store-state precomputation).
    pub fn plan_chunks_by_id(
        &self,
        src: ModelId,
        dst: ModelId,
        chunk_bytes: u64,
    ) -> Option<crate::chunks::PlanChunks> {
        let (plan, model) = {
            let inner = self.inner.read();
            let n = inner.ids.len();
            if src.index() >= n || dst.index() >= n {
                return None;
            }
            let plan = inner.plans_by_id[src.index() * n + dst.index()].clone()?;
            let model = inner.models.get(inner.ids.name(dst))?.clone();
            (plan, model)
        };
        Some(crate::chunks::plan_chunks(&plan, &model, chunk_bytes))
    }

    /// Deduplicated union of every cached plan's payload chunks, sorted
    /// by id. Nodes pin this working set in their weight store so LRU
    /// pressure never evicts bytes a cached transformation is about to
    /// write.
    pub fn plan_referenced_chunks(&self, chunk_bytes: u64) -> Vec<optimus_store::ChunkRef> {
        let plans: Vec<Arc<TransformPlan>> = {
            let inner = self.inner.read();
            inner
                .plans
                .values()
                .flat_map(|per_src| per_src.values().cloned())
                .collect()
        };
        crate::chunks::plans_referenced_chunks(plans.iter().map(|p| p.as_ref()), chunk_bytes)
    }

    /// Names of all registered models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .models
            .keys()
            .map(|k| k.to_string())
            .collect();
        v.sort();
        v
    }

    /// Internal: snapshot the state for persistence (see `persist`).
    pub(crate) fn snapshot_parts(&self) -> crate::persist::RepositorySnapshot {
        let inner = self.inner.read();
        let mut models: Vec<ModelGraph> = inner.models.values().map(|m| (**m).clone()).collect();
        models.sort_by(|a, b| a.name().cmp(b.name()));
        let mut plans: Vec<((String, String), crate::metaop::TransformPlan)> = inner
            .plans
            .iter()
            .flat_map(|(src, per_src)| {
                per_src
                    .iter()
                    .map(|(dst, plan)| ((src.to_string(), dst.to_string()), (**plan).clone()))
            })
            .collect();
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        crate::persist::RepositorySnapshot {
            version: crate::persist::SNAPSHOT_VERSION,
            models,
            load_costs: inner
                .load_costs
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            plans,
        }
    }

    /// Internal: rebuild from persisted state (see `persist`).
    pub(crate) fn from_parts(
        planner: Box<dyn Planner + Send + Sync>,
        models: HashMap<String, Arc<ModelGraph>>,
        load_costs: HashMap<String, f64>,
        plans: HashMap<(String, String), Arc<TransformPlan>>,
    ) -> ModelRepository {
        let mut inner = Inner::default();
        for (name, model) in models {
            let name: Arc<str> = Arc::from(name.as_str());
            inner.generations.insert(name.clone(), 1);
            inner.models.insert(name, model);
        }
        for (name, cost) in load_costs {
            inner.load_costs.insert(Arc::from(name.as_str()), cost);
        }
        for ((src, dst), plan) in plans {
            inner
                .plans
                .entry(Arc::from(src.as_str()))
                .or_default()
                .insert(Arc::from(dst.as_str()), plan);
        }
        inner.rebuild_id_index();
        ModelRepository {
            planner,
            inner: RwLock::new(inner),
            safeguard_ratio: 1.0,
            overrun: OverrunGuard::new(3.0, 2),
            telemetry: RwLock::new(RepoTelemetry::resolve(&optimus_telemetry::global())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    fn repo_with(models: Vec<ModelGraph>) -> ModelRepository {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        for m in models {
            repo.register(m, &cost);
        }
        repo
    }

    #[test]
    fn registration_precomputes_bidirectional_plans() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        assert_eq!(repo.model_count(), 2);
        assert!(repo.plan("vgg16", "vgg19").is_some());
        assert!(repo.plan("vgg19", "vgg16").is_some());
        assert!(repo.plan("vgg16", "vgg16").is_none());
    }

    #[test]
    fn decide_transforms_within_family() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let d = repo.decide("vgg16", "vgg19").unwrap();
        assert!(d.is_transform(), "vgg16→vgg19 should transform");
        assert!(d.latency() < repo.load_cost("vgg19").unwrap());
    }

    #[test]
    fn safeguard_rejects_cnn_to_transformer() {
        let repo = repo_with(vec![
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ]);
        let d = repo.decide("resnet50", "bert-mini-uncased").unwrap();
        assert!(!d.is_transform(), "CNN→transformer must load from scratch");
        assert_eq!(d.latency(), repo.load_cost("bert-mini-uncased").unwrap());
    }

    #[test]
    fn unknown_destination_yields_none() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16()]);
        assert!(repo.decide("vgg16", "missing").is_none());
        assert!(repo.load_cost("missing").is_none());
        assert!(repo.model("missing").is_none());
    }

    #[test]
    fn overrun_guard_demotes_after_repeated_overruns() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()])
            .with_overrun_policy(3.0, 2);
        let src = repo.model_id("vgg16").unwrap();
        let dst = repo.model_id("vgg19").unwrap();
        assert!(repo.decide_by_id(src, dst).unwrap().is_transform());

        // No load baseline yet: overrun observations are a no-op.
        assert!(!repo.note_transform_seconds(src, dst, 100.0));
        assert!(!repo.is_demoted(src, dst));

        repo.note_load_seconds(dst, 1.0);
        // Within budget: nothing happens, even repeatedly.
        assert!(!repo.note_transform_seconds(src, dst, 2.0));
        // First overrun tolerated, second demotes.
        assert!(!repo.note_transform_seconds(src, dst, 10.0));
        assert!(repo.decide_by_id(src, dst).unwrap().is_transform());
        assert!(repo.note_transform_seconds(src, dst, 10.0));
        assert!(repo.is_demoted(src, dst));

        // Both decide paths now answer LoadScratch for the demoted pair
        // (counted as a plan rejection), while the reverse direction is
        // untouched.
        assert!(!repo.decide_by_id(src, dst).unwrap().is_transform());
        assert!(!repo.decide("vgg16", "vgg19").unwrap().is_transform());
        assert!(repo.decide_by_id(dst, src).unwrap().is_transform());
        assert!(repo.decide("vgg19", "vgg16").unwrap().is_transform());
    }

    #[test]
    fn overrun_guard_resets_streak_on_in_budget_execution() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()])
            .with_overrun_policy(3.0, 2);
        let src = repo.model_id("vgg16").unwrap();
        let dst = repo.model_id("vgg19").unwrap();
        repo.note_load_seconds(dst, 1.0);
        // overrun, in-budget (streak resets), overrun: still not demoted.
        assert!(!repo.note_transform_seconds(src, dst, 10.0));
        assert!(!repo.note_transform_seconds(src, dst, 1.0));
        assert!(!repo.note_transform_seconds(src, dst, 10.0));
        assert!(!repo.is_demoted(src, dst));
        assert!(repo.decide_by_id(src, dst).unwrap().is_transform());
    }

    #[test]
    fn safeguard_ratio_zero_disables_transformation() {
        let repo = ModelRepository::new(Box::new(GroupPlanner)).with_safeguard_ratio(0.0);
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        let d = repo.decide("vgg16", "vgg19").unwrap();
        assert!(!d.is_transform());
    }

    #[test]
    fn decide_counts_plan_cache_outcomes() {
        let registry = optimus_telemetry::MetricsRegistry::new();
        let repo = repo_with(vec![
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
        ]);
        repo.set_metrics_registry(&registry);
        let hit = registry.counter("optimus_plan_cache_total", &[("result", "hit")]);
        let miss = registry.counter("optimus_plan_cache_total", &[("result", "miss")]);
        repo.decide("vgg16", "vgg19").unwrap(); // cached plan applies
        repo.decide("vgg16", "vgg19").unwrap();
        repo.decide("vgg16", "bert-mini-uncased").unwrap(); // never planned
        assert_eq!(hit.get(), 2);
        assert_eq!(miss.get(), 1);
        // Placement probes must not count as request-time lookups.
        repo.transform_latency("vgg16", "vgg19").unwrap();
        assert_eq!(hit.get(), 2);
        // Registration in `repo_with` ran before the registry swap, so its
        // planning latency landed in the global registry: vgg16↔vgg19 is
        // the one planned pair (both BERT directions are family-skipped).
        let planning = optimus_telemetry::global().histogram("optimus_planning_seconds", &[]);
        assert!(planning.count() >= 2, "two plan directions observed");
    }

    #[test]
    fn model_names_sorted() {
        let repo = repo_with(vec![optimus_zoo::vgg::vgg19(), optimus_zoo::vgg::vgg11()]);
        assert_eq!(repo.model_names(), vec!["vgg11", "vgg19"]);
    }

    #[test]
    fn register_all_matches_sequential_registration() {
        let models = || {
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::resnet::resnet18(),
                optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
            ]
        };
        let cost = CostModel::default();
        let sequential = repo_with(models());
        let bulk = ModelRepository::new(Box::new(GroupPlanner));
        bulk.register_all_with_threads(models(), &cost, 4);
        assert_eq!(bulk.model_names(), sequential.model_names());
        let a = sequential.snapshot().canonicalized().to_json();
        let b = bulk.snapshot().canonicalized().to_json();
        assert_eq!(a, b, "bulk and sequential registration must agree");
    }

    #[test]
    fn register_all_records_warmup_telemetry() {
        let registry = optimus_telemetry::MetricsRegistry::new();
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        repo.set_metrics_registry(&registry);
        let cost = CostModel::default();
        repo.register_all_with_threads(
            vec![optimus_zoo::vgg::vgg11(), optimus_zoo::vgg::vgg16()],
            &cost,
            2,
        );
        let warmup = registry.histogram("optimus_plan_warmup_seconds", &[]);
        assert_eq!(warmup.count(), 1, "one batch observed");
        let threads = registry.gauge("optimus_plan_warmup_threads", &[]);
        assert_eq!(threads.get(), 2.0);
    }

    #[test]
    fn register_all_dedupes_names_last_wins() {
        let cost = CostModel::default();
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        // Same name twice in one batch: the later graph must win, exactly
        // like sequential re-registration.
        let first = optimus_zoo::vgg::vgg11();
        let second = optimus_zoo::vgg::vgg11();
        repo.register_all_with_threads(vec![first, second, optimus_zoo::vgg::vgg16()], &cost, 2);
        assert_eq!(repo.model_count(), 2);
        assert!(repo.plan("vgg11", "vgg16").is_some());
        assert!(repo.plan("vgg16", "vgg11").is_some());
    }

    #[test]
    fn id_fast_path_agrees_with_string_path() {
        let repo = repo_with(vec![
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
        ]);
        let names = repo.model_names();
        for src in &names {
            let si = repo.model_id(src).expect("registered");
            assert_eq!(repo.model_name_of(si).as_deref(), Some(src.as_str()));
            for dst in &names {
                let di = repo.model_id(dst).expect("registered");
                let by_name = repo
                    .decide(src, dst)
                    .map(|d| (d.is_transform(), d.latency()));
                let by_id = repo
                    .decide_by_id(si, di)
                    .map(|d| (d.is_transform(), d.latency()));
                assert_eq!(by_name, by_id, "{src} -> {dst}");
                assert_eq!(
                    repo.transform_latency(src, dst),
                    repo.transform_latency_by_id(si, di)
                );
                let chunk = 1 << 20;
                assert_eq!(
                    repo.plan_chunks(src, dst, chunk),
                    repo.plan_chunks_by_id(si, di, chunk)
                );
            }
        }
        assert!(repo.model_id("missing").is_none());
        assert!(repo.model_name_of(ModelId(999)).is_none());
        assert!(repo.decide_by_id(ModelId(0), ModelId(999)).is_none());
    }

    #[test]
    fn ids_stable_across_reregistration() {
        let cost = CostModel::default();
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let before = repo.model_id("vgg16").unwrap();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        assert_eq!(repo.model_id("vgg16"), Some(before));
        repo.register(optimus_zoo::vgg::vgg11(), &cost);
        assert_eq!(
            repo.model_id("vgg16"),
            Some(before),
            "old ids survive growth"
        );
        let d = repo
            .decide_by_id(before, repo.model_id("vgg11").unwrap())
            .unwrap();
        assert!(d.is_transform());
    }

    #[test]
    fn reregistration_replaces_plans() {
        let cost = CostModel::default();
        let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
        let before = repo.plan("vgg16", "vgg19").unwrap();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        let after = repo.plan("vgg16", "vgg19").unwrap();
        assert_eq!(before.cost, after.cost, "same graph, same plan");
        assert_eq!(repo.model_count(), 2);
    }
}
