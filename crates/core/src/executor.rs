//! Plan executor: applies meta-operators to the model inside a container.
//!
//! The executor is a deliberate dumb interpreter of [`TransformPlan`]
//! steps — all intelligence lives in the planner — mirroring the paper's
//! split between offline planning and online execution (§4.4 Module 3).

use std::collections::HashMap;

use optimus_model::{ModelError, ModelGraph, OpId, WeightSpec};

use crate::metaop::{MetaOp, TransformPlan};

/// Outcome of executing a plan inside a container.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Number of meta-operator steps applied.
    pub steps_applied: usize,
    /// Whether the transformed graph matched the destination model
    /// structurally and weight-wise.
    pub verified: bool,
    /// Weight bytes written by `Replace`/`Add` steps — the *delta* a
    /// content-addressed store must actually fetch for this
    /// transformation.
    pub fetched_bytes: u64,
    /// Destination weight bytes *not* rewritten by the plan: source
    /// content carried over in place (kept or reshaped ops). Together
    /// with `fetched_bytes` this is the §6.1 "transform moves only the
    /// difference" accounting, at byte granularity.
    pub reused_bytes: u64,
}

/// Apply `plan` to `graph` (the model currently loaded in the container),
/// transforming it in place into `dst`.
///
/// On success the graph is renamed/re-tagged to the destination model and
/// verified structurally equal to it.
///
/// # Contract
///
/// The plan's steps reference operation ids of the *specific* source and
/// destination graphs it was computed from: `graph` must share the
/// plan-source's id space (be that graph or a clone of it). A container
/// whose graph was produced by a previous transformation has a different
/// id history — canonicalise it (e.g. adopt a clone of the registered
/// destination graph after verification) before applying further cached
/// plans; `optimus-serve` does exactly this.
///
/// # Errors
///
/// Returns a [`ModelError`] if a step references a missing operation or
/// produces an invalid graph, or [`ModelError::Serde`] with a description
/// when post-transformation verification fails (plan/destination mismatch).
pub fn execute_plan(
    graph: &mut ModelGraph,
    plan: &TransformPlan,
    dst: &ModelGraph,
) -> Result<ExecutionReport, ModelError> {
    // dst-id → live node id. Kept ops keep their source ids; Add creates
    // fresh ids recorded here.
    let mut dst_node: HashMap<OpId, OpId> = plan.mapping.iter().map(|(s, d)| (*d, *s)).collect();
    let mut steps_applied = 0usize;
    let mut fetched_bytes = 0u64;
    for step in &plan.steps {
        match step {
            MetaOp::Reshape { src, attrs } => {
                let op = graph.op_mut(*src).ok_or(ModelError::UnknownOp(*src))?;
                // Crop/zero-pad each weight tensor into the new shapes; the
                // overlap region of the old values is preserved (§4.3 ②).
                let new_shapes = attrs.weight_shapes();
                let new_weights = match op.weights.take() {
                    Some(old) if !new_shapes.is_empty() => {
                        let mut tensors = Vec::with_capacity(new_shapes.len());
                        for (i, shape) in new_shapes.iter().enumerate() {
                            let spec = match old.tensors.get(i) {
                                Some(prev) if &prev.shape == shape => prev.clone(),
                                Some(prev) => WeightSpec::crop_pad_of(prev.clone(), shape.clone()),
                                None => WeightSpec::zeros(shape.clone()),
                            };
                            tensors.push(spec);
                        }
                        Some(optimus_model::Weights::new(tensors))
                    }
                    _ if !new_shapes.is_empty() => Some(optimus_model::Weights::new(
                        new_shapes
                            .iter()
                            .map(|s| WeightSpec::zeros(s.clone()))
                            .collect(),
                    )),
                    _ => None,
                };
                op.attrs = attrs.clone();
                op.weights = new_weights;
            }
            MetaOp::Replace { src, weights } => {
                let op = graph.op_mut(*src).ok_or(ModelError::UnknownOp(*src))?;
                fetched_bytes += weights.byte_size() as u64;
                op.weights = Some(weights.clone());
            }
            MetaOp::Reduce { src } => {
                graph.remove_op(*src)?;
            }
            MetaOp::Add { op, dst: dst_id } => {
                fetched_bytes += op.weights.as_ref().map_or(0, |w| w.byte_size() as u64);
                let id = graph.add_op(op.clone());
                dst_node.insert(*dst_id, id);
            }
            MetaOp::EdgeRemove { from, to } => {
                // Removing a non-existent edge is a plan bug.
                if !graph.remove_edge(*from, *to) {
                    return Err(ModelError::InvalidEdge {
                        from: *from,
                        to: *to,
                        reason: "plan removes a non-existent edge",
                    });
                }
            }
            MetaOp::EdgeAdd { from, to } => {
                let f = *dst_node.get(from).ok_or(ModelError::UnknownOp(*from))?;
                let t = *dst_node.get(to).ok_or(ModelError::UnknownOp(*to))?;
                graph.add_edge(f, t)?;
            }
        }
        steps_applied += 1;
    }
    // Kept ops carry the destination function's operation names.
    for (s, d) in &plan.mapping {
        if let (Some(op), Some(dop)) = (graph.op_mut(*s), dst.op(*d)) {
            op.name = dop.name.clone();
        }
    }
    graph.set_name(dst.name());
    graph.set_family(dst.family());
    graph.validate()?;
    let verified = graph.structurally_equal(dst);
    if !verified {
        return Err(ModelError::Serde(format!(
            "transformed graph does not match destination model '{}'",
            dst.name()
        )));
    }
    Ok(ExecutionReport {
        steps_applied,
        verified,
        fetched_bytes,
        reused_bytes: (dst.byte_size() as u64).saturating_sub(fetched_bytes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{GroupPlanner, MunkresPlanner, NaivePlanner, Planner};
    use optimus_model::{Activation, GraphBuilder};
    use optimus_profile::CostModel;

    fn chain(name: &str, channels: &[usize], kernel: usize) -> ModelGraph {
        let mut b = GraphBuilder::new(name);
        let mut x = b.input([1, 3, 16, 16]);
        let mut ch = 3;
        for &c in channels {
            x = b.conv2d_after(x, ch, c, (kernel, kernel), (1, 1), 1);
            x = b.activation_after(x, Activation::Relu);
            ch = c;
        }
        let _ = b.global_avg_pool_after(x);
        b.finish().unwrap()
    }

    fn roundtrip(planner: &dyn Planner, src: &ModelGraph, dst: &ModelGraph) {
        let cost = CostModel::default();
        let plan = planner.plan(src, dst, &cost);
        let mut g = src.clone();
        let report = execute_plan(&mut g, &plan, dst)
            .unwrap_or_else(|e| panic!("{} failed: {e}", planner.name()));
        assert!(report.verified);
        assert!(g.structurally_equal(dst));
        assert_eq!(g.name(), dst.name());
        assert_eq!(
            report.fetched_bytes + report.reused_bytes,
            dst.byte_size() as u64,
            "delta accounting must partition the destination's bytes"
        );
    }

    #[test]
    fn group_plan_executes_same_depth_reshape() {
        let src = chain("src", &[8, 16], 3);
        let dst = chain("dst", &[16, 32], 5);
        roundtrip(&GroupPlanner, &src, &dst);
    }

    #[test]
    fn group_plan_executes_deepening() {
        let src = chain("src", &[8], 3);
        let dst = chain("dst", &[8, 16, 32], 3);
        roundtrip(&GroupPlanner, &src, &dst);
    }

    #[test]
    fn group_plan_executes_shrinking() {
        let src = chain("src", &[8, 16, 32, 64], 3);
        let dst = chain("dst", &[8], 3);
        roundtrip(&GroupPlanner, &src, &dst);
    }

    #[test]
    fn munkres_plan_executes() {
        let src = chain("src", &[8, 16], 3);
        let dst = chain("dst", &[4, 8, 12], 1);
        roundtrip(&MunkresPlanner, &src, &dst);
    }

    #[test]
    fn naive_plan_executes() {
        let src = chain("src", &[8], 3);
        let dst = chain("dst", &[16, 16], 3);
        roundtrip(&NaivePlanner, &src, &dst);
    }

    #[test]
    fn identity_plan_is_empty_and_executes() {
        let m = chain("same", &[8, 16], 3);
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&m, &m, &cost);
        assert!(plan.is_identity(), "steps: {:?}", plan.steps);
        assert_eq!(plan.cost.total(), 0.0);
        let mut g = m.clone();
        execute_plan(&mut g, &plan, &m).unwrap();
    }

    #[test]
    fn weight_variant_transform_is_replace_only() {
        let a = {
            let mut b = GraphBuilder::new("wv").weight_variant(0);
            let i = b.input([1, 3, 8, 8]);
            let _ = b.conv2d_after(i, 3, 8, (3, 3), (1, 1), 1);
            b.finish().unwrap()
        };
        let bb = {
            let mut b = GraphBuilder::new("wv").weight_variant(1);
            let i = b.input([1, 3, 8, 8]);
            let _ = b.conv2d_after(i, 3, 8, (3, 3), (1, 1), 1);
            b.finish().unwrap()
        };
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&a, &bb, &cost);
        assert_eq!(plan.cost.n_replace, 1);
        assert_eq!(plan.cost.n_reshape, 0);
        assert_eq!(plan.cost.n_add, 0);
        assert_eq!(plan.cost.n_reduce, 0);
        let mut g = a.clone();
        let report = execute_plan(&mut g, &plan, &bb).unwrap();
        // A replace-only plan rewrites every destination byte: the store
        // fetches the full weight set and reuses nothing.
        assert_eq!(report.fetched_bytes, bb.byte_size() as u64);
        assert_eq!(report.reused_bytes, 0);
    }

    #[test]
    fn reshape_preserves_weight_overlap() {
        // Transform a conv 3x3 into conv 5x5 and check the original kernel
        // occupies the top-left corner of the reshaped weights (before the
        // Replace step overwrites them — test a plan with reshape only by
        // applying the Reshape step manually).
        let src = chain("s", &[4], 3);
        let dst = chain("d", &[4], 5);
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let reshape = plan
            .steps
            .iter()
            .find(|s| matches!(s, MetaOp::Reshape { .. }))
            .expect("plan must contain a reshape");
        let MetaOp::Reshape { src: sid, attrs } = reshape else {
            unreachable!()
        };
        let mut g = src.clone();
        let before = g.op(*sid).unwrap().weights.as_ref().unwrap().tensors[0].materialize();
        // Apply just the reshape.
        let plan_one = TransformPlan {
            steps: vec![MetaOp::Reshape {
                src: *sid,
                attrs: attrs.clone(),
            }],
            ..plan.clone()
        };
        // Executor verification would fail (not fully transformed); apply
        // the step inline instead.
        let _ = plan_one;
        {
            let op = g.op_mut(*sid).unwrap();
            let new_shapes = attrs.weight_shapes();
            let old = op.weights.take().unwrap();
            let mut tensors = Vec::new();
            for (i, shape) in new_shapes.iter().enumerate() {
                tensors.push(WeightSpec::crop_pad_of(
                    old.tensors[i].clone(),
                    shape.clone(),
                ));
            }
            op.weights = Some(optimus_model::Weights::new(tensors));
            op.attrs = attrs.clone();
        }
        let after = g.op(*sid).unwrap().weights.as_ref().unwrap().tensors[0].materialize();
        // before: [4,3,3,3]; after: [4,3,5,5] with old values at [.., :3, :3].
        for oc in 0..4 {
            for ic in 0..3 {
                for y in 0..3 {
                    for x in 0..3 {
                        assert_eq!(before.at4(oc, ic, y, x), after.at4(oc, ic, y, x));
                    }
                }
            }
        }
        assert_eq!(after.at4(0, 0, 4, 4), 0.0, "padding must be zero");
    }

    #[test]
    fn executing_wrong_destination_fails_verification() {
        let src = chain("s", &[8], 3);
        let dst = chain("d", &[16], 3);
        let other = chain("o", &[32, 32], 3);
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let mut g = src.clone();
        let err = execute_plan(&mut g, &plan, &other).unwrap_err();
        assert!(matches!(err, ModelError::Serde(_)));
    }

    #[test]
    fn transformed_model_still_runs_inference() {
        let src = chain("s", &[4, 8], 3);
        let dst = chain("d", &[8, 8, 8], 3);
        let cost = CostModel::default();
        let plan = GroupPlanner.plan(&src, &dst, &cost);
        let mut g = src.clone();
        execute_plan(&mut g, &plan, &dst).unwrap();
        let y = optimus_model::infer::run(&g, optimus_model::tensor::Tensor::zeros([1, 3, 16, 16]))
            .unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
