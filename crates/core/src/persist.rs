//! Repository persistence (§7: "Models are deployed to the Docker volume…
//! Model structure information and model-to-model transformation planning
//! are stored with the models in JSON format").
//!
//! A [`RepositorySnapshot`] captures the registered models, their profiled
//! load costs, and the entire cached plan set; it round-trips through JSON
//! so a gateway restart (or a new node joining) skips the offline planning
//! pass entirely.

use std::collections::HashMap;
use std::sync::Arc;

use optimus_model::ModelGraph;
use serde::{Deserialize, Serialize};

use crate::cache::ModelRepository;
use crate::metaop::TransformPlan;
use crate::planner::Planner;

/// Serializable snapshot of a [`ModelRepository`]'s state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepositorySnapshot {
    /// Registered models.
    pub models: Vec<ModelGraph>,
    /// Profiled scratch-load cost per model name.
    pub load_costs: HashMap<String, f64>,
    /// Cached plans keyed by `(source, destination)` names.
    pub plans: Vec<((String, String), TransformPlan)>,
}

impl RepositorySnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// The snapshot with volatile host-timing fields zeroed
    /// (`planning_seconds` is wall-clock measured during planning, so two
    /// registrations of identical catalogs differ only there). Two
    /// repositories hold the same plan set iff their canonicalized
    /// snapshots serialize to identical bytes — the warmup experiment's
    /// parallel-vs-sequential equivalence check.
    pub fn canonicalized(mut self) -> RepositorySnapshot {
        for (_, plan) in &mut self.plans {
            plan.planning_seconds = 0.0;
        }
        self
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<RepositorySnapshot, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl ModelRepository {
    /// Capture the repository's full state for persistence.
    pub fn snapshot(&self) -> RepositorySnapshot {
        self.snapshot_parts()
    }

    /// Rebuild a repository from a snapshot without recomputing plans.
    ///
    /// The planner is still needed for models registered *after* the
    /// restore.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose plans reference unknown models or whose
    /// models fail validation.
    pub fn restore(
        snapshot: RepositorySnapshot,
        planner: Box<dyn Planner + Send + Sync>,
    ) -> Result<ModelRepository, String> {
        let mut models = HashMap::new();
        for m in snapshot.models {
            m.validate()
                .map_err(|e| format!("model '{}' invalid: {e}", m.name()))?;
            models.insert(m.name().to_string(), Arc::new(m));
        }
        for ((src, dst), _) in &snapshot.plans {
            if !models.contains_key(src) || !models.contains_key(dst) {
                return Err(format!("plan {src}->{dst} references unknown models"));
            }
        }
        for name in snapshot.load_costs.keys() {
            if !models.contains_key(name) {
                return Err(format!("load cost for unknown model '{name}'"));
            }
        }
        let plans = snapshot
            .plans
            .into_iter()
            .map(|(k, p)| (k, Arc::new(p)))
            .collect();
        Ok(ModelRepository::from_parts(
            planner,
            models,
            snapshot.load_costs,
            plans,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    fn sample_repo() -> ModelRepository {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        repo.register(optimus_zoo::resnet::resnet18(), &cost);
        repo
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let repo = sample_repo();
        let snap = repo.snapshot();
        assert_eq!(snap.models.len(), 3);
        assert_eq!(snap.plans.len(), 6, "3 models: 6 directed pairs");
        let json = snap.to_json();
        let restored = ModelRepository::restore(
            RepositorySnapshot::from_json(&json).unwrap(),
            Box::new(GroupPlanner),
        )
        .unwrap();
        assert_eq!(restored.model_names(), repo.model_names());
        for src in repo.model_names() {
            for dst in repo.model_names() {
                if src == dst {
                    continue;
                }
                let a = repo.plan(&src, &dst).unwrap();
                let b = restored.plan(&src, &dst).unwrap();
                assert_eq!(a.cost, b.cost, "{src}->{dst} plan cost mismatch");
                assert_eq!(a.steps.len(), b.steps.len());
            }
        }
        assert_eq!(
            restored.load_cost("vgg16").unwrap(),
            repo.load_cost("vgg16").unwrap()
        );
    }

    #[test]
    fn restored_repository_accepts_new_registrations() {
        let repo = sample_repo();
        let restored = ModelRepository::restore(repo.snapshot(), Box::new(GroupPlanner)).unwrap();
        let cost = CostModel::default();
        restored.register(optimus_zoo::vgg::vgg11(), &cost);
        assert!(restored.plan("vgg11", "vgg16").is_some());
        assert!(restored.plan("vgg16", "vgg11").is_some());
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        assert!(RepositorySnapshot::from_json("{bad").is_err());
        // Plan referencing a missing model.
        let repo = sample_repo();
        let mut snap = repo.snapshot();
        snap.models.retain(|m| m.name() != "vgg19");
        assert!(ModelRepository::restore(snap, Box::new(GroupPlanner)).is_err());
    }

    #[test]
    fn restored_decisions_match_original() {
        let repo = sample_repo();
        let restored = ModelRepository::restore(repo.snapshot(), Box::new(GroupPlanner)).unwrap();
        let a = repo.decide("vgg16", "vgg19").unwrap();
        let b = restored.decide("vgg16", "vgg19").unwrap();
        assert_eq!(a.is_transform(), b.is_transform());
        assert!((a.latency() - b.latency()).abs() < 1e-12);
    }
}
