//! Repository persistence (§7: "Models are deployed to the Docker volume…
//! Model structure information and model-to-model transformation planning
//! are stored with the models in JSON format").
//!
//! A [`RepositorySnapshot`] captures the registered models, their profiled
//! load costs, and the entire cached plan set; it round-trips through JSON
//! so a gateway restart (or a new node joining) skips the offline planning
//! pass entirely.
//!
//! Snapshots are **version-stamped** ([`SNAPSHOT_VERSION`]): the format
//! version is checked *before* the full structure is deserialized, so a
//! snapshot written by an incompatible build is rejected with a typed
//! [`SnapshotError::UnsupportedVersion`] instead of a confusing field-level
//! parse failure (or a panic deep inside graph validation).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use optimus_model::ModelGraph;
use serde::{Deserialize, Serialize};

use crate::cache::ModelRepository;
use crate::metaop::TransformPlan;
use crate::planner::Planner;

/// Current snapshot schema version. Bump on any incompatible change to
/// [`RepositorySnapshot`] (or to the serialized form of the types it
/// embeds).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a persisted snapshot could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input is not valid JSON, or not a snapshot-shaped object.
    Malformed(String),
    /// The snapshot was written with a different schema version.
    /// `found == 0` means the input predates version stamping.
    UnsupportedVersion {
        /// Version recorded in the snapshot (0 if absent).
        found: u64,
        /// Version this build reads ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The snapshot parsed but its contents are inconsistent (invalid
    /// model, plan or load cost referencing an unknown model, …).
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {expected})"
            ),
            SnapshotError::Invalid(e) => write!(f, "invalid snapshot: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializable snapshot of a [`ModelRepository`]'s state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepositorySnapshot {
    /// Schema version of this snapshot ([`SNAPSHOT_VERSION`] when written
    /// by this build).
    pub version: u32,
    /// Registered models.
    pub models: Vec<ModelGraph>,
    /// Profiled scratch-load cost per model name.
    pub load_costs: HashMap<String, f64>,
    /// Cached plans keyed by `(source, destination)` names.
    pub plans: Vec<((String, String), TransformPlan)>,
}

impl RepositorySnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// The snapshot with volatile host-timing fields zeroed
    /// (`planning_seconds` is wall-clock measured during planning, so two
    /// registrations of identical catalogs differ only there). Two
    /// repositories hold the same plan set iff their canonicalized
    /// snapshots serialize to identical bytes — the warmup experiment's
    /// parallel-vs-sequential equivalence check.
    pub fn canonicalized(mut self) -> RepositorySnapshot {
        for (_, plan) in &mut self.plans {
            plan.planning_seconds = 0.0;
        }
        self
    }

    /// Deserialize from JSON, checking the schema version first.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on invalid JSON or a non-object root;
    /// [`SnapshotError::UnsupportedVersion`] when the `version` stamp is
    /// missing or differs from [`SNAPSHOT_VERSION`].
    pub fn from_json(json: &str) -> Result<RepositorySnapshot, SnapshotError> {
        // Probe the version on the raw value tree before committing to the
        // struct layout: a v2 snapshot must fail with "unsupported
        // version", not with whatever field happens to differ first.
        let value: serde_json::Value =
            serde_json::from_str(json).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if value.as_object().is_none() {
            return Err(SnapshotError::Malformed(
                "snapshot root is not an object".to_string(),
            ));
        }
        let found = value.get("version").and_then(|v| v.as_u64()).unwrap_or(0);
        if found != u64::from(SNAPSHOT_VERSION) {
            return Err(SnapshotError::UnsupportedVersion {
                found,
                expected: SNAPSHOT_VERSION,
            });
        }
        serde_json::from_str(json).map_err(|e| SnapshotError::Malformed(e.to_string()))
    }
}

impl ModelRepository {
    /// Capture the repository's full state for persistence.
    pub fn snapshot(&self) -> RepositorySnapshot {
        self.snapshot_parts()
    }

    /// Rebuild a repository from a snapshot without recomputing plans.
    ///
    /// The planner is still needed for models registered *after* the
    /// restore.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] on a version mismatch (a
    /// programmatically built snapshot can carry any stamp);
    /// [`SnapshotError::Invalid`] when plans or load costs reference
    /// unknown models or a model fails validation.
    pub fn restore(
        snapshot: RepositorySnapshot,
        planner: Box<dyn Planner + Send + Sync>,
    ) -> Result<ModelRepository, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: u64::from(snapshot.version),
                expected: SNAPSHOT_VERSION,
            });
        }
        let mut models = HashMap::new();
        for m in snapshot.models {
            m.validate().map_err(|e| {
                SnapshotError::Invalid(format!("model '{}' invalid: {e}", m.name()))
            })?;
            models.insert(m.name().to_string(), Arc::new(m));
        }
        for ((src, dst), _) in &snapshot.plans {
            if !models.contains_key(src) || !models.contains_key(dst) {
                return Err(SnapshotError::Invalid(format!(
                    "plan {src}->{dst} references unknown models"
                )));
            }
        }
        for name in snapshot.load_costs.keys() {
            if !models.contains_key(name) {
                return Err(SnapshotError::Invalid(format!(
                    "load cost for unknown model '{name}'"
                )));
            }
        }
        let plans = snapshot
            .plans
            .into_iter()
            .map(|(k, p)| (k, Arc::new(p)))
            .collect();
        Ok(ModelRepository::from_parts(
            planner,
            models,
            snapshot.load_costs,
            plans,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    fn sample_repo() -> ModelRepository {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        repo.register(optimus_zoo::resnet::resnet18(), &cost);
        repo
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let repo = sample_repo();
        let snap = repo.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.models.len(), 3);
        assert_eq!(snap.plans.len(), 6, "3 models: 6 directed pairs");
        let json = snap.to_json();
        let restored = ModelRepository::restore(
            RepositorySnapshot::from_json(&json).unwrap(),
            Box::new(GroupPlanner),
        )
        .unwrap();
        assert_eq!(restored.model_names(), repo.model_names());
        for src in repo.model_names() {
            for dst in repo.model_names() {
                if src == dst {
                    continue;
                }
                let a = repo.plan(&src, &dst).unwrap();
                let b = restored.plan(&src, &dst).unwrap();
                assert_eq!(a.cost, b.cost, "{src}->{dst} plan cost mismatch");
                assert_eq!(a.steps.len(), b.steps.len());
            }
        }
        assert_eq!(
            restored.load_cost("vgg16").unwrap(),
            repo.load_cost("vgg16").unwrap()
        );
    }

    #[test]
    fn restored_repository_accepts_new_registrations() {
        let repo = sample_repo();
        let restored = ModelRepository::restore(repo.snapshot(), Box::new(GroupPlanner)).unwrap();
        let cost = CostModel::default();
        restored.register(optimus_zoo::vgg::vgg11(), &cost);
        assert!(restored.plan("vgg11", "vgg16").is_some());
        assert!(restored.plan("vgg16", "vgg11").is_some());
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        assert!(matches!(
            RepositorySnapshot::from_json("{bad"),
            Err(SnapshotError::Malformed(_))
        ));
        assert!(matches!(
            RepositorySnapshot::from_json("[1, 2]"),
            Err(SnapshotError::Malformed(_))
        ));
        // Plan referencing a missing model.
        let repo = sample_repo();
        let mut snap = repo.snapshot();
        snap.models.retain(|m| m.name() != "vgg19");
        assert!(matches!(
            ModelRepository::restore(snap, Box::new(GroupPlanner)),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let repo = sample_repo();
        // A future (or past) on-disk version is rejected before the struct
        // parse ever runs, even though the rest of the payload matches the
        // current layout exactly.
        let mut future = repo.snapshot();
        future.version = SNAPSHOT_VERSION + 1;
        match RepositorySnapshot::from_json(&future.to_json()) {
            Err(SnapshotError::UnsupportedVersion { found, expected }) => {
                assert_eq!(found, u64::from(SNAPSHOT_VERSION) + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Pre-stamping snapshots (no `version` member at all) report 0.
        match RepositorySnapshot::from_json("{\"models\":[]}") {
            Err(SnapshotError::UnsupportedVersion { found, .. }) => assert_eq!(found, 0),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // `restore` itself re-checks the stamp for in-memory snapshots.
        let mut snap = repo.snapshot();
        snap.version = 99;
        assert!(matches!(
            ModelRepository::restore(snap, Box::new(GroupPlanner)),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn restored_decisions_match_original() {
        let repo = sample_repo();
        let restored = ModelRepository::restore(repo.snapshot(), Box::new(GroupPlanner)).unwrap();
        let a = repo.decide("vgg16", "vgg19").unwrap();
        let b = restored.decide("vgg16", "vgg19").unwrap();
        assert_eq!(a.is_transform(), b.is_transform());
        assert!((a.latency() - b.latency()).abs() < 1e-12);
    }
}
