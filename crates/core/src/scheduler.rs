//! Inter-function container scheduling primitives (§4.2).
//!
//! A container is *idle* when no request has been routed to it for longer
//! than a threshold (the paper uses 60 s, like Pagurus); idle containers
//! are the donors for inter-function model transformation. Given the set
//! of idle containers on a node and a destination model, the scheduler
//! picks the donor whose cached plan is cheapest — or reports that a cold
//! start is the best option.

use std::sync::Arc;

use crate::cache::{ModelRepository, TransformDecision};
use crate::metaop::TransformPlan;
use optimus_model::ModelId;

/// Idle-container identification timer (§4.2): reset on every routed
/// request, idle once `threshold` seconds elapse without one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleTimer {
    last_request: f64,
    threshold: f64,
}

impl IdleTimer {
    /// Timer with the given idle threshold, last touched at `now`.
    pub fn new(now: f64, threshold: f64) -> Self {
        IdleTimer {
            last_request: now,
            threshold,
        }
    }

    /// Reset: a request was routed to the container at `now`.
    pub fn touch(&mut self, now: f64) {
        self.last_request = now;
    }

    /// Whether the container counts as idle at `now`.
    pub fn is_idle(&self, now: f64) -> bool {
        now - self.last_request >= self.threshold
    }

    /// Seconds since the last routed request.
    pub fn idle_for(&self, now: f64) -> f64 {
        now - self.last_request
    }

    /// The configured idle threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// A transformation source chosen by [`choose_source`].
#[derive(Debug, Clone)]
pub struct SourceChoice<C> {
    /// The chosen donor container handle.
    pub container: C,
    /// The cached plan from the donor's model to the destination.
    pub plan: Arc<TransformPlan>,
    /// The plan's execution latency (s).
    pub latency: f64,
}

/// Pick the cheapest idle donor for serving `dst_model`, consulting the
/// repository's cached plans and safeguard.
///
/// `idle` yields `(handle, model_name)` pairs for the node's idle
/// containers. Returns `None` when no donor beats a scratch load — the
/// caller should cold-start (or Pagurus-style repurpose) instead.
pub fn choose_source<C>(
    repo: &ModelRepository,
    idle: impl IntoIterator<Item = (C, String)>,
    dst_model: &str,
) -> Option<SourceChoice<C>> {
    let mut best: Option<SourceChoice<C>> = None;
    for (handle, src_model) in idle {
        if src_model == dst_model {
            // A warm container already holding the model should have been
            // used as a plain warm start before transformation is ever
            // considered; skip it here.
            continue;
        }
        match repo.decide(&src_model, dst_model) {
            Some(TransformDecision::Transform(plan)) => {
                let latency = plan.cost.total();
                if best.as_ref().is_none_or(|b| latency < b.latency) {
                    best = Some(SourceChoice {
                        container: handle,
                        plan,
                        latency,
                    });
                }
            }
            _ => continue,
        }
    }
    best
}

/// Id-keyed [`choose_source`]: the simulator's per-event donor scan.
///
/// `idle` yields `(handle, interned model id)` pairs — `Copy` data, so the
/// scan neither clones names nor hashes strings; each candidate costs two
/// dense-array probes inside [`ModelRepository::decide_by_id`].
pub fn choose_source_by_id<C>(
    repo: &ModelRepository,
    idle: impl IntoIterator<Item = (C, ModelId)>,
    dst_model: ModelId,
) -> Option<SourceChoice<C>> {
    let mut best: Option<SourceChoice<C>> = None;
    for (handle, src_model) in idle {
        if src_model == dst_model {
            // Same-model donors are warm starts, never transformations.
            continue;
        }
        if let Some(TransformDecision::Transform(plan)) = repo.decide_by_id(src_model, dst_model) {
            let latency = plan.cost.total();
            if best.as_ref().is_none_or(|b| latency < b.latency) {
                best = Some(SourceChoice {
                    container: handle,
                    plan,
                    latency,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::GroupPlanner;
    use optimus_profile::CostModel;

    #[test]
    fn idle_timer_threshold() {
        let mut t = IdleTimer::new(0.0, 60.0);
        assert!(!t.is_idle(59.9));
        assert!(t.is_idle(60.0));
        t.touch(100.0);
        assert!(!t.is_idle(120.0));
        assert!(t.is_idle(160.0));
        assert_eq!(t.idle_for(130.0), 30.0);
        assert_eq!(t.threshold(), 60.0);
    }

    #[test]
    fn choose_source_picks_cheapest_donor() {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        repo.register(optimus_zoo::resnet::resnet50(), &cost);
        // Donors: vgg16 (same family, cheap) and resnet50 (cross family,
        // more expensive).
        let choice = choose_source(
            &repo,
            vec![(1u32, "resnet50".to_string()), (2u32, "vgg16".to_string())],
            "vgg19",
        )
        .expect("a donor must beat scratch load");
        assert_eq!(choice.container, 2, "vgg16 should be the cheaper donor");
        let vgg_latency = repo.transform_latency("vgg16", "vgg19").unwrap();
        assert_eq!(choice.latency, vgg_latency);
    }

    #[test]
    fn choose_source_skips_same_model_and_empty() {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        assert!(choose_source(&repo, Vec::<(u32, String)>::new(), "vgg16").is_none());
        assert!(
            choose_source(&repo, vec![(1u32, "vgg16".to_string())], "vgg16").is_none(),
            "same-model donors are warm starts, not transformations"
        );
    }

    #[test]
    fn choose_source_by_id_matches_string_path() {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(optimus_zoo::vgg::vgg19(), &cost);
        repo.register(optimus_zoo::resnet::resnet50(), &cost);
        let id = |n: &str| repo.model_id(n).expect("registered");
        let by_id = choose_source_by_id(
            &repo,
            vec![(1u32, id("resnet50")), (2u32, id("vgg16"))],
            id("vgg19"),
        )
        .expect("a donor must beat scratch load");
        let by_name = choose_source(
            &repo,
            vec![(1u32, "resnet50".to_string()), (2u32, "vgg16".to_string())],
            "vgg19",
        )
        .expect("a donor must beat scratch load");
        assert_eq!(by_id.container, by_name.container);
        assert_eq!(by_id.latency, by_name.latency);
        // Same-model donors and empty donor sets yield no choice.
        assert!(choose_source_by_id(&repo, Vec::<(u32, ModelId)>::new(), id("vgg16")).is_none());
        assert!(choose_source_by_id(&repo, vec![(1u32, id("vgg16"))], id("vgg16")).is_none());
    }

    #[test]
    fn choose_source_rejects_transformer_donors_for_cnn() {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register(optimus_zoo::vgg::vgg16(), &cost);
        repo.register(
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
            &cost,
        );
        assert!(choose_source(
            &repo,
            vec![(1u32, "bert-tiny-uncased".to_string())],
            "vgg16"
        )
        .is_none());
    }
}
