//! # optimus-core — inter-function model transformation
//!
//! The paper's primary contribution (§4): transforming the ML model held by
//! a warm-but-idle container into the model another function needs, instead
//! of loading the new model from scratch.
//!
//! The crate implements the full §4 pipeline:
//!
//! - **Meta-operators** ([`MetaOp`], §4.3): `Replace`, `Reshape`, `Reduce`,
//!   `Add` and `Edge`, operating on `optimus-model` graphs with real
//!   semantics (e.g. `Reshape` crops/zero-pads the overlapping weight
//!   region).
//! - **Planning** (§4.4): the transformation is a bipartite graph-edit
//!   problem. [`MunkresPlanner`] is Module 2 — a Riesen–Bunke
//!   `(n+m)×(n+m)` cost matrix solved by a from-scratch O(k³) Hungarian
//!   algorithm; [`GroupPlanner`] is Module 2⁺ — the O(n+m) group-based
//!   heuristic; [`BruteForcePlanner`] is the factorial oracle used to
//!   verify optimality on small instances; [`NaivePlanner`]
//!   (delete-everything-then-add-everything) is the ablation baseline.
//! - **Execution** ([`execute_plan`]): applies a plan's meta-operators to
//!   the source graph in place and verifies the result is structurally and
//!   weight-identical to the destination model.
//! - **Plan cache & safeguard** ([`ModelRepository`], §4.4 Module 3): plans
//!   are computed offline when a model registers and cached; at request
//!   time the scheduler only reads the cache, and falls back to a scratch
//!   load whenever transformation would be slower. Bulk registration
//!   ([`ModelRepository::register_all`]) fans the O(N²) pairwise sweep
//!   across a scoped worker pool, holding the repository lock only to
//!   snapshot the catalog and to install the finished batch.
//! - **Container scheduling** ([`scheduler`], §4.2): idle-container
//!   identification by per-container timers and min-cost source selection.
//!
//! ```
//! use optimus_core::{GroupPlanner, Planner, execute_plan};
//! use optimus_profile::CostModel;
//!
//! let src = optimus_zoo::vgg::vgg16();
//! let dst = optimus_zoo::vgg::vgg19();
//! let cost = CostModel::default();
//! let plan = GroupPlanner.plan(&src, &dst, &cost);
//! assert!(plan.cost.total() < cost_of_scratch(&dst, &cost));
//!
//! let mut container_model = src.clone();
//! let report = execute_plan(&mut container_model, &plan, &dst).unwrap();
//! assert!(container_model.structurally_equal(&dst));
//! assert_eq!(report.steps_applied, plan.steps.len());
//!
//! fn cost_of_scratch(
//!     m: &optimus_model::ModelGraph,
//!     c: &CostModel,
//! ) -> f64 {
//!     use optimus_profile::CostProvider;
//!     c.model_load_cost(m)
//! }
//! ```

mod artifact;
mod cache;
mod chunks;
mod executor;
mod kv;
mod matrix;
mod metaop;
mod munkres;
mod persist;
mod planner;
pub mod scheduler;

pub use artifact::{PlanArtifact, PlanArtifactEntry, PlanArtifactError, PLAN_ARTIFACT_VERSION};
pub use cache::{ModelRepository, PlanScope, TransformDecision};
pub use chunks::{plan_chunks, plans_referenced_chunks, PlanChunks};
pub use executor::{execute_plan, ExecutionReport};
pub use kv::{plan_kv_transform, KvMetaOp, KvPlan};
pub use matrix::CostMatrix;
pub use metaop::{MetaOp, PlanCost, TransformPlan};
pub use munkres::{solve_assignment, solve_assignment_flat, MunkresScratch};
pub use persist::{RepositorySnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use planner::{BruteForcePlanner, GroupPlanner, MunkresPlanner, NaivePlanner, Planner};
