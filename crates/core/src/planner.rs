//! Transformation planners (§4.4 Modules 2 and 2⁺).
//!
//! All planners produce a [`TransformPlan`] through the same assembly path:
//! they differ only in how they compute the kept-operation *mapping*
//! between source and destination ops.
//!
//! - [`MunkresPlanner`] — Module 2: optimal bipartite graph-edit matching
//!   via the Hungarian algorithm on the Riesen–Bunke matrix, O((n+m)³).
//! - [`GroupPlanner`] — Module 2⁺: the paper's linear-time heuristic —
//!   group ops by kind, match sequentially within groups, Reduce/Add the
//!   leftovers. O(n+m).
//! - [`BruteForcePlanner`] — the factorial oracle for tiny instances,
//!   used to verify Munkres optimality in tests.
//! - [`NaivePlanner`] — delete-everything / add-everything, i.e. what a
//!   traditional platform effectively does; the ablation baseline.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use optimus_model::{ModelGraph, OpId};
use optimus_profile::CostProvider;

use crate::matrix::{CostMatrix, FORBIDDEN};
use crate::metaop::{MetaOp, PlanCost, TransformPlan};
use crate::munkres::{solve_assignment_flat, MunkresScratch};

thread_local! {
    /// Per-thread Hungarian scratch: repeated plans on the same thread (the
    /// plan cache's O(N²) registration sweep, sequential or one worker of
    /// the parallel pool) reuse one set of working buffers.
    static SCRATCH: RefCell<MunkresScratch> = RefCell::new(MunkresScratch::new());
}

/// A strategy for computing transformation plans.
pub trait Planner {
    /// Compute a plan transforming `src` into `dst` under `cost`.
    fn plan(&self, src: &ModelGraph, dst: &ModelGraph, cost: &dyn CostProvider) -> TransformPlan;

    /// Short planner name for reports.
    fn name(&self) -> &'static str;
}

/// Module 2: optimal planning via Munkres on the edit-cost matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct MunkresPlanner;

/// Module 2⁺: linear-time group-based planning.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupPlanner;

/// Factorial brute-force oracle (tiny instances only).
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForcePlanner;

/// Delete-all + add-all ablation baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaivePlanner;

impl Planner for MunkresPlanner {
    fn plan(&self, src: &ModelGraph, dst: &ModelGraph, cost: &dyn CostProvider) -> TransformPlan {
        let start = Instant::now();
        let matrix = CostMatrix::build(src, dst, &ByRef(cost));
        let n = matrix.n();
        let m = matrix.m();
        let mapping = SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let assignment = solve_assignment_flat(&matrix.costs, matrix.dim(), &mut scratch);
            let mut mapping = Vec::new();
            for (i, &j) in assignment.iter().enumerate().take(n) {
                if j < m && matrix.at(i, j) < FORBIDDEN {
                    mapping.push((matrix.src_ids[i], matrix.dst_ids[j]));
                }
            }
            mapping
        });
        let planning = start.elapsed().as_secs_f64();
        assemble_plan(src, dst, cost, mapping, self.name(), planning)
    }

    fn name(&self) -> &'static str {
        "munkres"
    }
}

impl Planner for GroupPlanner {
    fn plan(&self, src: &ModelGraph, dst: &ModelGraph, cost: &dyn CostProvider) -> TransformPlan {
        let start = Instant::now();
        // (1) Group by kind; id order approximates layer order, exploiting
        // the paper's observation that operation shapes grow monotonically
        // with depth within a model.
        let src_groups = src.ops_by_kind();
        let dst_groups = dst.ops_by_kind();
        let mut mapping = Vec::new();
        for (kind, src_ids) in &src_groups {
            let Some(dst_ids) = dst_groups.get(kind) else {
                continue;
            };
            // (2) Match sequentially, one by one.
            for (&s, &d) in src_ids.iter().zip(dst_ids.iter()) {
                let sop = src.op(s).expect("grouped id");
                let dop = dst.op(d).expect("grouped id");
                // Local safeguard: never match when Reduce+Add is cheaper
                // (keeps the heuristic within the optimum's neighbourhood
                // even for pathological shape pairs).
                let sub = cost.substitute_cost(sop, dop);
                let replace_path = cost.reduce_cost(&sop.attrs) + cost.add_cost(&dop.attrs);
                match sub {
                    Some(c) if c <= replace_path => mapping.push((s, d)),
                    _ => {}
                }
            }
        }
        let planning = start.elapsed().as_secs_f64();
        assemble_plan(src, dst, cost, mapping, self.name(), planning)
    }

    fn name(&self) -> &'static str {
        "group"
    }
}

impl Planner for BruteForcePlanner {
    /// # Panics
    ///
    /// Panics when `n + m > 10` — the factorial search is an oracle for
    /// verifying optimality on tiny instances, not a production planner.
    fn plan(&self, src: &ModelGraph, dst: &ModelGraph, cost: &dyn CostProvider) -> TransformPlan {
        let start = Instant::now();
        let matrix = CostMatrix::build(src, dst, &ByRef(cost));
        let k = matrix.dim();
        assert!(
            k <= 10,
            "brute-force planner is limited to n+m <= 10 (got {k})"
        );
        let mut perm: Vec<usize> = (0..k).collect();
        let mut best: Option<(f64, Vec<usize>)> = None;
        permute(&mut perm, 0, &mut |p| {
            let c: f64 = p.iter().enumerate().map(|(i, &j)| matrix.at(i, j)).sum();
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, p.to_vec()));
            }
        });
        let (_, assignment) = best.expect("non-empty permutation space");
        let n = matrix.n();
        let m = matrix.m();
        let mut mapping = Vec::new();
        for (i, &j) in assignment.iter().enumerate().take(n) {
            if j < m && matrix.at(i, j) < FORBIDDEN {
                mapping.push((matrix.src_ids[i], matrix.dst_ids[j]));
            }
        }
        let planning = start.elapsed().as_secs_f64();
        assemble_plan(src, dst, cost, mapping, self.name(), planning)
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

impl Planner for NaivePlanner {
    fn plan(&self, src: &ModelGraph, dst: &ModelGraph, cost: &dyn CostProvider) -> TransformPlan {
        let start = Instant::now();
        let planning = start.elapsed().as_secs_f64();
        assemble_plan(src, dst, cost, Vec::new(), self.name(), planning)
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == arr.len() {
        f(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, f);
        arr.swap(k, i);
    }
}

/// Adapter: `CostMatrix::build` takes `&impl CostProvider`; this lets a
/// `&dyn CostProvider` flow through.
struct ByRef<'a>(&'a dyn CostProvider);

impl CostProvider for ByRef<'_> {
    fn structure_cost(&self, attrs: &optimus_model::OpAttrs) -> f64 {
        self.0.structure_cost(attrs)
    }
    fn assign_cost(&self, attrs: &optimus_model::OpAttrs) -> f64 {
        self.0.assign_cost(attrs)
    }
    fn replace_cost(&self, dst: &optimus_model::OpAttrs) -> f64 {
        self.0.replace_cost(dst)
    }
    fn reshape_cost(
        &self,
        src: &optimus_model::OpAttrs,
        dst: &optimus_model::OpAttrs,
    ) -> Option<f64> {
        self.0.reshape_cost(src, dst)
    }
    fn reduce_cost(&self, src: &optimus_model::OpAttrs) -> f64 {
        self.0.reduce_cost(src)
    }
    fn edge_cost(&self) -> f64 {
        self.0.edge_cost()
    }
    fn deserialize_cost(&self, model: &ModelGraph) -> f64 {
        self.0.deserialize_cost(model)
    }
}

/// Assemble an executable plan from a kept-operation mapping.
///
/// Emits, in execution order: `Reshape`/`Replace` for kept pairs whose
/// attributes/weights differ, `Reduce` for unmatched source ops, `Add` for
/// unmatched destination ops, then the `Edge` steps that reconcile the
/// data flows (§4.3's fifth meta-operator).
pub(crate) fn assemble_plan(
    src: &ModelGraph,
    dst: &ModelGraph,
    cost: &dyn CostProvider,
    mapping: Vec<(OpId, OpId)>,
    planner: &'static str,
    planning_seconds: f64,
) -> TransformPlan {
    let mut steps = Vec::new();
    let mut pc = PlanCost::default();
    let mapped_src: BTreeSet<OpId> = mapping.iter().map(|(s, _)| *s).collect();
    let mapped_dst: BTreeSet<OpId> = mapping.iter().map(|(_, d)| *d).collect();
    // Kept pairs: reshape and/or replace.
    for &(s, d) in &mapping {
        let sop = src.op(s).expect("mapping src id");
        let dop = dst.op(d).expect("mapping dst id");
        debug_assert_eq!(sop.kind(), dop.kind(), "mapping must be kind-consistent");
        let attrs_differ = sop.attrs != dop.attrs;
        if attrs_differ {
            let c = cost
                .reshape_cost(&sop.attrs, &dop.attrs)
                .expect("same-kind reshape always defined");
            steps.push(MetaOp::Reshape {
                src: s,
                attrs: dop.attrs.clone(),
            });
            pc.reshape += c;
            pc.n_reshape += 1;
        }
        let weights_differ = match (&sop.weights, &dop.weights) {
            (None, None) => false,
            (Some(a), Some(b)) => attrs_differ || a.id() != b.id(),
            _ => true,
        };
        if weights_differ {
            if let Some(w) = &dop.weights {
                steps.push(MetaOp::Replace {
                    src: s,
                    weights: w.clone(),
                });
                pc.replace += cost.replace_cost(&dop.attrs);
                pc.n_replace += 1;
            }
        }
    }
    // Unmatched source ops: reduce.
    for (s, sop) in src.ops() {
        if !mapped_src.contains(&s) {
            steps.push(MetaOp::Reduce { src: s });
            pc.reduce += cost.reduce_cost(&sop.attrs);
            pc.n_reduce += 1;
        }
    }
    // Unmatched destination ops: add.
    for (d, dop) in dst.ops() {
        if !mapped_dst.contains(&d) {
            steps.push(MetaOp::Add {
                op: dop.clone(),
                dst: d,
            });
            pc.add += cost.add_cost(&dop.attrs);
            pc.n_add += 1;
        }
    }
    // Edge reconciliation. Kept src edges map into dst space; the diff
    // against the dst edge set is executed by Edge meta-operators.
    let src_to_dst: HashMap<OpId, OpId> = mapping.iter().copied().collect();
    let mut persisting: BTreeSet<(OpId, OpId)> = BTreeSet::new();
    for e in src.edges() {
        if let (Some(&df), Some(&dt)) = (src_to_dst.get(&e.from), src_to_dst.get(&e.to)) {
            if dst.has_edge(df, dt) {
                persisting.insert((df, dt));
            } else {
                steps.push(MetaOp::EdgeRemove {
                    from: e.from,
                    to: e.to,
                });
                pc.edge += cost.edge_cost();
                pc.n_edge += 1;
            }
        }
        // Edges incident to reduced ops vanish with the Reduce itself.
    }
    for e in dst.edges() {
        if !persisting.contains(&(e.from, e.to)) {
            steps.push(MetaOp::EdgeAdd {
                from: e.from,
                to: e.to,
            });
            pc.edge += cost.edge_cost();
            pc.n_edge += 1;
        }
    }
    // Map ordering is deterministic (BTree-based graphs), so plans are too.
    let mut mapping = mapping;
    mapping.sort_unstable();
    TransformPlan {
        src_model: src.name().to_string(),
        dst_model: dst.name().to_string(),
        steps,
        mapping,
        cost: pc,
        planner: planner.to_string(),
        planning_seconds,
    }
}
