//! Property tests pinning the predictor's fallback contract: with no (or
//! insufficient) history, every query degrades to exactly the fixed-window
//! baseline — same bits, no arithmetic — so wiring an empty predictor into
//! a system changes nothing.

use optimus_predict::{PredictConfig, Predictor, SpeculationConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// An empty-history predictor returns the caller's fixed window
    /// bit-exactly for every function index and every default, under any
    /// valid config — including aggressive adaptive ones.
    #[test]
    fn empty_history_falls_back_to_fixed_window(
        f in 0usize..64,
        default_bits in any::<u32>(),
        confidence in 0.5f64..0.99,
        margin in 1.0f64..3.0,
        adaptive in any::<bool>(),
    ) {
        // Build defaults from raw bits scaled into a plausible range so
        // we exercise awkward mantissas, not just round numbers.
        let default = 1.0 + f64::from(default_bits) / 1e6;
        let cfg = PredictConfig {
            confidence,
            window_margin: margin,
            adaptive_keep_alive: adaptive,
            ..PredictConfig::default()
        };
        cfg.validate().unwrap();
        let p = Predictor::new(cfg, 8);
        prop_assert_eq!(p.forecast(f), None);
        prop_assert_eq!(p.keep_alive(f, default).to_bits(), default.to_bits());
    }

    /// Below `min_history` the fallback still holds after real
    /// observations, and no speculation is ever issued.
    #[test]
    fn below_min_history_is_still_the_baseline(
        n in 0u64..8,
        min_history in 1u64..16,
        period in 0.1f64..1000.0,
        default in 1.0f64..10_000.0,
    ) {
        prop_assume!(n < min_history);
        let cfg = PredictConfig {
            min_history,
            speculation: Some(SpeculationConfig::default()),
            ..PredictConfig::default()
        };
        let mut p = Predictor::new(cfg, 1);
        for i in 0..n {
            p.observe(0, i as f64 * period);
        }
        prop_assert_eq!(p.forecast(0), None);
        prop_assert_eq!(p.keep_alive(0, default).to_bits(), default.to_bits());
        let mut due = Vec::new();
        p.due_speculations(n as f64 * period + 1e9, |_| true, &mut due);
        prop_assert!(due.is_empty());
    }

    /// Once history exists, adaptive windows always respect the clamp.
    #[test]
    fn adaptive_windows_respect_floor_and_ceiling(
        n in 4u64..64,
        period in 0.001f64..100_000.0,
        floor in 1.0f64..600.0,
        extra in 1.0f64..3600.0,
    ) {
        let cfg = PredictConfig {
            keep_alive_floor: floor,
            keep_alive_ceiling: floor + extra,
            ..PredictConfig::default()
        };
        let mut p = Predictor::new(cfg, 1);
        for i in 0..n {
            p.observe(0, i as f64 * period);
        }
        let w = p.keep_alive(0, 600.0);
        prop_assert!(w >= floor && w <= floor + extra, "window {} outside clamp", w);
    }
}
