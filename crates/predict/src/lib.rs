//! # optimus-predict — online arrival prediction for warm-start actuators
//!
//! Every scheduling policy in this workspace is reactive: keep-alive
//! windows are global constants and a transformation happens only after a
//! request has already arrived cold. Azure's production keep-alive policy
//! and the Transformer-based cold-start-mitigation line of work (see
//! PAPERS.md) both show that cheap per-function arrival prediction pays —
//! and Optimus's transformation mechanism is an unusually cheap actuator
//! for it, because speculatively converting an idle donor costs
//! milliseconds where a speculative cold start costs seconds of CPU and
//! gigabytes of memory.
//!
//! The crate provides three pieces:
//!
//! - [`InterArrivalHistogram`] — fixed-layout log-bucketed histogram of a
//!   function's inter-arrival gaps, answering Azure-style **head/tail
//!   cutoffs** at a configurable two-sided confidence. (With confidence
//!   `c`, the next arrival lands in `[last+head, last+tail]` with
//!   probability ≈ `c`, assuming gaps are i.i.d. from the observed
//!   distribution.)
//! - [`Predictor`] — the per-function state table with three queries:
//!   [`Predictor::forecast`] (the confidence band), [`Predictor::keep_alive`]
//!   (an adaptive window: `tail × margin`, clamped to floor/ceiling, or
//!   the caller's fixed default below `min_history` — **bit-exact**, so
//!   an empty-history predictor is indistinguishable from no predictor),
//!   and [`Predictor::due_speculations`] (which predicted bands are
//!   opening now, each fired at most once per observed arrival).
//! - [`SpecCandidate`] — the cost-model gate: a speculation is admitted
//!   only if it is cheaper than the cold start it replaces (hard budget,
//!   enforced at every aggressiveness — this bounds misprediction cost)
//!   *and* its confidence-weighted expected saving beats the
//!   miss-weighted expected waste.
//!
//! Everything is deterministic and `Serialize`-able: no wall clock, no
//! randomness, state fully reconstructible from JSON. The simulator
//! drives it with virtual time (`SimConfig::predict`) and asserts that
//! `predict: None` and [`PredictConfig::inert`] reproduce the reactive
//! path byte-for-byte; the live gateway drives it with real arrivals and
//! exports `optimus_predict_*` metrics.

mod config;
mod histogram;
mod predictor;

pub use config::{
    PredictConfig, SpeculationConfig, DEFAULT_CONFIDENCE, DEFAULT_KEEP_ALIVE_CEILING_S,
    DEFAULT_KEEP_ALIVE_FLOOR_S, DEFAULT_MIN_HISTORY, DEFAULT_SPEC_AGGRESSIVENESS,
    DEFAULT_SPEC_LEAD_S, DEFAULT_WINDOW_MARGIN,
};
pub use histogram::{InterArrivalHistogram, GAP_BUCKETS, GAP_MAX_S, GAP_MIN_S};
pub use predictor::{Forecast, PredictReport, Predictor, SpecCandidate};
