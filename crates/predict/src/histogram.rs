//! Log-bucketed inter-arrival histogram with quantile cutoffs.
//!
//! The bucket layout is fixed at compile time (geometric spacing over
//! [`GAP_MIN_S`], [`GAP_MAX_S`]) so two histograms that saw the same gaps
//! are bit-identical regardless of arrival order, and serialized state
//! round-trips exactly. Quantiles interpolate geometrically inside a
//! bucket and clamp to the observed min/max, so a histogram with a single
//! sample answers every quantile with that sample — the degenerate case
//! the adaptive keep-alive path leans on.

use serde::{Deserialize, Serialize};

/// Smallest representable inter-arrival gap (1 ms). Gaps below this —
/// including the zero gap of simultaneous arrivals — clamp up to it.
pub const GAP_MIN_S: f64 = 1e-3;
/// Largest representable gap (~11.6 days). Anything rarer is "never".
pub const GAP_MAX_S: f64 = 1e6;
/// Bucket count. 128 geometric buckets over [1 ms, 1e6 s] gives ~18%
/// resolution per bucket (1e9 dynamic range ^ (1/128)), comfortably finer
/// than the confidence bands consume.
pub const GAP_BUCKETS: usize = 128;

/// Histogram of inter-arrival gaps for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterArrivalHistogram {
    counts: Vec<u64>,
    total: u64,
    min_seen: f64,
    max_seen: f64,
}

impl Default for InterArrivalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl InterArrivalHistogram {
    pub fn new() -> Self {
        // Empty-histogram sentinels are finite (JSON-representable);
        // they are never consulted before the first observation.
        Self {
            counts: vec![0; GAP_BUCKETS],
            total: 0,
            min_seen: GAP_MAX_S,
            max_seen: GAP_MIN_S,
        }
    }

    fn bucket_of(gap: f64) -> usize {
        let g = gap.clamp(GAP_MIN_S, GAP_MAX_S);
        let span = (GAP_MAX_S / GAP_MIN_S).ln();
        let idx = ((g / GAP_MIN_S).ln() / span * GAP_BUCKETS as f64) as usize;
        idx.min(GAP_BUCKETS - 1)
    }

    /// Geometric lower bound of bucket `i`.
    fn bucket_low(i: usize) -> f64 {
        let span = (GAP_MAX_S / GAP_MIN_S).ln();
        GAP_MIN_S * (span * i as f64 / GAP_BUCKETS as f64).exp()
    }

    /// Record one inter-arrival gap.
    pub fn observe(&mut self, gap: f64) {
        let g = gap.clamp(GAP_MIN_S, GAP_MAX_S);
        self.counts[Self::bucket_of(g)] += 1;
        self.total += 1;
        if g < self.min_seen {
            self.min_seen = g;
        }
        if g > self.max_seen {
            self.max_seen = g;
        }
    }

    /// Number of gaps observed.
    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Nearest-rank quantile with geometric interpolation inside the
    /// bucket, clamped to the observed range. Returns `None` on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // The first and last order statistics are known exactly.
        if rank == 1 {
            return Some(self.min_seen);
        }
        if rank == self.total {
            return Some(self.max_seen);
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                // Interpolate geometrically: occupant `p` of `c` sits
                // `(p-1)/(c-1)` of the way through the bucket (bucket
                // midpoint when it has a single occupant), clamped to
                // the observed range.
                let p = rank - cum;
                let frac = if c == 1 {
                    0.5
                } else {
                    (p - 1) as f64 / (c - 1) as f64
                };
                let low = Self::bucket_low(i);
                let high = Self::bucket_low(i + 1);
                let v = low * (high / low).powf(frac);
                return Some(v.clamp(self.min_seen, self.max_seen));
            }
            cum += c;
        }
        Some(self.max_seen)
    }

    /// Azure-style head cutoff: the gap below which the next arrival is
    /// unlikely, at the given two-sided confidence. Pre-warm *at* the
    /// head, keep warm *until* the tail.
    pub fn head_cutoff(&self, confidence: f64) -> Option<f64> {
        self.quantile((1.0 - confidence) / 2.0)
    }

    /// Azure-style tail cutoff: the gap above which the next arrival is
    /// unlikely, at the given two-sided confidence.
    pub fn tail_cutoff(&self, confidence: f64) -> Option<f64> {
        self.quantile(1.0 - (1.0 - confidence) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = InterArrivalHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.head_cutoff(0.9), None);
        assert_eq!(h.tail_cutoff(0.9), None);
    }

    #[test]
    fn single_sample_answers_every_quantile_with_itself() {
        let mut h = InterArrivalHistogram::new();
        h.observe(42.0);
        for q in [0.0, 0.05, 0.5, 0.95, 1.0] {
            let v = h.quantile(q).unwrap();
            assert_eq!(v, 42.0, "q={q} gave {v}");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = InterArrivalHistogram::new();
        for i in 1..=1000u32 {
            h.observe(f64::from(i) * 0.1);
        }
        let head = h.head_cutoff(0.9).unwrap();
        let med = h.quantile(0.5).unwrap();
        let tail = h.tail_cutoff(0.9).unwrap();
        assert!(head <= med && med <= tail, "{head} {med} {tail}");
        assert!(head >= 0.1 && tail <= 100.0);
        // 5th/95th percentile of U(0.1, 100) land near 5 and 95.
        assert!((3.0..8.0).contains(&head), "head {head}");
        assert!((80.0..100.1).contains(&tail), "tail {tail}");
    }

    #[test]
    fn gaps_clamp_to_representable_range() {
        let mut h = InterArrivalHistogram::new();
        h.observe(0.0);
        h.observe(1e12);
        assert_eq!(h.quantile(0.0).unwrap(), GAP_MIN_S);
        assert_eq!(h.quantile(1.0).unwrap(), GAP_MAX_S);
    }

    #[test]
    fn observation_order_does_not_matter() {
        let gaps = [0.5, 3.0, 12.0, 0.9, 700.0, 0.5];
        let mut a = InterArrivalHistogram::new();
        let mut b = InterArrivalHistogram::new();
        for g in gaps {
            a.observe(g);
        }
        for g in gaps.iter().rev() {
            b.observe(*g);
        }
        assert_eq!(a, b);
    }
}
