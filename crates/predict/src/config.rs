//! Configuration for the prediction subsystem.
//!
//! `PredictConfig` is `Copy` (it rides inside the live gateway's `Copy`
//! config) and fully serializable (it rides inside `SimConfig`). The
//! **inert** configuration — adaptive keep-alive off, speculation off —
//! observes arrivals but actuates nothing, and the simulator asserts it
//! reproduces `predict: None` runs byte-for-byte.

use serde::{Deserialize, Serialize};

/// Default two-sided confidence for the head/tail cutoffs.
pub const DEFAULT_CONFIDENCE: f64 = 0.85;
/// Arrivals required before the predictor trusts a function's histogram;
/// below this every query falls back to the fixed-window baseline.
pub const DEFAULT_MIN_HISTORY: u64 = 4;
/// Default clamp floor for adaptive keep-alive windows (the classic
/// Pagurus idle threshold).
pub const DEFAULT_KEEP_ALIVE_FLOOR_S: f64 = 60.0;
/// Default clamp ceiling for adaptive keep-alive windows (1 h).
pub const DEFAULT_KEEP_ALIVE_CEILING_S: f64 = 3600.0;
/// Default safety margin applied to the tail cutoff when deriving a
/// keep-alive window: keep the container a bit past the predicted tail.
pub const DEFAULT_WINDOW_MARGIN: f64 = 1.25;
/// Default speculation lead: fire the transform this many seconds before
/// the predicted band opens, so the container is warm when it does.
pub const DEFAULT_SPEC_LEAD_S: f64 = 2.0;
/// Default speculation aggressiveness (1.0 = risk-neutral expected-value
/// gate; >1 speculates more, <1 less).
pub const DEFAULT_SPEC_AGGRESSIVENESS: f64 = 1.0;

/// Speculative-transformation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Seconds before the predicted band head at which to fire.
    pub lead: f64,
    /// Scales the perceived benefit in the expected-value gate. 1.0 is
    /// risk-neutral; larger values speculate on weaker forecasts. The
    /// hard budget gate (`spec_cost < cold_cost`) applies at *every*
    /// aggressiveness, which is what bounds misprediction cost.
    pub aggressiveness: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            lead: DEFAULT_SPEC_LEAD_S,
            aggressiveness: DEFAULT_SPEC_AGGRESSIVENESS,
        }
    }
}

/// Top-level prediction config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictConfig {
    /// Arrivals required before forecasts/windows leave the baseline.
    pub min_history: u64,
    /// Two-sided confidence for head/tail cutoffs, in (0, 1).
    pub confidence: f64,
    /// Replace the global keep-alive constant with per-function windows.
    pub adaptive_keep_alive: bool,
    /// Clamp floor for adaptive windows (seconds).
    pub keep_alive_floor: f64,
    /// Clamp ceiling for adaptive windows (seconds).
    pub keep_alive_ceiling: f64,
    /// Multiplier on the tail cutoff when deriving a window.
    pub window_margin: f64,
    /// Speculative transformation; `None` disables it.
    pub speculation: Option<SpeculationConfig>,
}

impl Default for PredictConfig {
    fn default() -> Self {
        Self {
            min_history: DEFAULT_MIN_HISTORY,
            confidence: DEFAULT_CONFIDENCE,
            adaptive_keep_alive: true,
            keep_alive_floor: DEFAULT_KEEP_ALIVE_FLOOR_S,
            keep_alive_ceiling: DEFAULT_KEEP_ALIVE_CEILING_S,
            window_margin: DEFAULT_WINDOW_MARGIN,
            speculation: Some(SpeculationConfig::default()),
        }
    }
}

impl PredictConfig {
    /// A config that observes arrivals but actuates nothing: keep-alive
    /// stays the caller's fixed window and no speculation is issued. The
    /// simulator asserts this reproduces `predict: None` byte-for-byte.
    pub fn inert() -> Self {
        Self {
            adaptive_keep_alive: false,
            speculation: None,
            ..Self::default()
        }
    }

    /// True when neither actuator is enabled.
    pub fn is_inert(&self) -> bool {
        !self.adaptive_keep_alive && self.speculation.is_none()
    }

    pub fn validate(&self) -> Result<(), String> {
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(format!(
                "confidence must be in (0,1), got {}",
                self.confidence
            ));
        }
        if self.keep_alive_floor.is_nan() || self.keep_alive_floor < 0.0 {
            return Err(format!(
                "keep_alive_floor must be >= 0, got {}",
                self.keep_alive_floor
            ));
        }
        if self.keep_alive_ceiling.is_nan() || self.keep_alive_ceiling < self.keep_alive_floor {
            return Err(format!(
                "keep_alive_ceiling {} < floor {}",
                self.keep_alive_ceiling, self.keep_alive_floor
            ));
        }
        if self.window_margin.is_nan() || self.window_margin < 1.0 {
            return Err(format!(
                "window_margin must be >= 1, got {}",
                self.window_margin
            ));
        }
        if let Some(s) = &self.speculation {
            if s.lead.is_nan() || s.lead < 0.0 {
                return Err(format!("speculation.lead must be >= 0, got {}", s.lead));
            }
            if s.aggressiveness.is_nan() || s.aggressiveness <= 0.0 {
                return Err(format!(
                    "speculation.aggressiveness must be > 0, got {}",
                    s.aggressiveness
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PredictConfig::default().validate().unwrap();
        PredictConfig::inert().validate().unwrap();
    }

    #[test]
    fn inert_means_no_actuators() {
        let c = PredictConfig::inert();
        assert!(c.is_inert());
        assert!(!c.adaptive_keep_alive);
        assert!(c.speculation.is_none());
        assert!(!PredictConfig::default().is_inert());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let base = PredictConfig::default();
        let c = PredictConfig {
            confidence: 1.0,
            ..base
        };
        assert!(c.validate().is_err());
        let c = PredictConfig {
            keep_alive_ceiling: base.keep_alive_floor - 1.0,
            ..base
        };
        assert!(c.validate().is_err());
        let c = PredictConfig {
            window_margin: 0.5,
            ..base
        };
        assert!(c.validate().is_err());
        let c = PredictConfig {
            speculation: Some(SpeculationConfig {
                lead: -1.0,
                aggressiveness: 1.0,
            }),
            ..base
        };
        assert!(c.validate().is_err());
    }
}
