//! The online per-function arrival predictor and its actuator queries.
//!
//! One [`Predictor`] serves a whole deployment: function indices are the
//! caller's dense ids (the simulator's interned `FunctionId::index()`,
//! the gateway's `ModelId::index()`). All state is plain counters and
//! histograms — `Serialize`-able, `PartialEq`-comparable, and updated by
//! pure arithmetic on the caller's clock, so simulation runs that feed
//! it virtual time stay byte-reproducible.

use serde::{Deserialize, Serialize};

use crate::config::PredictConfig;
use crate::histogram::InterArrivalHistogram;

/// Per-function predictor state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FuncState {
    hist: InterArrivalHistogram,
    /// Time of the most recent arrival.
    last: f64,
    /// Total arrivals observed.
    arrivals: u64,
    /// Head/tail cutoffs at the configured confidence, recomputed on
    /// each observation so the per-event queries below are O(1) instead
    /// of a bucket walk (0.0 until the histogram has a sample).
    head: f64,
    tail: f64,
    /// `arrivals` value at which a speculation was last issued; issuing
    /// at most once per observed arrival keeps the actuator from
    /// re-firing every tick inside one predicted band. Zero means
    /// "never" (zero observed arrivals never forecast anything, so the
    /// collision is harmless — and the sentinel survives JSON, unlike
    /// `u64::MAX`).
    spec_issued_at: u64,
}

impl FuncState {
    fn new() -> Self {
        Self {
            hist: InterArrivalHistogram::new(),
            last: 0.0,
            arrivals: 0,
            head: 0.0,
            tail: 0.0,
            spec_issued_at: 0,
        }
    }
}

/// A forecast window for a function's next arrival: the predictor expects
/// it in `[last + head, last + tail]` with probability `confidence`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forecast {
    /// Time of the function's most recent arrival.
    pub last: f64,
    /// Head cutoff (gap quantile at `(1-c)/2`).
    pub head: f64,
    /// Tail cutoff (gap quantile at `1-(1-c)/2`).
    pub tail: f64,
    /// The two-sided confidence the cutoffs were taken at.
    pub confidence: f64,
}

impl Forecast {
    /// Earliest predicted arrival time.
    pub fn band_open(&self) -> f64 {
        self.last + self.head
    }

    /// Latest predicted arrival time.
    pub fn band_close(&self) -> f64 {
        self.last + self.tail
    }
}

/// Inputs to the speculation cost gate, in seconds of latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecCandidate {
    /// What the speculative transform costs: repurpose overhead + plan
    /// latency + any chunk transport the plan fetches.
    pub spec_cost: f64,
    /// What a cold start of the target would cost: container init +
    /// model load + cold transport. This is the budget a misprediction
    /// must stay under.
    pub cold_cost: f64,
    /// Forecast confidence the candidate was derived from.
    pub confidence: f64,
}

impl SpecCandidate {
    /// The cost-model gate. Two conditions:
    ///
    /// 1. **Hard budget** — `spec_cost < cold_cost`: even a guaranteed
    ///    misprediction wastes less than one cold start. Enforced at
    ///    every aggressiveness; this is what bounds misprediction cost.
    /// 2. **Expected value** — `c · (cold - spec) · aggr ≥ (1-c) · spec`:
    ///    the confidence-weighted saving beats the miss-weighted waste,
    ///    with `aggressiveness` scaling the perceived benefit.
    pub fn admit(&self, aggressiveness: f64) -> bool {
        self.spec_cost < self.cold_cost
            && self.confidence * (self.cold_cost - self.spec_cost) * aggressiveness
                >= (1.0 - self.confidence) * self.spec_cost
    }

    /// Signed budget slack: `spec_cost - cold_cost`. Negative for every
    /// admitted candidate; reports track the max to machine-check it.
    pub fn over_budget(&self) -> f64 {
        self.spec_cost - self.cold_cost
    }
}

/// Aggregate outcome counters for one run, reported next to the
/// simulator's other subsystem reports (and mirrored as
/// `optimus_predict_*` metrics by the live gateway).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictReport {
    /// Arrivals fed to the predictor.
    pub observed_arrivals: u64,
    /// Speculative transforms actually executed.
    pub speculations: u64,
    /// Speculated containers that served a request while still warm.
    pub spec_hits: u64,
    /// Speculated containers evicted, repurposed, or killed unused.
    pub spec_mispredictions: u64,
    /// Speculation opportunities declined (gate refused, no donor, or
    /// target already warm).
    pub spec_skipped: u64,
    /// Total seconds spent executing speculative transforms.
    pub spec_cost_seconds: f64,
    /// Modeled cold-start seconds avoided by speculation hits.
    pub spec_saved_seconds: f64,
    /// Max over executed speculations of `spec_cost - cold_cost`.
    /// The cost-model gate keeps this < 0 (0.0 when nothing ran).
    pub max_spec_over_budget: f64,
    /// Sum of keep-alive windows applied at eviction decisions, for the
    /// mean applied window.
    pub window_seconds_sum: f64,
    /// Number of window applications summed above.
    pub window_samples: u64,
}

impl PredictReport {
    /// Mean keep-alive window applied across eviction decisions.
    pub fn mean_window(&self) -> f64 {
        if self.window_samples == 0 {
            0.0
        } else {
            self.window_seconds_sum / self.window_samples as f64
        }
    }

    /// Fraction of executed speculations that were hit by a request.
    pub fn hit_rate(&self) -> f64 {
        if self.speculations == 0 {
            0.0
        } else {
            self.spec_hits as f64 / self.speculations as f64
        }
    }
}

/// Online per-function arrival predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predictor {
    config: PredictConfig,
    funcs: Vec<FuncState>,
}

impl Predictor {
    /// `functions` pre-sizes the per-function table; indices past it
    /// grow the table on first observation.
    pub fn new(config: PredictConfig, functions: usize) -> Self {
        Self {
            config,
            funcs: (0..functions).map(|_| FuncState::new()).collect(),
        }
    }

    pub fn config(&self) -> &PredictConfig {
        &self.config
    }

    /// Number of per-function slots currently tracked. Equals the
    /// `functions` the predictor was created with unless observations
    /// grew the table past it — a restored snapshot is only compatible
    /// with a catalog of the same size.
    pub fn functions(&self) -> usize {
        self.funcs.len()
    }

    fn ensure(&mut self, f: usize) {
        if f >= self.funcs.len() {
            self.funcs.resize_with(f + 1, FuncState::new);
        }
    }

    /// Record an arrival for function `f` at time `now` (caller's clock,
    /// monotone per function).
    pub fn observe(&mut self, f: usize, now: f64) {
        self.ensure(f);
        let c = self.config.confidence;
        let st = &mut self.funcs[f];
        if st.arrivals > 0 {
            st.hist.observe((now - st.last).max(0.0));
            st.head = st.hist.head_cutoff(c).expect("non-empty histogram");
            st.tail = st.hist.tail_cutoff(c).expect("non-empty histogram");
        }
        st.last = now;
        st.arrivals += 1;
    }

    /// Arrivals observed for `f`.
    pub fn arrivals(&self, f: usize) -> u64 {
        self.funcs.get(f).map_or(0, |s| s.arrivals)
    }

    /// Forecast the next arrival of `f`, or `None` below `min_history`
    /// (callers then stay on their reactive baseline).
    pub fn forecast(&self, f: usize) -> Option<Forecast> {
        let st = self.funcs.get(f)?;
        if st.arrivals < self.config.min_history || st.hist.is_empty() {
            return None;
        }
        Some(Forecast {
            last: st.last,
            head: st.head,
            tail: st.tail,
            confidence: self.config.confidence,
        })
    }

    /// The keep-alive window to apply to `f`'s idle containers.
    ///
    /// Returns `default` **exactly** (same bits, no arithmetic) when
    /// adaptive keep-alive is off or the function is below `min_history`
    /// — the empty-history fallback the property tests pin down.
    pub fn keep_alive(&self, f: usize, default: f64) -> f64 {
        if !self.config.adaptive_keep_alive {
            return default;
        }
        let Some(fc) = self.forecast(f) else {
            return default;
        };
        (fc.tail * self.config.window_margin)
            .clamp(self.config.keep_alive_floor, self.config.keep_alive_ceiling)
    }

    /// Collect functions whose predicted arrival band is due at `now`:
    /// `band_open - lead <= now <= band_close`, at most once per observed
    /// arrival. `accept` filters candidates (placement, warm state);
    /// only accepted functions are marked issued, so another node can
    /// still claim a function this caller rejected. Accepted indices are
    /// appended to `out` in ascending order (deterministic).
    pub fn due_speculations(
        &mut self,
        now: f64,
        mut accept: impl FnMut(usize) -> bool,
        out: &mut Vec<usize>,
    ) {
        if self.config.speculation.is_none() {
            return;
        }
        let lead = self.config.speculation.as_ref().map_or(0.0, |s| s.lead);
        let min_history = self.config.min_history;
        for f in 0..self.funcs.len() {
            let st = &self.funcs[f];
            if st.arrivals < min_history || st.hist.is_empty() || st.spec_issued_at == st.arrivals {
                continue;
            }
            let open = st.last + st.head;
            let close = st.last + st.tail;
            if now + lead >= open && now <= close && accept(f) {
                self.funcs[f].spec_issued_at = self.funcs[f].arrivals;
                out.push(f);
            }
        }
    }

    /// Number of functions whose forecast band intersects
    /// `[now, now + horizon]` — the predictive demand signal an
    /// autoscaler can add to observed slot pressure.
    pub fn predicted_arrivals(&self, now: f64, horizon: f64) -> usize {
        self.funcs
            .iter()
            .filter(|st| {
                st.arrivals >= self.config.min_history
                    && !st.hist.is_empty()
                    && st.last + st.head <= now + horizon
                    && now <= st.last + st.tail
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpeculationConfig;

    fn steady(predictor: &mut Predictor, f: usize, period: f64, n: u64) {
        for i in 0..n {
            predictor.observe(f, i as f64 * period);
        }
    }

    #[test]
    fn below_min_history_no_forecast_and_baseline_window() {
        let cfg = PredictConfig::default();
        let mut p = Predictor::new(cfg, 2);
        steady(&mut p, 0, 10.0, cfg.min_history - 1);
        assert!(p.forecast(0).is_none());
        assert_eq!(p.keep_alive(0, 600.0), 600.0);
        assert_eq!(p.keep_alive(1, 123.456), 123.456); // never seen at all
    }

    #[test]
    fn steady_arrivals_forecast_the_period() {
        let cfg = PredictConfig::default();
        let mut p = Predictor::new(cfg, 1);
        steady(&mut p, 0, 30.0, 50);
        let fc = p.forecast(0).unwrap();
        // All gaps are 30 s, so head == tail == 30 (within bucket width).
        assert!((fc.head - 30.0).abs() < 1e-9, "head {}", fc.head);
        assert!((fc.tail - 30.0).abs() < 1e-9, "tail {}", fc.tail);
        assert_eq!(fc.band_open(), fc.last + fc.head);
        // Window = tail * margin, clamped to the floor (30*1.25 < 60).
        assert_eq!(p.keep_alive(0, 600.0), cfg.keep_alive_floor);
    }

    #[test]
    fn window_clamps_to_ceiling() {
        let cfg = PredictConfig {
            keep_alive_ceiling: 100.0,
            ..PredictConfig::default()
        };
        let mut p = Predictor::new(cfg, 1);
        steady(&mut p, 0, 500.0, 20);
        assert_eq!(p.keep_alive(0, 600.0), 100.0);
    }

    #[test]
    fn due_speculations_fire_once_per_arrival() {
        let cfg = PredictConfig {
            speculation: Some(SpeculationConfig {
                lead: 2.0,
                aggressiveness: 1.0,
            }),
            ..PredictConfig::default()
        };
        let mut p = Predictor::new(cfg, 1);
        steady(&mut p, 0, 30.0, 20);
        // Last arrival at t=570; band opens ~600.
        let mut due = Vec::new();
        p.due_speculations(590.0, |_| true, &mut due);
        assert!(due.is_empty(), "too early: {due:?}");
        p.due_speculations(598.5, |_| true, &mut due);
        assert_eq!(due, vec![0]);
        due.clear();
        p.due_speculations(599.0, |_| true, &mut due);
        assert!(due.is_empty(), "must not re-fire: {due:?}");
        // A new arrival re-arms it.
        p.observe(0, 600.0);
        p.due_speculations(628.5, |_| true, &mut due);
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn rejected_candidates_stay_armed() {
        let mut p = Predictor::new(PredictConfig::default(), 1);
        steady(&mut p, 0, 30.0, 20);
        let mut due = Vec::new();
        p.due_speculations(598.5, |_| false, &mut due);
        assert!(due.is_empty());
        p.due_speculations(598.5, |_| true, &mut due);
        assert_eq!(due, vec![0]);
    }

    #[test]
    fn speculation_disabled_yields_nothing() {
        let cfg = PredictConfig {
            speculation: None,
            ..PredictConfig::default()
        };
        let mut p = Predictor::new(cfg, 1);
        steady(&mut p, 0, 30.0, 20);
        let mut due = Vec::new();
        p.due_speculations(598.5, |_| true, &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn gate_admits_by_expected_value_and_enforces_budget() {
        // Cheap transform vs expensive cold start: admitted.
        let good = SpecCandidate {
            spec_cost: 0.2,
            cold_cost: 3.0,
            confidence: 0.85,
        };
        assert!(good.admit(1.0));
        assert!(good.over_budget() < 0.0);
        // Transform costlier than the cold start: refused at any
        // aggressiveness (hard budget).
        let bad = SpecCandidate {
            spec_cost: 4.0,
            cold_cost: 3.0,
            confidence: 0.99,
        };
        assert!(!bad.admit(1.0));
        assert!(!bad.admit(1e9));
        // Marginal candidate: low confidence refuses, high admits.
        let marginal = SpecCandidate {
            spec_cost: 1.0,
            cold_cost: 1.5,
            confidence: 0.5,
        };
        assert!(!marginal.admit(1.0));
        let confident = SpecCandidate {
            confidence: 0.9,
            ..marginal
        };
        assert!(confident.admit(1.0));
    }

    #[test]
    fn predicted_arrivals_counts_open_bands() {
        let mut p = Predictor::new(PredictConfig::default(), 3);
        steady(&mut p, 0, 30.0, 20); // last at 570, band ~[600, 600]
        steady(&mut p, 1, 500.0, 20); // last at 9500, band ~[10000, 10000]
        assert_eq!(p.predicted_arrivals(595.0, 10.0), 1);
        assert_eq!(p.predicted_arrivals(9990.0, 20.0), 1);
        assert_eq!(p.predicted_arrivals(5000.0, 10.0), 0);
        // Function 2 has no history: never predicted.
        assert_eq!(p.predicted_arrivals(0.0, 1e9), 2);
    }

    #[test]
    fn predictor_state_roundtrips_through_json() {
        let mut p = Predictor::new(PredictConfig::default(), 3);
        steady(&mut p, 0, 7.5, 12);
        steady(&mut p, 2, 90.0, 6);
        let js = serde_json::to_string(&p).unwrap();
        let back: Predictor = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
        assert_eq!(serde_json::to_string(&back).unwrap(), js);
    }
}
