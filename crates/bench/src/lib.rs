//! # optimus-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run --release -p optimus-bench --bin exp_<id>`), plus Criterion
//! micro-benchmarks of the hot paths (`cargo bench`).
//!
//! | Binary       | Reproduces |
//! |--------------|------------|
//! | `exp_fig2`   | Figure 2 — request processing time & breakdown        |
//! | `exp_fig3`   | Figure 3 — model loading step latencies (100 models)  |
//! | `exp_fig4`   | Figure 4 — per-operation loading latency in ResNet50  |
//! | `exp_fig5`   | Figure 5 — strawman: weight swap & CONV scaling matrix|
//! | `exp_fig8`   | Figure 8 — meta-operator execution times              |
//! | `exp_fig11`  | Figure 11 — 21×21 transformation-latency matrix       |
//! | `exp_fig12`  | Figure 12 — 500-case transformation vs loading        |
//! | `exp_fig13`  | Figure 13 — average service time, 4 systems × 4 loads |
//! | `exp_fig14`  | Figure 14 — cold/transform/warm start percentages     |
//! | `exp_fig15`  | Figure 15 — meta-operator latency proportions         |
//! | `exp_table1` | Table 1 — planning & execution latency, 2 planners    |
//! | `exp_fig16`  | Figure 16 — GPU-server average service time           |
//!
//! Every experiment is seeded and deterministic; each prints a
//! paper-style table to stdout and appends machine-readable JSON to
//! `results/<exp>.json` when a `results/` directory exists.

pub mod sweep;

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository, Planner};
use optimus_model::ModelGraph;
use optimus_profile::{CostModel, CostProvider};
use optimus_sim::{Platform, Policy, SimConfig};
use optimus_workload::{AzureTraceGenerator, PoissonGenerator, Trace};

/// The 21 representative models of Figure 11: 16 CNNs across six families
/// plus 5 BERT variants.
pub fn figure11_models() -> Vec<ModelGraph> {
    use optimus_zoo::{bert, BertConfig, BertSize, BertTask};
    vec![
        optimus_zoo::vgg::vgg11(),
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::resnet::resnet34(),
        optimus_zoo::resnet::resnet50(),
        optimus_zoo::resnet::resnet101(),
        optimus_zoo::resnet::resnet152(),
        optimus_zoo::densenet::densenet121(),
        optimus_zoo::densenet::densenet169(),
        optimus_zoo::densenet::densenet201(),
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        optimus_zoo::mobilenet::mobilenet_v2(1.0, 0),
        optimus_zoo::mobilenet::mobilenet_v1(0.5, 0),
        optimus_zoo::xception::xception(),
        optimus_zoo::inception::inception_v1(),
        bert::bert(BertConfig::new(BertSize::Tiny)),
        bert::bert(BertConfig::new(BertSize::Mini)),
        bert::bert(BertConfig::new(BertSize::Small)),
        bert::bert(BertConfig::new(BertSize::Base)),
        bert::bert(BertConfig::new(BertSize::Base).task(BertTask::QuestionAnswering)),
    ]
}

/// The function population for the end-to-end runs (Figures 13/14/16):
/// a CNN mix across all six families (several widths and weight variants)
/// plus the ten BERT variants — 37 functions on 2 nodes × 12 slots, the
/// paper's "not enough warm containers for every model type" regime.
pub fn figure13_models() -> Vec<ModelGraph> {
    let mut models = Vec::new();
    for depth in [11usize, 16, 19] {
        models.push(optimus_zoo::vgg::vgg_scaled(depth, 1.0, 0));
        models.push(optimus_zoo::vgg::vgg_scaled(depth, 0.5, 0));
    }
    models.push(optimus_zoo::vgg::vgg_scaled(16, 1.0, 1));
    for depth in [18usize, 34, 50, 101] {
        models.push(optimus_zoo::resnet::resnet_scaled(depth, 1.0, 0));
        models.push(optimus_zoo::resnet::resnet_scaled(depth, 0.5, 0));
    }
    models.push(optimus_zoo::resnet::resnet_scaled(50, 1.0, 1));
    for depth in [121usize, 169] {
        models.push(optimus_zoo::densenet::densenet_variant(depth, 0));
    }
    models.push(optimus_zoo::densenet::densenet_variant(121, 1));
    for alpha in [0.5, 1.0] {
        models.push(optimus_zoo::mobilenet::mobilenet_v1(alpha, 0));
        models.push(optimus_zoo::mobilenet::mobilenet_v2(alpha, 0));
    }
    models.push(optimus_zoo::xception::xception());
    models.push(optimus_zoo::xception::xception_variant(1));
    models.push(optimus_zoo::inception::inception_v1());
    models.push(optimus_zoo::inception::inception_variant(1));
    models.extend(optimus_zoo::bert::bert_zoo());
    models
}

/// Register models into a repository with the group planner and the given
/// environment's cost model. The offline pairwise planning sweep fans out
/// across a worker pool sized to the machine
/// ([`ModelRepository::register_all`]); the plan cache is identical to
/// sequential registration.
pub fn build_repo(
    models: Vec<ModelGraph>,
    env: optimus_profile::Environment,
) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::new(env);
    repo.register_all(models, &cost);
    Arc::new(repo)
}

/// The four workloads of §8.1 over a function set: three Poisson
/// intensities and the Azure-style trace.
pub fn workloads(functions: &[String], duration: f64, seed: u64) -> Vec<(String, Trace)> {
    use optimus_workload::rates;
    vec![
        (
            "Poisson λ=10⁻³·⁵".to_string(),
            PoissonGenerator::new(rates::INFREQUENT, duration, seed).generate(functions),
        ),
        (
            "Poisson λ=10⁻²·⁵".to_string(),
            PoissonGenerator::new(rates::MIDDLE, duration, seed + 1).generate(functions),
        ),
        (
            "Poisson λ=10⁻²".to_string(),
            PoissonGenerator::new(rates::FREQUENT, duration, seed + 2).generate(functions),
        ),
        (
            "Azure".to_string(),
            AzureTraceGenerator::new(duration, seed + 3).generate(functions),
        ),
    ]
}

/// Run all four systems on a trace; returns `(policy, report)` pairs.
pub fn run_all_policies(
    config: &SimConfig,
    repo: &Arc<ModelRepository>,
    trace: &Trace,
) -> Vec<(Policy, optimus_sim::SimReport)> {
    Policy::ALL
        .iter()
        .map(|&policy| {
            let platform = Platform::new(config.clone(), policy, repo.clone());
            (policy, platform.run(trace))
        })
        .collect()
}

/// Transformation latency between two already-built models under the
/// group planner + safeguard (the Figure 11 cell value).
pub fn transform_latency(src: &ModelGraph, dst: &ModelGraph, cost: &CostModel) -> f64 {
    if src.family().is_transformer() != dst.family().is_transformer() {
        // §8.2: cross-paradigm transformation always trips the safeguard.
        return cost.model_load_cost(dst);
    }
    let plan = GroupPlanner.plan(src, dst, cost);
    plan.cost.total().min(cost.model_load_cost(dst))
}

/// Print an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(0);
            s.push_str(&format!("{:<w$}  ", c, w = pad));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Append a JSON results blob to `results/<name>.json` if `results/`
/// exists (next to the workspace root); silently skip otherwise.
pub fn save_results(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if dir.is_dir() {
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("results written to {}", path.display());
        }
    }
}

/// Format seconds with 3 decimals.
pub fn fmt_s(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a percentage with 1 decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_set_has_21_models() {
        let models = figure11_models();
        assert_eq!(models.len(), 21);
        let cnn = models
            .iter()
            .filter(|m| !m.family().is_transformer())
            .count();
        assert_eq!(cnn, 16);
    }

    #[test]
    fn figure13_population_is_pressured() {
        let models = figure13_models();
        assert!(models.len() >= 35, "{} functions", models.len());
        let names: std::collections::HashSet<_> =
            models.iter().map(|m| m.name().to_string()).collect();
        assert_eq!(names.len(), models.len(), "duplicate model names");
    }

    #[test]
    fn workload_set_is_complete() {
        let fns = vec!["a".to_string(), "b".to_string()];
        let w = workloads(&fns, 10_000.0, 1);
        assert_eq!(w.len(), 4);
        assert!(w
            .iter()
            .all(|(_, t)| !t.is_empty() || t.duration == 10_000.0));
    }

    #[test]
    fn transform_latency_respects_safeguard() {
        let cost = CostModel::default();
        let cnn = optimus_zoo::resnet::resnet18();
        let bert =
            optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny));
        let v = transform_latency(&cnn, &bert, &cost);
        assert_eq!(v, cost.model_load_cost(&bert));
    }
}
