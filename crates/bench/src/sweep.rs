//! Deterministic parallel sweep runner.
//!
//! Experiment binaries sweep a grid of independent cells — workload ×
//! policy, bandwidth × policy, case × planner. Each cell is pure (builds
//! its own `Platform`, runs a seeded trace) so the grid parallelizes
//! trivially; the only thing that must *not* change with the thread count
//! is the output. [`run_grid`] guarantees that: results come back in
//! input order regardless of which worker ran which cell and in what
//! interleaving, so the assembled JSON is byte-identical to a sequential
//! run at any `--threads` value.
//!
//! Work distribution is a shared atomic cursor (no channels, no work
//! items larger than an index), and workers are scoped threads borrowing
//! the cell slice — nothing is cloned.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `run` over every cell of `cells` on `threads` workers, returning
/// results in input order (deterministic for any thread count).
///
/// `threads <= 1` runs sequentially on the calling thread. Worker panics
/// propagate to the caller.
pub fn run_grid<C, R, F>(cells: &[C], threads: usize, run: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    if threads <= 1 || cells.len() <= 1 {
        return cells.iter().map(&run).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(cells.len());
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let result = run(&cells[i]);
                *slots[i].lock().expect("slot lock poisoned") = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every cell ran")
        })
        .collect()
}

/// Parse the shared `--threads <n>` experiment flag (default 1, i.e.
/// sequential; `0` means one worker per available CPU core).
pub fn threads_arg(args: &[String]) -> usize {
    let n: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let cells: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8, 200] {
            let out = run_grid(&cells, threads, |&c| c * c);
            assert_eq!(out, cells.iter().map(|c| c * c).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_grids() {
        let none: Vec<u32> = vec![];
        assert!(run_grid(&none, 8, |&c| c).is_empty());
        assert_eq!(run_grid(&[7u32], 8, |&c| c + 1), vec![8]);
    }

    #[test]
    fn workers_share_the_grid_without_skew() {
        // Cells of very different costs still come back in order.
        let cells: Vec<u64> = (0..32)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let seq: Vec<u64> = cells.iter().map(|&c| (0..c).sum()).collect();
        let par = run_grid(&cells, 4, |&c| (0..c).sum::<u64>());
        assert_eq!(par, seq);
    }

    #[test]
    fn threads_arg_parses() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_arg(&args(&["exp", "--threads", "4"])), 4);
        assert_eq!(threads_arg(&args(&["exp"])), 1);
        assert_eq!(threads_arg(&args(&["exp", "--threads", "bogus"])), 1);
        assert!(threads_arg(&args(&["exp", "--threads", "0"])) >= 1);
    }
}
