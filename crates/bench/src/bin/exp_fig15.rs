//! Figure 15 — latency proportion of each meta-operator for three
//! inter-function model transformation cases.

use optimus_bench::{fmt_pct, fmt_s, print_table, save_results};
use optimus_core::{GroupPlanner, Planner};
use optimus_profile::CostModel;

fn main() {
    let cost = CostModel::default();
    let cases = [
        (optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()),
        (
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::resnet::resnet101(),
        ),
        (
            optimus_zoo::resnet::resnet101(),
            optimus_zoo::resnet::resnet50(),
        ),
    ];
    println!("Figure 15: meta-operator latency proportions per transformation case\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (src, dst) in &cases {
        let plan = GroupPlanner.plan(src, dst, &cost);
        let c = plan.cost;
        let total = c.total();
        rows.push(vec![
            format!("{} → {}", src.name(), dst.name()),
            fmt_s(total),
            format!("{} ({})", fmt_pct(c.replace / total), c.n_replace),
            format!("{} ({})", fmt_pct(c.reshape / total), c.n_reshape),
            format!("{} ({})", fmt_pct(c.reduce / total), c.n_reduce),
            format!("{} ({})", fmt_pct(c.add / total), c.n_add),
            format!("{} ({})", fmt_pct(c.edge / total), c.n_edge),
        ]);
        json.push(serde_json::json!({
            "case": format!("{} -> {}", src.name(), dst.name()),
            "total_s": total,
            "replace_s": c.replace, "reshape_s": c.reshape,
            "reduce_s": c.reduce, "add_s": c.add, "edge_s": c.edge,
            "counts": [c.n_replace, c.n_reshape, c.n_reduce, c.n_add, c.n_edge],
        }));
    }
    print_table(
        &[
            "Case",
            "Total (s)",
            "Replace (#)",
            "Reshape (#)",
            "Reduce (#)",
            "Add (#)",
            "Edge (#)",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: ResNet50→ResNet101 is Add-heavy (more CONVs in \
         the destination); ResNet101→ResNet50 reuses CONVs and needs no Add."
    );
    save_results("exp_fig15", &serde_json::json!({ "cases": json }));
}
