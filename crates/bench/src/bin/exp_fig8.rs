//! Figure 8 — execution time of varying meta-operators, profiled over the
//! ResNet50/ResNet101 operation population (§4.4 Module 1).

use optimus_bench::{print_table, save_results};
use optimus_profile::{CostModel, Profiler};

fn main() {
    let cost = CostModel::default();
    let r50 = optimus_zoo::resnet::resnet50();
    let r101 = optimus_zoo::resnet::resnet101();
    let profiles = Profiler::new(&cost).profile_meta_ops(&[&r50, &r101]);

    println!("Figure 8: mean meta-operator execution time by operation kind (ms)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (kind, p) in &profiles {
        rows.push(vec![
            kind.to_string(),
            format!("{:.3}", 1e3 * p.replace),
            format!("{:.3}", 1e3 * p.reshape),
            format!("{:.3}", 1e3 * p.reduce),
            format!("{:.3}", 1e3 * p.add),
            format!("{:.4}", 1e3 * p.edge),
        ]);
        json.push(serde_json::json!({
            "kind": kind.to_string(),
            "replace_ms": 1e3 * p.replace,
            "reshape_ms": 1e3 * p.reshape,
            "reduce_ms": 1e3 * p.reduce,
            "add_ms": 1e3 * p.add,
            "edge_ms": 1e3 * p.edge,
        }));
    }
    print_table(
        &["Operation", "Replace", "Reshape", "Reduce", "Add", "Edge"],
        &rows,
    );
    println!(
        "\nPaper reference: Replace scales with destination weights; Add for \
         CONV/dense is the most expensive; Reduce is constant; Edge is \
         negligible."
    );
    save_results("exp_fig8", &serde_json::json!({ "kinds": json }));
}
