//! Ablation — idle-threshold (§4.2) and keep-alive sweeps for the Optimus
//! policy: how donor availability trades off against warm-container
//! retention.

use optimus_bench::{build_repo, figure13_models, fmt_s, print_table, save_results};
use optimus_profile::Environment;
use optimus_sim::{Platform, Policy, SimConfig, StartKind};
use optimus_workload::PoissonGenerator;

fn main() {
    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!("registering {} models...", names.len());
    let repo = build_repo(models, Environment::Cpu);
    let trace =
        PoissonGenerator::new(optimus_workload::rates::MIDDLE, 86_400.0, 7).generate(&names);

    println!(
        "Ablation: idle threshold sweep (keep-alive fixed at 600 s), \
         Poisson λ=10⁻²·⁵\n"
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for idle in [15.0, 30.0, 60.0, 120.0, 300.0] {
        let config = SimConfig {
            idle_threshold: idle,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        let frac = report.start_fractions();
        let xform = frac.get(&StartKind::Transform).copied().unwrap_or(0.0);
        rows.push(vec![
            format!("{idle:.0} s"),
            fmt_s(report.avg_service_time()),
            format!("{:.1}%", 100.0 * xform),
        ]);
        json.push(serde_json::json!({
            "idle_threshold": idle,
            "avg_service_time": report.avg_service_time(),
            "transform_fraction": xform,
        }));
    }
    print_table(&["Idle threshold", "Avg service (s)", "Transforms"], &rows);

    println!("\nKeep-alive sweep (idle threshold fixed at 60 s):\n");
    let mut rows = Vec::new();
    let mut json2 = Vec::new();
    for keep in [120.0, 300.0, 600.0, 1200.0, 2400.0] {
        let config = SimConfig {
            keep_alive: keep,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        let frac = report.start_fractions();
        let warm = frac.get(&StartKind::Warm).copied().unwrap_or(0.0);
        rows.push(vec![
            format!("{keep:.0} s"),
            fmt_s(report.avg_service_time()),
            format!("{:.1}%", 100.0 * warm),
        ]);
        json2.push(serde_json::json!({
            "keep_alive": keep,
            "avg_service_time": report.avg_service_time(),
            "warm_fraction": warm,
        }));
    }
    print_table(&["Keep-alive", "Avg service (s)", "Warm starts"], &rows);
    save_results(
        "exp_ablation_thresholds",
        &serde_json::json!({ "idle_sweep": json, "keep_alive_sweep": json2 }),
    );
}
