//! Elastic scale-out — warming a flash crowd via P2P chunk multicast.
//!
//! Two parts, both machine-checked:
//!
//! 1. **Planner sweep** — for every joiner count `N` in 1..=64, the
//!    binomial multicast tree warms all joiners in at most
//!    `⌈log2(N+1)⌉` rounds and never takes longer than `N` serial
//!    origin fetches (the remote-only baseline it replaces).
//! 2. **Flash-crowd simulation** — a sustained burst on one hot function
//!    drives the `optimus-fleet` autoscaler past its pressure threshold;
//!    joining nodes warm either peer-to-peer (multicast) or from the
//!    origin (remote-only), against a static fleet that cannot grow.
//!    Checked: byte conservation (multicast moves exactly the payload
//!    remote-only would fetch, just over different edges), multicast
//!    time-to-all-warm ≤ remote-only at every scale event, the
//!    fleet-off report serializes without a `fleet` key (static-path
//!    identity), and the whole sweep is byte-identical at any
//!    `--threads` value and across reruns.
//!
//! Optional args: `--small` (CI configuration), `--threads <n>`,
//! `--duration <seconds>`, `--seed <n>`.

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{build_repo, figure13_models, fmt_s, print_table, save_results};
use optimus_fleet::{plan_multicast, remote_only_seconds, FleetConfig};
use optimus_model::ModelGraph;
use optimus_profile::Environment;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig, StoreConfig};
use optimus_workload::{Invocation, PoissonGenerator, Trace};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Multicast,
    RemoteOnly,
    Off,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Multicast, Mode::RemoteOnly, Mode::Off];

    fn name(self) -> &'static str {
        match self {
            Mode::Multicast => "fleet+multicast",
            Mode::RemoteOnly => "fleet+remote-only",
            Mode::Off => "static",
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let threads = threads_arg(&args);
    let seed: u64 = arg(&args, "--seed", 42);
    let (catalog_size, default_duration, gap, max_nodes): (usize, f64, f64, usize) = if small {
        (6, 600.0, 0.05, 6)
    } else {
        (12, 1_800.0, 0.02, 10)
    };
    let duration: f64 = arg(&args, "--duration", default_duration);

    // ── Part 1: planner sweep — O(log N) rounds, never slower than ──────
    //    linear origin fetches, at every joiner count.
    let sc = StoreConfig::default();
    let bytes: u64 = 100 * 1024 * 1024;
    let mut planner_rows = Vec::new();
    let mut planner_json = Vec::new();
    for n in 1..=64usize {
        let joiners: Vec<usize> = (1..=n).collect();
        let plan = plan_multicast(&[0], &joiners, bytes, sc.interconnect, sc.remote);
        let bound = (n + 1).next_power_of_two().trailing_zeros() as usize;
        assert!(
            plan.rounds() <= bound,
            "{n} joiners took {} rounds, bound ceil(log2({n}+1)) = {bound}",
            plan.rounds()
        );
        let linear = remote_only_seconds(n, bytes, sc.remote);
        assert!(
            plan.total_seconds <= linear + 1e-9,
            "multicast {:.3}s exceeds remote-only {linear:.3}s at N={n}",
            plan.total_seconds
        );
        if n.is_power_of_two() {
            planner_rows.push(vec![
                n.to_string(),
                plan.rounds().to_string(),
                fmt_s(plan.total_seconds),
                fmt_s(linear),
                format!("{:.1}x", linear / plan.total_seconds),
            ]);
        }
        planner_json.push(serde_json::json!({
            "joiners": n,
            "rounds": plan.rounds(),
            "multicast_s": plan.total_seconds,
            "remote_only_s": linear,
        }));
    }
    println!("Multicast planner: warming N joiners of a 100 MiB model from one seed\n");
    print_table(
        &["Joiners", "Rounds", "Multicast", "Remote-only", "Speedup"],
        &planner_rows,
    );
    println!("\nplanner: OK (rounds <= ceil(log2(N+1)) and multicast <= remote-only, N = 1..=64)");

    // ── Part 2: flash-crowd simulation ──────────────────────────────────
    let models: Vec<ModelGraph> = figure13_models().into_iter().take(catalog_size).collect();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!(
        "\nregistering {} models and computing plan cache...",
        names.len()
    );
    let repo = build_repo(models, Environment::Cpu);
    // Light background traffic over the catalog keeps every function
    // alive; the flash crowd hammers the first one hard enough to hold
    // the initial fleet above the pressure threshold.
    let hot = names[0].clone();
    let mut invocations = PoissonGenerator::new(0.002, duration, seed)
        .generate(&names)
        .invocations;
    let burst = (duration / (2.0 * gap)) as usize;
    invocations.extend((0..burst).map(|i| Invocation {
        time: i as f64 * gap,
        function: hot.clone(),
    }));
    // `Trace::new` re-sorts the merged arrivals by time.
    let trace = Trace::new(duration, invocations);

    let step = max_nodes - 2;
    let fleet_for = |mode: Mode| -> Option<FleetConfig> {
        match mode {
            Mode::Off => None,
            _ => Some(FleetConfig {
                max_nodes,
                scale_out_pressure: 0.8,
                sustain_s: 2.0,
                // One decisive scale-out: keeps the scale pattern (and so
                // the byte-conservation comparison) identical across
                // warming modes whose readiness times differ.
                cooldown_s: 1.0e9,
                step,
                scale_in_idle_s: 300.0,
                provision_s: 2.0,
                multicast: mode == Mode::Multicast,
            }),
        }
    };
    let base = SimConfig {
        nodes: 2,
        capacity_per_node: 4,
        placement: PlacementStrategy::Hash,
        store: Some(sc),
        ..SimConfig::default()
    };
    println!(
        "\nFlash crowd: {} requests on {} functions ({} burst on {hot}), 2 -> {max_nodes} nodes, seed {seed}\n",
        trace.len(),
        names.len(),
        burst
    );

    let run_sweep = |threads: usize| {
        run_grid(&Mode::ALL, threads, |&mode| {
            let config = SimConfig {
                fleet: fleet_for(mode),
                ..base.clone()
            };
            Platform::new(config, Policy::Optimus, repo.clone()).run(&trace)
        })
    };
    let reports = run_sweep(threads);

    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for (mode, report) in Mode::ALL.iter().zip(&reports) {
        let fl = report.fleet;
        rows.push(vec![
            mode.name().to_string(),
            fmt_s(report.avg_service_time()),
            fmt_s(report.percentile_service_time(99.0)),
            fl.map_or("-".into(), |f| f.peak_nodes.to_string()),
            fl.map_or("-".into(), |f| f.multicast_rounds.to_string()),
            fl.map_or("-".into(), |f| {
                format!("{:.0}", f.multicast_bytes as f64 / (1024.0 * 1024.0))
            }),
            fl.map_or("-".into(), |f| {
                format!("{:.0}", f.remote_warm_bytes as f64 / (1024.0 * 1024.0))
            }),
            fl.map_or("-".into(), |f| fmt_s(f.time_to_all_warm)),
        ]);
        sweep_json.push(serde_json::json!({
            "mode": mode.name(),
            "avg_service_time": report.avg_service_time(),
            "p99": report.percentile_service_time(99.0),
            "requests": report.len(),
            "fleet": fl,
        }));
    }
    print_table(
        &[
            "Mode",
            "Avg",
            "p99",
            "Peak nodes",
            "Rounds",
            "P2P MiB",
            "Origin MiB",
            "All-warm",
        ],
        &rows,
    );

    // ── Machine checks ──────────────────────────────────────────────────
    let mc = reports[0].fleet.expect("multicast fleet report");
    let ro = reports[1].fleet.expect("remote-only fleet report");
    assert!(mc.scale_outs >= 1, "the burst must trigger a scale-out");
    assert_eq!(
        (mc.scale_outs, mc.nodes_added),
        (ro.scale_outs, ro.nodes_added),
        "identical scale pattern across warming modes"
    );
    assert_eq!(
        mc.multicast_bytes + mc.remote_warm_bytes,
        ro.remote_warm_bytes,
        "byte conservation: multicast changes the bytes' source, not their amount"
    );
    assert!(
        mc.multicast_bytes > 0 && mc.remote_warm_bytes == 0,
        "live seeds exist: every warm byte travels peer-to-peer"
    );
    let joiners_per_wave = step as u64;
    let round_bound = (joiners_per_wave + 1).next_power_of_two().trailing_zeros() as u64;
    assert!(
        mc.multicast_rounds <= mc.multicast_waves * round_bound,
        "rounds {} exceed O(log N) bound {} over {} waves",
        mc.multicast_rounds,
        mc.multicast_waves * round_bound,
        mc.multicast_waves
    );
    assert!(
        mc.time_to_all_warm <= ro.time_to_all_warm + 1e-9,
        "multicast all-warm {} s must not exceed remote-only {} s",
        mc.time_to_all_warm,
        ro.time_to_all_warm
    );
    println!("\nscale-out: OK (byte conservation, O(log N) rounds, multicast <= remote-only)");

    let off_json = serde_json::to_string(&reports[2]).expect("serializes");
    assert!(
        !off_json.contains("\"fleet\""),
        "the static run must serialize without a fleet key (pre-fleet identity)"
    );
    println!("static-path identity: OK (fleet-off report carries no fleet key)");

    // Byte-identity across thread counts and reruns: the whole sweep,
    // sequentially and at the requested parallelism, twice.
    let sequential = run_sweep(1);
    for ((a, b), mode) in reports.iter().zip(&sequential).zip(Mode::ALL.iter()) {
        assert_eq!(
            serde_json::to_string(a).expect("serializes"),
            serde_json::to_string(b).expect("serializes"),
            "{}: --threads {threads} diverged from sequential",
            mode.name()
        );
    }
    println!("determinism: OK (sweep byte-identical at --threads {threads} and 1)");

    save_results(
        if small {
            "exp_scale_out_small"
        } else {
            "exp_scale_out"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "seed": seed,
            "duration_s": duration,
            "functions": names.len(),
            "requests": trace.len(),
            "max_nodes": max_nodes,
            "planner": planner_json,
            "sweep": sweep_json,
        }),
    );
}
