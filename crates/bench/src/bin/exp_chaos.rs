//! Chaos sweep — all four systems under deterministic fault injection.
//!
//! Sweeps a seeded fault-rate grid (`optimus-faults`) across OpenWhisk,
//! Pagurus, Tetris and Optimus and reports how service time degrades as
//! node crashes, container kills, transform failures and store-transport
//! stragglers are injected. Three invariants are machine-checked:
//!
//! 1. **Safeguard under failure** — at every fault rate, the per-request
//!    audit margin `max_over_cold` stays ≤ 1e-6: an Optimus request with
//!    the safeguard never pays more startup latency than the cold start
//!    OpenWhisk would have paid for the same request under the same
//!    injected faults, and consequently Optimus' p99 service time stays
//!    at or below OpenWhisk's at every rate.
//! 2. **Quiet-plan identity** — a zero-rate fault plan reproduces the
//!    fault-free run byte-identically (the fault layer's identity-math
//!    contract).
//! 3. **Determinism** — re-running the highest-rate Optimus cell yields
//!    a byte-identical report (same seed ⇒ same injections ⇒ same JSON).
//!
//! Optional args: `--small` (CI configuration), `--threads <n>`
//! (byte-identical output at any thread count), `--duration <seconds>`,
//! `--seed <n>`.

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{build_repo, figure13_models, fmt_s, print_table, save_results};
use optimus_faults::{FaultPlan, FaultSpec};
use optimus_model::ModelGraph;
use optimus_profile::Environment;
use optimus_sim::{Platform, Policy, SimConfig};
use optimus_workload::{rates, AzureTraceGenerator, PoissonGenerator, Trace};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let threads = threads_arg(&args);
    let seed: u64 = arg(&args, "--seed", 42);
    let (catalog_size, default_duration, fault_rates): (usize, f64, Vec<f64>) = if small {
        (10, 2_400.0, vec![0.0, 0.05, 0.2])
    } else {
        (usize::MAX, 14_400.0, vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2])
    };
    let duration: f64 = arg(&args, "--duration", default_duration);

    let models: Vec<ModelGraph> = figure13_models().into_iter().take(catalog_size).collect();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!(
        "registering {} models and computing plan cache...",
        names.len()
    );
    let repo = build_repo(models, Environment::Cpu);
    let trace: Trace = if small {
        PoissonGenerator::new(rates::MIDDLE, duration, seed).generate(&names)
    } else {
        AzureTraceGenerator::new(duration, seed).generate(&names)
    };
    let base = SimConfig {
        store: Some(optimus_store::StoreConfig::default()),
        ..SimConfig::default()
    };
    let plan_for = |rate: f64| -> Option<FaultPlan> {
        (rate > 0.0).then(|| FaultPlan::from_spec(FaultSpec::uniform(seed, rate)))
    };

    println!(
        "Chaos sweep: {} functions, {} nodes x {} slots, {} requests, seed {seed}\n",
        names.len(),
        base.nodes,
        base.capacity_per_node,
        trace.len()
    );

    // One grid cell per fault rate × policy; results return in input
    // order, so table/JSON are byte-identical at any --threads.
    let cells: Vec<(usize, Policy)> = (0..fault_rates.len())
        .flat_map(|r| Policy::ALL.iter().map(move |&p| (r, p)))
        .collect();
    let reports = run_grid(&cells, threads, |&(r, policy)| {
        let config = SimConfig {
            faults: plan_for(fault_rates[r]),
            ..base.clone()
        };
        Platform::new(config, policy, repo.clone()).run(&trace)
    });
    let report_at = |r: usize, policy: Policy| -> &optimus_sim::SimReport {
        let p = Policy::ALL
            .iter()
            .position(|&x| x == policy)
            .expect("known");
        &reports[r * Policy::ALL.len() + p]
    };

    let mut rows = Vec::new();
    let mut stat_rows = Vec::new();
    let mut sweep_json = Vec::new();
    for (r, &rate) in fault_rates.iter().enumerate() {
        let mut row = vec![format!("{:.0}%", rate * 100.0)];
        let mut per_system = serde_json::Map::new();
        for &policy in Policy::ALL.iter() {
            let report = report_at(r, policy);
            row.push(format!(
                "{} / {}",
                fmt_s(report.avg_service_time()),
                fmt_s(report.percentile_service_time(99.0))
            ));
            per_system.insert(
                policy.name().to_string(),
                serde_json::json!({
                    "avg_service_time": report.avg_service_time(),
                    "p99": report.percentile_service_time(99.0),
                    "requests": report.len(),
                    "faults": report.faults,
                }),
            );
        }
        rows.push(row);

        // ── Invariant 1: safeguard under failure ────────────────────────
        let optimus = report_at(r, Policy::Optimus);
        let openwhisk = report_at(r, Policy::OpenWhisk);
        if let Some(fr) = optimus.faults {
            assert!(
                fr.max_over_cold <= 1e-6,
                "rate {rate}: safeguard violated, margin over cold = {}",
                fr.max_over_cold
            );
            let s = fr.stats;
            stat_rows.push(vec![
                format!("{:.0}%", rate * 100.0),
                s.node_crashes.to_string(),
                s.container_kills.to_string(),
                s.transform_failures.to_string(),
                s.safeguard_escalations.to_string(),
                s.reroutes.to_string(),
                s.fetch_stragglers.to_string(),
                s.fetch_retries.to_string(),
                s.load_corruptions.to_string(),
            ]);
        }
        let (opt_p99, ow_p99) = (
            optimus.percentile_service_time(99.0),
            openwhisk.percentile_service_time(99.0),
        );
        assert!(
            opt_p99 <= ow_p99 + 1e-9,
            "rate {rate}: Optimus p99 {opt_p99} exceeds OpenWhisk cold-start p99 {ow_p99}"
        );
        sweep_json.push(serde_json::json!({
            "fault_rate": rate,
            "systems": serde_json::Value::Object(per_system),
        }));
    }
    print_table(
        &[
            "Fault rate",
            "OpenWhisk avg/p99",
            "Pagurus avg/p99",
            "Tetris avg/p99",
            "Optimus avg/p99",
        ],
        &rows,
    );
    println!("\nInjected faults and resilience actions (Optimus):\n");
    print_table(
        &[
            "Fault rate",
            "Crashes",
            "Kills",
            "Xform fail",
            "Escalated",
            "Reroutes",
            "Stragglers",
            "Retries",
            "Corrupt",
        ],
        &stat_rows,
    );

    // ── Invariant 2: quiet-plan identity ────────────────────────────────
    let quiet = Platform::new(
        SimConfig {
            faults: Some(FaultPlan::from_spec(FaultSpec::off(seed))),
            ..base.clone()
        },
        Policy::Optimus,
        repo.clone(),
    )
    .run(&trace);
    let baseline = report_at(0, Policy::Optimus);
    assert_eq!(
        serde_json::to_string(&quiet.records).expect("serializes"),
        serde_json::to_string(&baseline.records).expect("serializes"),
        "a zero-rate fault plan must reproduce the fault-free run byte-identically"
    );
    println!("\nquiet-plan identity: OK (zero-rate plan == no plan, byte-identical records)");

    // ── Invariant 3: determinism of the faulted cells ───────────────────
    let last = fault_rates.len() - 1;
    let rerun = Platform::new(
        SimConfig {
            faults: plan_for(fault_rates[last]),
            ..base.clone()
        },
        Policy::Optimus,
        repo.clone(),
    )
    .run(&trace);
    assert_eq!(
        serde_json::to_string(&rerun).expect("serializes"),
        serde_json::to_string(report_at(last, Policy::Optimus)).expect("serializes"),
        "same seed must give a byte-identical chaos report"
    );
    println!("determinism: OK (highest-rate Optimus cell re-ran byte-identically)");
    println!("safeguard: OK (Optimus p99 <= OpenWhisk p99 at every fault rate)");

    save_results(
        if small {
            "exp_chaos_small"
        } else {
            "exp_chaos"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "seed": seed,
            "duration_s": duration,
            "functions": names.len(),
            "requests": trace.len(),
            "fault_rates": fault_rates,
            "sweep": sweep_json,
        }),
    );
}
