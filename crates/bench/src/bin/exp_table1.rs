//! Table 1 — planning and execution latency of the basic (Munkres,
//! Module 2) and improved (group-based, Module 2⁺) algorithms for three
//! transformation cases.
//!
//! Planning latency is real wall-clock time of the planner; execution
//! latency is the plan's (simulated) meta-operator cost.
//!
//! `--threads <n>` plans the case × planner grid in parallel. Execution
//! costs are deterministic at any thread count; `planning_seconds` is
//! wall clock and naturally varies run to run.

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{print_table, save_results};
use optimus_core::{GroupPlanner, MunkresPlanner, Planner};
use optimus_profile::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = threads_arg(&args);
    let cost = CostModel::default();
    let cases = [
        (optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()),
        (optimus_zoo::vgg::vgg16(), optimus_zoo::resnet::resnet50()),
        (optimus_zoo::resnet::resnet50(), optimus_zoo::vgg::vgg19()),
    ];
    println!("Table 1: planning and execution latency, basic vs improved\n");
    // case × planner grid: even-indexed cells run Munkres, odd run Group.
    let cells: Vec<(usize, bool)> = (0..cases.len())
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let plans = run_grid(&cells, threads, |&(i, improved)| {
        let (src, dst) = &cases[i];
        if improved {
            GroupPlanner.plan(src, dst, &cost)
        } else {
            MunkresPlanner.plan(src, dst, &cost)
        }
    });
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (i, (src, dst)) in cases.iter().enumerate() {
        let basic = &plans[2 * i];
        let improved = &plans[2 * i + 1];
        rows.push(vec![
            format!("{} to {}", src.name(), dst.name()),
            format!("{:.1} ms", 1e3 * basic.planning_seconds),
            format!("{:.2} s", basic.cost.total()),
            format!("{:.3} ms", 1e3 * improved.planning_seconds),
            format!("{:.2} s", improved.cost.total()),
        ]);
        json.push(serde_json::json!({
            "case": format!("{} -> {}", src.name(), dst.name()),
            "basic_planning_s": basic.planning_seconds,
            "basic_execution_s": basic.cost.total(),
            "improved_planning_s": improved.planning_seconds,
            "improved_execution_s": improved.cost.total(),
            "planning_speedup": basic.planning_seconds / improved.planning_seconds,
        }));
    }
    print_table(
        &[
            "Transformation case",
            "Basic plan",
            "Basic exec",
            "Improved plan",
            "Improved exec",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: the improved algorithm cuts planning time by \
         ~99.99% (171 s → 1.1 ms in Python) with near-optimal execution. \
         Our Rust Munkres is far faster than the paper's Python baseline, \
         so absolute planning times are smaller, but the orders-of-magnitude \
         gap between the O((n+m)^3) and O(n+m) planners holds."
    );
    save_results("exp_table1", &serde_json::json!({ "cases": json }));
}
