//! Figure 13 — average service time of serverless ML inference requests
//! under the Poisson (three intensities) and Azure workloads, for
//! OpenWhisk, Pagurus, Tetris and Optimus.
//!
//! Optional args: `--balancer <sharing|hash|least>` (default sharing) for
//! the load-balancer ablation, `--duration <seconds>` (default 86400),
//! `--threads <n>` to run the workload × policy grid in parallel (the
//! output is byte-identical at any thread count).

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{
    build_repo, figure13_models, fmt_pct, fmt_s, print_table, save_results, workloads,
};
use optimus_profile::Environment;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let placement = match args
        .iter()
        .position(|a| a == "--balancer")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("hash") => PlacementStrategy::Hash,
        Some("least") => PlacementStrategy::LeastLoaded,
        _ => PlacementStrategy::default(),
    };
    let duration: f64 = args
        .iter()
        .position(|a| a == "--duration")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(86_400.0);
    let threads = threads_arg(&args);

    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!(
        "registering {} models and computing plan cache...",
        names.len()
    );
    let repo = build_repo(models, Environment::Cpu);
    let config = SimConfig {
        placement,
        ..SimConfig::default()
    };

    println!(
        "Figure 13: average service time (s), {} functions, {} nodes x {} slots, {}h trace\n",
        names.len(),
        config.nodes,
        config.capacity_per_node,
        duration / 3600.0
    );
    // One grid cell per workload × policy; results come back in input
    // order, so the table and JSON below are identical at any --threads.
    let runs = workloads(&names, duration, 7);
    let cells: Vec<(usize, Policy)> = (0..runs.len())
        .flat_map(|w| Policy::ALL.iter().map(move |&p| (w, p)))
        .collect();
    let reports = run_grid(&cells, threads, |&(w, policy)| {
        let platform = Platform::new(config.clone(), policy, repo.clone());
        platform.run(&runs[w].1)
    });

    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for (w, (wname, trace)) in runs.iter().enumerate() {
        let results: Vec<(Policy, &optimus_sim::SimReport)> = Policy::ALL
            .iter()
            .enumerate()
            .map(|(p, &policy)| (policy, &reports[w * Policy::ALL.len() + p]))
            .collect();
        let mut row = vec![format!("{wname} ({})", trace.len())];
        let mut per_system = serde_json::Map::new();
        let optimus = results
            .iter()
            .find(|(p, _)| *p == Policy::Optimus)
            .map(|(_, r)| r.avg_service_time())
            .expect("optimus ran");
        for (policy, report) in &results {
            let avg = report.avg_service_time();
            let cell = if *policy == Policy::Optimus {
                fmt_s(avg)
            } else {
                format!("{} (-{})", fmt_s(avg), fmt_pct(1.0 - optimus / avg))
            };
            row.push(cell);
            per_system.insert(
                policy.name().to_string(),
                serde_json::json!({
                    "avg_service_time": avg,
                    "p99": report.percentile_service_time(99.0),
                    "requests": report.len(),
                }),
            );
        }
        rows.push(row);
        json.insert(wname.clone(), serde_json::Value::Object(per_system));
    }
    print_table(
        &[
            "Workload (reqs)",
            "OpenWhisk",
            "Pagurus",
            "Tetris",
            "Optimus",
        ],
        &rows,
    );
    println!(
        "\n(-x%) = Optimus' latency reduction vs that system. \
         Paper: 24.00%–47.56% reduction vs the state of the art."
    );
    save_results("exp_fig13", &serde_json::Value::Object(json));
}
