//! Figure 3 — latency of each model-loading step (deserialize / structure
//! / weight assignment) for 100 models from the Imgclsmob-style catalog.

use optimus_bench::{fmt_pct, print_table, save_results};
use optimus_profile::{CostModel, CostProvider};

fn main() {
    let cost = CostModel::default();
    let catalog = optimus_zoo::imgclsmob_catalog();
    // 100 models sampled deterministically across the catalog.
    let step = (catalog.len() / 100).max(1);
    let sample: Vec<_> = catalog.iter().step_by(step).take(100).collect();

    let mut deser_f = Vec::new();
    let mut structure_f = Vec::new();
    let mut assign_f = Vec::new();
    let mut json = Vec::new();
    for entry in &sample {
        let model = entry.build();
        let b = cost.load_breakdown(&model);
        deser_f.push(b.deserialize / b.total());
        structure_f.push(b.structure_fraction());
        assign_f.push(b.assign_fraction());
        json.push(serde_json::json!({
            "model": entry.name,
            "deserialize_s": b.deserialize,
            "structure_s": b.structure,
            "assign_s": b.assign,
        }));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);

    println!(
        "Figure 3: model-loading step fractions over {} catalog models\n",
        sample.len()
    );
    let rows = vec![
        vec![
            "Deserialize".to_string(),
            fmt_pct(mean(&deser_f)),
            fmt_pct(min(&deser_f)),
            fmt_pct(max(&deser_f)),
        ],
        vec![
            "Load structure".to_string(),
            fmt_pct(mean(&structure_f)),
            fmt_pct(min(&structure_f)),
            fmt_pct(max(&structure_f)),
        ],
        vec![
            "Assign weights".to_string(),
            fmt_pct(mean(&assign_f)),
            fmt_pct(min(&assign_f)),
            fmt_pct(max(&assign_f)),
        ],
    ];
    print_table(&["Step", "Mean", "Min", "Max"], &rows);
    println!(
        "\nPaper reference: structure loading 89.66% of loading on average, \
         weight assignment 10.28%, deserialization negligible."
    );
    save_results("exp_fig3", &serde_json::json!({ "models": json }));
}
