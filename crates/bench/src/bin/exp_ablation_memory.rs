//! Ablation — §6 "Fine-grained Resource Allocation": homogeneous container
//! slots vs a memory-aware byte budget at several node sizes.

use optimus_bench::{build_repo, figure13_models, fmt_s, print_table, save_results};
use optimus_profile::Environment;
use optimus_sim::{MemoryLimit, Platform, Policy, SimConfig, StartKind};
use optimus_workload::PoissonGenerator;

fn main() {
    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!("registering {} models...", names.len());
    let repo = build_repo(models, Environment::Cpu);
    let trace =
        PoissonGenerator::new(optimus_workload::rates::FREQUENT, 86_400.0, 7).generate(&names);

    println!(
        "Ablation: memory-aware capacity (slots fixed at 64; memory binds), \
         Optimus policy, Poisson λ=10⁻²\n"
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut cases: Vec<(String, Option<MemoryLimit>)> =
        vec![("slots only (12/node, paper)".to_string(), None)];
    for gib in [4u64, 8, 16, 32] {
        cases.push((
            format!("memory {gib} GiB/node"),
            Some(MemoryLimit::gib(gib)),
        ));
    }
    for (name, memory) in cases {
        let config = SimConfig {
            capacity_per_node: if memory.is_some() { 64 } else { 12 },
            memory,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        let frac = report.start_fractions();
        let warm = frac.get(&StartKind::Warm).copied().unwrap_or(0.0);
        rows.push(vec![
            name.clone(),
            fmt_s(report.avg_service_time()),
            format!("{:.1}%", 100.0 * warm),
        ]);
        json.push(serde_json::json!({
            "mode": name,
            "avg_service_time": report.avg_service_time(),
            "warm_fraction": warm,
        }));
    }
    print_table(&["Capacity mode", "Avg service (s)", "Warm starts"], &rows);
    println!(
        "\nExpected: a byte budget lets small models (MobileNet, BERT-Tiny) \
         pack far more warm containers than 12 homogeneous slots sized for \
         the largest model, trading memory for warm-start rate — the \
         paper's §6 motivation for heterogeneous allocation."
    );
    save_results("exp_ablation_memory", &serde_json::json!({ "rows": json }));
}
