//! LLM transformation experiment — cold-starting a multi-GB GPT decoder
//! versus transforming a resident context-length sibling.
//!
//! The scenario is the paper's warming story told at LLM scale: a node
//! has been serving `gpt-6.7b-c1024` decode loops; traffic shifts to the
//! longer-context sibling `gpt-6.7b-c2048`. OpenWhisk cold-starts a new
//! sandbox and admits the full ~26 GB chunk set; Optimus transforms the
//! idle sibling container in place, admitting only the plan's payload
//! chunks, and the KV meta-operators carry the attention state across
//! the context change.
//!
//! Three sections:
//!
//! 1. **Static plan accounting** — the weight-side chunk split
//!    (`plan_chunks`) and the state-side KV plan (`plan_kv_transform`)
//!    between the sibling pair, with their partition invariants
//!    machine-checked: transformation must move strictly fewer bytes
//!    than a scratch load at any tier.
//! 2. **Tier-ladder sweep** — OpenWhisk vs Optimus on the same decode
//!    trace (sibling warm-up heartbeats, then a target burst) across
//!    several remote-bandwidth ladders, with `llm: Some(..)` so every
//!    request is a continuously-batched decode loop. At every ladder the
//!    transform path must beat the cold path on target-function p99 TTFT
//!    and on bytes admitted into containers.
//! 3. **Regression guards** — `llm: None` output carries no `llm` key
//!    and reruns byte-identically, and the whole sweep is byte-identical
//!    at any `--threads` value.
//!
//! Run with `--small` for the CI configuration.

use std::collections::{HashMap, HashSet};

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{fmt_s, print_table, save_results};
use optimus_core::{plan_chunks, plan_kv_transform, GroupPlanner, Planner};
use optimus_model::KvCache;
use optimus_profile::CostModel;
use optimus_sim::{
    LlmConfig, PlacementStrategy, Platform, Policy, SimConfig, SimReport, StartKind, StoreConfig,
    TierParams,
};
use optimus_store::model_chunks;
use optimus_workload::{Invocation, Trace};
use optimus_zoo::{gpt, GptConfig, GptSize};

/// Sorted percentile of a sample (nearest-rank on the sorted data).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The decode trace both systems serve: periodic sibling heartbeats keep
/// its container resident (and, after the last one, idle long enough to
/// become a transformation donor), then a burst of target requests.
fn decode_trace(
    sibling: &str,
    target: &str,
    heartbeat_gap: f64,
    last_heartbeat: f64,
    burst_at: f64,
    burst_n: usize,
    duration: f64,
) -> Trace {
    let mut inv: Vec<Invocation> = Vec::new();
    let beats = (last_heartbeat / heartbeat_gap) as usize;
    for i in 0..=beats {
        inv.push(Invocation {
            time: i as f64 * heartbeat_gap,
            function: sibling.to_string(),
        });
    }
    for i in 0..burst_n {
        inv.push(Invocation {
            time: burst_at + i as f64 * 0.05,
            function: target.to_string(),
        });
    }
    Trace::new(duration, inv)
}

/// Target-function view of one report: start-path latency percentiles and
/// start-kind counts.
struct TargetView {
    requests: usize,
    cold: usize,
    transform: usize,
    warm: usize,
    /// p99 of per-request TTFT: queueing + sandbox init + load/transform,
    /// plus the (policy-independent) first prefill iteration.
    ttft_p99: f64,
    ttft_max: f64,
}

fn target_view(report: &SimReport, target: &str, prefill_iter: f64) -> TargetView {
    let mut ttfts: Vec<f64> = Vec::new();
    let (mut cold, mut transform, mut warm) = (0, 0, 0);
    for r in report.records.iter().filter(|r| r.function == target) {
        ttfts.push(r.wait + r.init + r.load + prefill_iter);
        match r.kind {
            StartKind::Cold => cold += 1,
            StartKind::Transform => transform += 1,
            StartKind::Warm => warm += 1,
        }
    }
    ttfts.sort_by(f64::total_cmp);
    TargetView {
        requests: ttfts.len(),
        cold,
        transform,
        warm,
        ttft_p99: percentile(&ttfts, 0.99),
        ttft_max: percentile(&ttfts, 1.0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let threads = threads_arg(&args);

    // The sibling pair shares every weight except the positional table
    // (the context axis); the decoy pads the catalog so planning runs on
    // a non-trivial zoo.
    let (size, decoy_size) = if small {
        (GptSize::G350M, GptSize::G125M)
    } else {
        (GptSize::G6_7B, GptSize::G1_3B)
    };
    let sibling_cfg = GptConfig::new(size); // c1024
    let target_cfg = GptConfig::new(size).context(2048);
    let decoy_cfg = GptConfig::new(decoy_size);
    let sibling_name = sibling_cfg.name();
    let target_name = target_cfg.name();

    // Timeline: heartbeats outlast the slowest ladder's initial cold load
    // of the sibling, the burst lands after the 60 s donor idle threshold.
    let (gap, last_beat, burst_at, duration, bandwidths) = if small {
        (30.0, 300.0, 400.0, 800.0, vec![25.0e6, 400.0e6])
    } else {
        (
            60.0,
            1_800.0,
            1_900.0,
            2_600.0,
            vec![25.0e6, 100.0e6, 400.0e6],
        )
    };
    let llm = LlmConfig::default();
    let burst_n = llm.max_batch; // one continuously-batched target wave

    assert!(
        SimConfig::default().llm.is_none(),
        "LLM serving must stay opt-in: default sim config is single-forward-pass"
    );

    // ── 1. Static plan accounting ───────────────────────────────────────
    let sibling = gpt(sibling_cfg);
    let target = gpt(target_cfg);
    let cost = CostModel::default();
    let chunk_bytes = StoreConfig::default().chunk_bytes;

    let plan = GroupPlanner.plan(&sibling, &target, &cost);
    let split = plan_chunks(&plan, &target, chunk_bytes);
    // The partition is exact at the chunk-id level: fetched and reused
    // ids are disjoint and together cover the destination's unique
    // content (byte sums over raw chunk lists would double-count content
    // the decoder deduplicates internally, e.g. identical zero-init
    // LayerNorm tensors across layers).
    let dst_unique: HashMap<_, u64> = model_chunks(&target, chunk_bytes)
        .into_iter()
        .map(|c| (c.id, c.bytes))
        .collect();
    let fetched_ids: HashSet<_> = split.fetched.iter().map(|c| c.id).collect();
    let reused_ids: HashSet<_> = split.reused.iter().map(|c| c.id).collect();
    assert!(fetched_ids.is_disjoint(&reused_ids));
    let union: HashSet<_> = fetched_ids.union(&reused_ids).copied().collect();
    assert_eq!(
        union,
        dst_unique.keys().copied().collect::<HashSet<_>>(),
        "fetched + reused chunks must cover the destination exactly"
    );
    let unique_total: u64 = dst_unique.values().sum();
    let reused_unique: u64 = dst_unique
        .iter()
        .filter(|(id, _)| reused_ids.contains(id))
        .map(|(_, b)| b)
        .sum();
    assert_eq!(split.fetched_bytes() + reused_unique, unique_total);
    assert!(
        split.fetched_bytes() < unique_total,
        "transformation must move strictly fewer bytes than a scratch load: \
         {} fetched vs {} total",
        split.fetched_bytes(),
        unique_total
    );

    // State side: the KV cache of a fully-filled sibling context carries
    // wholesale into the wider target window.
    let src_kv = sibling_cfg.kv_spec();
    let dst_kv = target_cfg.kv_spec();
    let cache = KvCache::filled(src_kv, src_kv.context);
    let kv = plan_kv_transform(&cache, &dst_kv);
    assert_eq!(kv.carried_bytes + kv.materialized_bytes, dst_kv.byte_size());
    assert_eq!(kv.carried_bytes + kv.dropped_bytes, cache.live_bytes());
    assert!(
        src_kv.row_compatible(&dst_kv),
        "context siblings share rows"
    );
    assert_eq!(
        kv.carried, src_kv.context,
        "a wider window carries all state"
    );
    assert_eq!(kv.dropped_bytes, 0);

    let gib = |b: u64| format!("{:.3} GiB", b as f64 / (1u64 << 30) as f64);
    println!(
        "Transforming {sibling_name} -> {target_name} ({} steps, plan cost {})\n",
        plan.steps.len(),
        fmt_s(plan.cost.total()),
    );
    print_table(
        &[
            "Accounting",
            "Fetched/Carried",
            "Reused/Materialized",
            "Total",
        ],
        &[
            vec![
                "weights (chunks)".to_string(),
                gib(split.fetched_bytes()),
                gib(reused_unique),
                gib(unique_total),
            ],
            vec![
                "KV cache (state)".to_string(),
                gib(kv.carried_bytes),
                gib(kv.materialized_bytes),
                gib(dst_kv.byte_size()),
            ],
        ],
    );

    // ── 2. Tier-ladder sweep: OpenWhisk (cold) vs Optimus (transform) ───
    let repo = optimus_bench::build_repo(
        vec![sibling, target, gpt(decoy_cfg)],
        optimus_profile::Environment::Cpu,
    );
    let trace = decode_trace(
        &sibling_name,
        &target_name,
        gap,
        last_beat,
        burst_at,
        burst_n,
        duration,
    );
    // The first prefill iteration of the target wave is the same for both
    // systems (same batch, same weights); adding it to the measured
    // start path makes the per-request figure a TTFT.
    let target_bytes = repo
        .model(&target_name)
        .expect("target registered")
        .byte_size() as u64;
    let prefill_iter = llm.iter_seconds(target_bytes, burst_n, 1);

    let cells: Vec<(f64, Policy)> = bandwidths
        .iter()
        .flat_map(|&bw| [(bw, Policy::OpenWhisk), (bw, Policy::Optimus)])
        .collect();
    let run_cells = |threads: usize| -> Vec<SimReport> {
        run_grid(&cells, threads, |&(bw, policy): &(f64, Policy)| {
            let config = SimConfig {
                nodes: 1,
                placement: PlacementStrategy::Hash,
                store: Some(StoreConfig {
                    remote: TierParams {
                        bandwidth_bytes_per_s: bw,
                        latency_s: StoreConfig::default().remote.latency_s,
                    },
                    ..StoreConfig::default()
                }),
                llm: Some(llm),
                ..SimConfig::default()
            };
            Platform::new(config, policy, repo.clone()).run(&trace)
        })
    };
    let reports = run_cells(threads);

    println!(
        "\nDecode trace: {} heartbeats on {sibling_name}, {burst_n}-request burst on {target_name}\n",
        (last_beat / gap) as usize + 1,
    );
    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for (i, &bw) in bandwidths.iter().enumerate() {
        let cold_report = &reports[2 * i];
        let warm_report = &reports[2 * i + 1];
        let cold = target_view(cold_report, &target_name, prefill_iter);
        let warm = target_view(warm_report, &target_name, prefill_iter);
        let cold_stats = cold_report.store.expect("store enabled");
        let warm_stats = warm_report.store.expect("store enabled");

        // The machine-checked invariants: at every ladder the transform
        // path serves the burst with strictly lower p99 TTFT and strictly
        // fewer bytes admitted into containers than the cold path.
        assert!(cold.transform == 0, "OpenWhisk never transforms");
        assert!(
            warm.transform >= 1,
            "Optimus transforms the idle sibling at {bw} B/s"
        );
        assert!(
            warm.ttft_p99 < cold.ttft_p99,
            "transform must beat cold on target p99 TTFT at {bw} B/s: {} vs {}",
            warm.ttft_p99,
            cold.ttft_p99
        );
        assert!(
            warm_stats.admitted_bytes < cold_stats.admitted_bytes,
            "transform must admit strictly fewer bytes at {bw} B/s: {} vs {}",
            warm_stats.admitted_bytes,
            cold_stats.admitted_bytes
        );
        assert!(warm_stats.fetched_bytes <= cold_stats.fetched_bytes);

        for (name, view, stats, report) in [
            ("OpenWhisk", &cold, cold_stats, cold_report),
            ("Optimus", &warm, warm_stats, warm_report),
        ] {
            let lr = report.llm.as_ref().expect("llm enabled");
            rows.push(vec![
                format!("remote {:.0} MB/s", bw / 1e6),
                name.to_string(),
                format!("{}c/{}t/{}w", view.cold, view.transform, view.warm),
                fmt_s(view.ttft_p99),
                fmt_s(view.ttft_max),
                gib(stats.admitted_bytes),
                gib(stats.fetched_bytes),
                format!("{}", lr.joins),
            ]);
        }
        let side = |view: &TargetView, stats: optimus_sim::StoreStats, report: &SimReport| {
            let lr = report.llm.as_ref().expect("llm enabled");
            serde_json::json!({
                "target_requests": view.requests,
                "target_cold": view.cold,
                "target_transform": view.transform,
                "target_warm": view.warm,
                "target_ttft_p99_s": view.ttft_p99,
                "target_ttft_max_s": view.ttft_max,
                "admitted_bytes": stats.admitted_bytes,
                "fetched_bytes": stats.fetched_bytes,
                "dedup_ratio": stats.dedup_ratio,
                "llm_requests": lr.requests,
                "llm_joins": lr.joins,
                "llm_tokens": lr.tokens,
                "llm_peak_batch": lr.peak_batch,
                "llm_ttft_p99_s": lr.ttft_p99,
            })
        };
        sweep_json.push(serde_json::json!({
            "remote_bandwidth_bytes_per_s": bw,
            "openwhisk": side(&cold, cold_stats, cold_report),
            "optimus": side(&warm, warm_stats, warm_report),
        }));
    }
    print_table(
        &[
            "Ladder", "System", "Starts", "TTFT p99", "TTFT max", "Admitted", "Fetched", "Joins",
        ],
        &rows,
    );

    // ── 3. Regression guards ────────────────────────────────────────────
    // (a) With the LLM layer disabled the report schema is unchanged —
    // no `llm` key — and reruns are byte-identical.
    let legacy = || {
        let config = SimConfig {
            nodes: 1,
            placement: PlacementStrategy::Hash,
            store: Some(StoreConfig::default()),
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        serde_json::to_string(&report).unwrap()
    };
    let off = legacy();
    assert!(
        !off.contains("\"llm\""),
        "llm: None must serialize exactly as before the layer existed"
    );
    assert_eq!(off, legacy(), "llm-off reruns are byte-identical");

    // (b) The sweep itself is byte-identical at any thread count,
    // continuous batching included.
    let other_threads = if threads == 1 { 2 } else { 1 };
    let replay = run_cells(other_threads);
    let json_of = |rs: &[SimReport]| {
        rs.iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        json_of(&reports),
        json_of(&replay),
        "sweep must be byte-identical at {threads} vs {other_threads} threads"
    );
    println!("\nGuards: llm-off schema unchanged; sweep deterministic across thread counts");

    save_results(
        if small {
            "exp_llm_transform_small"
        } else {
            "exp_llm_transform"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "sibling": sibling_name,
            "target": target_name,
            "target_bytes": target_bytes,
            "plan_steps": plan.steps.len(),
            "plan_cost_s": plan.cost.total(),
            "weights": {
                "fetched_bytes": split.fetched_bytes(),
                "reused_unique_bytes": reused_unique,
                "unique_total_bytes": unique_total,
            },
            "kv": {
                "carried_bytes": kv.carried_bytes,
                "materialized_bytes": kv.materialized_bytes,
                "dropped_bytes": kv.dropped_bytes,
                "carried_positions": kv.carried,
            },
            "prefill_iter_s": prefill_iter,
            "burst_requests": burst_n,
            "sweep": sweep_json,
        }),
    );
}
