//! Ablation — §5.1 load balancer: sharing-aware K-medoids vs hash vs
//! least-loaded placement, all serving the same Azure-style workload under
//! the Optimus policy.

use optimus_bench::{build_repo, figure13_models, fmt_s, print_table, save_results};
use optimus_profile::Environment;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};
use optimus_workload::AzureTraceGenerator;

fn main() {
    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!("registering {} models...", names.len());
    let repo = build_repo(models, Environment::Cpu);
    let trace = AzureTraceGenerator::new(86_400.0, 7).generate(&names);
    println!(
        "Ablation: load balancer — Optimus policy, Azure workload ({} requests)\n",
        trace.len()
    );
    let cases = [
        (
            "sharing-aware (§5.1)",
            PlacementStrategy::SharingAware {
                gamma_d: 0.7,
                gamma_k: 0.3,
            },
        ),
        (
            "edit-distance only",
            PlacementStrategy::SharingAware {
                gamma_d: 1.0,
                gamma_k: 0.0,
            },
        ),
        (
            "correlation only",
            PlacementStrategy::SharingAware {
                gamma_d: 0.0,
                gamma_k: 1.0,
            },
        ),
        ("hash", PlacementStrategy::Hash),
        ("least-loaded", PlacementStrategy::LeastLoaded),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, placement) in cases {
        let config = SimConfig {
            placement,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        rows.push(vec![
            name.to_string(),
            fmt_s(report.avg_service_time()),
            fmt_s(report.percentile_service_time(99.0)),
        ]);
        json.push(serde_json::json!({
            "balancer": name,
            "avg_service_time": report.avg_service_time(),
            "p99": report.percentile_service_time(99.0),
        }));
    }
    print_table(&["Balancer", "Avg service (s)", "p99 (s)"], &rows);
    println!(
        "\nExpected: the sharing-aware balancer co-locates structurally \
         similar, demand-complementary functions, giving Optimus cheaper \
         donors than hash or least-loaded routing."
    );
    save_results(
        "exp_ablation_balancer",
        &serde_json::json!({ "rows": json }),
    );
}
