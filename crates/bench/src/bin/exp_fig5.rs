//! Figure 5 — the strawman system: (a) same-structure weight swap vs cold
//! start; (c) the CONV kernel-scaling matrix (load diagonal vs reshape
//! off-diagonals).

use optimus_bench::{fmt_pct, fmt_s, print_table, save_results};
use optimus_core::{GroupPlanner, Planner};
use optimus_model::{OpAttrs, Padding};
use optimus_profile::{CostModel, CostProvider, Environment, PlatformProfile};

fn main() {
    let cost = CostModel::default();
    let plat = PlatformProfile::new(Environment::Cpu);

    println!("Figure 5(a): same structure, different weights — serving latency\n");
    let mut rows = Vec::new();
    let mut savings = Vec::new();
    for (a, b) in [
        (
            optimus_zoo::vgg::vgg_scaled(16, 1.0, 0),
            optimus_zoo::vgg::vgg_scaled(16, 1.0, 1),
        ),
        (
            optimus_zoo::vgg::vgg_scaled(19, 1.0, 0),
            optimus_zoo::vgg::vgg_scaled(19, 1.0, 1),
        ),
        (
            optimus_zoo::resnet::resnet_scaled(50, 1.0, 0),
            optimus_zoo::resnet::resnet_scaled(50, 1.0, 1),
        ),
        (
            optimus_zoo::resnet::resnet_scaled(101, 1.0, 0),
            optimus_zoo::resnet::resnet_scaled(101, 1.0, 1),
        ),
    ] {
        let cold = plat.cold_init() + cost.model_load_cost(&b) + plat.compute_cost(&b);
        let plan = GroupPlanner.plan(&a, &b, &cost);
        let swap = plat.repurpose_overhead + plan.cost.total() + plat.compute_cost(&b);
        let saving = 1.0 - swap / cold;
        savings.push(saving);
        rows.push(vec![
            b.name().to_string(),
            fmt_s(cold),
            fmt_s(swap),
            fmt_pct(saving),
        ]);
    }
    print_table(
        &["Model", "Cold start (s)", "Weight swap (s)", "Reduction"],
        &rows,
    );
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "\nMean reduction {} (paper: 79.83% average).",
        fmt_pct(mean)
    );

    println!("\nFigure 5(c): CONV kernel scaling matrix (seconds)");
    println!("diagonal = loading from scratch; cell (i,j) = reshape i → j\n");
    let shapes: [((usize, usize), usize); 6] = [
        ((1, 1), 64),
        ((5, 5), 64),
        ((7, 7), 64),
        ((1, 1), 512),
        ((5, 5), 512),
        ((7, 7), 512),
    ];
    let conv = |(k, n): ((usize, usize), usize)| OpAttrs::Conv2d {
        in_channels: 64,
        out_channels: n,
        kernel: k,
        stride: (1, 1),
        padding: Padding::Same,
        groups: 1,
        bias: true,
    };
    let mut headers: Vec<String> = vec!["from \\ to".to_string()];
    headers.extend(shapes.iter().map(|((kh, kw), n)| format!("{kh}x{kw},{n}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    let mut matrix = Vec::new();
    for &src in &shapes {
        let mut row = vec![format!("{}x{},{}", src.0 .0, src.0 .1, src.1)];
        let mut mrow = Vec::new();
        for &dst in &shapes {
            let v = if src == dst {
                cost.add_cost(&conv(dst))
            } else {
                cost.reshape_cost(&conv(src), &conv(dst))
                    .expect("same kind")
                    + cost.replace_cost(&conv(dst))
            };
            row.push(format!("{:.4}", v));
            mrow.push(v);
        }
        rows.push(row);
        matrix.push(mrow);
    }
    print_table(&header_refs, &rows);
    println!(
        "\nPaper reference: scaling an existing CONV costs roughly a third \
         of loading it from scratch (0.004s vs 0.011s for 5x5)."
    );
    save_results(
        "exp_fig5",
        &serde_json::json!({ "mean_weight_swap_reduction": mean, "conv_matrix": matrix }),
    );
}
