//! Figure 14 — percentage of cold start, container/model transformation
//! and warm start per system under the Poisson and Azure workloads.

use optimus_bench::{
    build_repo, figure13_models, fmt_pct, print_table, run_all_policies, save_results, workloads,
};
use optimus_profile::Environment;
use optimus_sim::{SimConfig, StartKind};

fn main() {
    let duration: f64 = std::env::args()
        .collect::<Vec<_>>()
        .iter()
        .position(|a| a == "--duration")
        .and_then(|i| std::env::args().nth(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(86_400.0);
    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!(
        "registering {} models and computing plan cache...",
        names.len()
    );
    let repo = build_repo(models, Environment::Cpu);
    let config = SimConfig::default();

    println!("Figure 14: start-type percentages per system and workload\n");
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for (wname, trace) in workloads(&names, duration, 7) {
        eprintln!("running {wname} ({} requests)...", trace.len());
        let results = run_all_policies(&config, &repo, &trace);
        let mut per_system = serde_json::Map::new();
        for (policy, report) in &results {
            let frac = report.start_fractions();
            let get = |k: StartKind| frac.get(&k).copied().unwrap_or(0.0);
            rows.push(vec![
                wname.clone(),
                policy.name().to_string(),
                fmt_pct(get(StartKind::Cold)),
                fmt_pct(get(StartKind::Transform)),
                fmt_pct(get(StartKind::Warm)),
            ]);
            per_system.insert(
                policy.name().to_string(),
                serde_json::json!({
                    "cold": get(StartKind::Cold),
                    "transform": get(StartKind::Transform),
                    "warm": get(StartKind::Warm),
                }),
            );
        }
        json.insert(wname, serde_json::Value::Object(per_system));
    }
    print_table(&["Workload", "System", "Cold", "Transform", "Warm"], &rows);
    println!(
        "\nPaper: inter-function container sharing (Pagurus, Tetris, Optimus) \
         replaces cold starts with container transformation."
    );
    save_results("exp_fig14", &serde_json::Value::Object(json));
}
