//! Plan-cache behaviour at 10k-model catalog scale.
//!
//! The sharded, persistent plan cache exists for exactly three promises,
//! and this experiment machine-checks all of them:
//!
//! 1. **Flat decide path** — request-time `decide` p99 must not grow with
//!    the catalog: one shard read lock, one vector index, one small map
//!    probe, whether 100 or 10 000 models are registered.
//! 2. **Warm restarts** — re-registering a catalog against its persisted
//!    [`PlanArtifact`] must be ≥ 10× faster than cold planning with the
//!    exact (Hungarian) planner and must invoke the planner zero times.
//! 3. **Shard transparency** — decisions are bit-identical across shard
//!    counts (the striping is a concurrency artifact, never a semantic
//!    one).
//!
//! A fourth section sweeps shard counts under multi-threaded readers to
//! show why the striping is worth having at all.
//!
//! Catalogs are NASBench-201 cells ([`optimus_zoo::nasbench`], a 15 625
//! architecture space), registered with `PlanScope::Window` — the
//! neighbourhood planning mode that keeps 10k-model registration
//! tractable. Run with `--small` for the CI smoke configuration.

use std::time::Instant;

use optimus_bench::{fmt_s, print_table, save_results};
use optimus_core::{GroupPlanner, ModelRepository, MunkresPlanner, PlanArtifact, PlanScope};
use optimus_model::ModelGraph;
use optimus_profile::CostModel;

/// Neighbourhood width for windowed registration.
const WINDOW: usize = 4;

/// Deterministic splitmix64 stream for pair sampling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// `n` distinct small NASBench architectures (one cell per stage keeps
/// graph build and planning cheap enough for 10k-model catalogs).
fn catalog(n: usize) -> Vec<ModelGraph> {
    let space = optimus_zoo::NASBENCH_SPACE_SIZE;
    (0..n as u64)
        .map(|i| optimus_zoo::nasbench::nasbench_model_sized(i % space, 1, i / space))
        .collect()
}

fn registered(n: usize, cost: &CostModel) -> ModelRepository {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    repo.register_all_scoped(catalog(n), cost, threads(), PlanScope::Window(WINDOW), None);
    repo
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// p99 of per-call `decide_by_id` latency, measured over `samples` calls
/// in batches of 64 (amortising the timer reads below call granularity).
fn decide_p99(repo: &ModelRepository, n: usize, samples: usize) -> f64 {
    const BATCH: usize = 64;
    let ids: Vec<_> = (0..n)
        .map(|i| {
            repo.model_id(&format!(
                "nasbench-{:05}",
                i as u64 % optimus_zoo::NASBENCH_SPACE_SIZE
            ))
            .expect("registered model resolves")
        })
        .collect();
    let mut rng = Rng(0xC0FF_EE00 ^ n as u64);
    let mut per_call = Vec::with_capacity(samples / BATCH);
    for _ in 0..samples / BATCH {
        // Pre-draw the batch so the RNG stays out of the timed region.
        let pairs: Vec<_> = (0..BATCH)
            .map(|_| (ids[rng.below(n)], ids[rng.below(n)]))
            .collect();
        let t = Instant::now();
        for &(s, d) in &pairs {
            std::hint::black_box(repo.decide_by_id(s, d));
        }
        per_call.push(t.elapsed().as_secs_f64() / BATCH as f64);
    }
    per_call.sort_by(f64::total_cmp);
    per_call[((per_call.len() - 1) as f64 * 0.99) as usize]
}

/// Multi-threaded decide throughput (ops/s) with `readers` threads.
fn reader_throughput(repo: &ModelRepository, n: usize, readers: usize, iters: usize) -> f64 {
    let ids: Vec<_> = (0..n)
        .map(|i| {
            repo.model_id(&format!(
                "nasbench-{:05}",
                i as u64 % optimus_zoo::NASBENCH_SPACE_SIZE
            ))
            .expect("registered model resolves")
        })
        .collect();
    let t0 = Instant::now();
    crossbeam::thread::scope(|s| {
        for r in 0..readers {
            let ids = &ids;
            s.spawn(move |_| {
                let mut rng = Rng(0xDEAD_BEEF ^ r as u64);
                for _ in 0..iters {
                    let (s, d) = (ids[rng.below(n)], ids[rng.below(n)]);
                    std::hint::black_box(repo.decide_by_id(s, d));
                }
            });
        }
    })
    .expect("reader threads");
    (readers * iters) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cost = CostModel::default();
    let (sizes, warm_size, equiv_size, samples, reader_iters) = if small {
        (
            vec![50usize, 200],
            200usize,
            50usize,
            4_096usize,
            20_000usize,
        )
    } else {
        (
            vec![100usize, 1_000, 10_000],
            1_000usize,
            500usize,
            65_536usize,
            200_000usize,
        )
    };

    // Warmup: absorb one-time costs (thread-pool spin-up, allocator
    // growth, lazily built zoo tables) outside every timed region.
    std::hint::black_box(registered(20, &cost));

    // ── 1. Decide-path p99 vs catalog size ──────────────────────────────
    println!("Decide-path p99 vs catalog size (window {WINDOW} registration)\n");
    let mut rows = Vec::new();
    let mut scale_json = Vec::new();
    let mut p99s = Vec::new();
    for &n in &sizes {
        let t0 = Instant::now();
        let repo = registered(n, &cost);
        let reg_s = t0.elapsed().as_secs_f64();
        let p99 = decide_p99(&repo, n, samples);
        rows.push(vec![
            n.to_string(),
            fmt_s(reg_s),
            format!("{:.0} ns", 1e9 * p99),
        ]);
        scale_json.push(serde_json::json!({
            "catalog": n,
            "register_s": reg_s,
            "decide_p99_s": p99,
        }));
        p99s.push(p99);
    }
    print_table(&["Catalog", "Register (s)", "decide p99"], &rows);
    // Machine check (a): p99 at the largest catalog must stay within 3×
    // the smallest one's (with a 5 µs floor so ns-scale jitter on a
    // loaded box can't flake the check).
    let (p99_min, p99_max) = (p99s[0], *p99s.last().unwrap());
    let flat = p99_max <= (3.0 * p99_min).max(5e-6);
    println!(
        "\ncheck (a) flat decide path: p99 {:.0} ns @ {} models vs {:.0} ns @ {} models — {}",
        1e9 * p99_max,
        sizes.last().unwrap(),
        1e9 * p99_min,
        sizes[0],
        if flat { "PASS" } else { "FAIL" }
    );
    assert!(flat, "decide p99 grew with catalog size");

    // ── 2. Persisted warm-load vs cold re-planning ──────────────────────
    // Measured with the O(k³) Hungarian planner (Module 2): re-deriving
    // exact plans is the expensive restart work the artifact exists to
    // skip. The group heuristic's planning is deliberately near-free, so
    // it would mostly measure shared registration overhead instead.
    let cold_repo = ModelRepository::new(Box::new(MunkresPlanner));
    let t0 = Instant::now();
    cold_repo.register_all_scoped(
        catalog(warm_size),
        &cost,
        threads(),
        PlanScope::Window(WINDOW),
        None,
    );
    let cold_s = t0.elapsed().as_secs_f64();
    let cold_plans = cold_repo.planner_invocations();
    // Round-trip the artifact through its serialized form, exactly what a
    // restarted node reads back from disk.
    let artifact = PlanArtifact::from_json(&cold_repo.export_plan_artifact().to_json())
        .expect("persisted artifact round-trips");
    // Warm restarts are fast enough that one scheduling hiccup can skew
    // a single measurement — take the best of three fresh restarts.
    let mut warm_s = f64::INFINITY;
    let mut warm_repo = ModelRepository::new(Box::new(MunkresPlanner));
    for _ in 0..3 {
        let repo = ModelRepository::new(Box::new(MunkresPlanner));
        let t0 = Instant::now();
        repo.register_all_scoped(
            catalog(warm_size),
            &cost,
            threads(),
            PlanScope::Window(WINDOW),
            Some(&artifact),
        );
        warm_s = warm_s.min(t0.elapsed().as_secs_f64());
        warm_repo = repo;
    }
    let speedup = cold_s / warm_s;
    println!(
        "\nWarm-load at {} models: cold {} ({} planner calls) vs warm {} — {:.1}x, {} planner calls",
        warm_size,
        fmt_s(cold_s),
        cold_plans,
        fmt_s(warm_s),
        speedup,
        warm_repo.planner_invocations(),
    );
    // Machine check (b): the persisted cache must make restarts ≥ 10×
    // faster and skip the planner entirely. The CI smoke's catalog is
    // small enough that fixed registration overhead blurs the ratio on a
    // loaded box, so it gets a relaxed floor; the full run holds 10×.
    let need = if small { 4.0 } else { 10.0 };
    assert_eq!(
        warm_repo.planner_invocations(),
        0,
        "warm registration must never invoke the planner"
    );
    assert!(
        speedup >= need,
        "warm load only {speedup:.1}x faster than cold planning (need >= {need}x)"
    );
    // And the warm repository must decide exactly like the cold one.
    let probe = ["nasbench-00000", "nasbench-00001"];
    let (c, w) = (
        cold_repo.decide(probe[0], probe[1]).expect("planned pair"),
        warm_repo.decide(probe[0], probe[1]).expect("planned pair"),
    );
    assert_eq!(c.is_transform(), w.is_transform());
    assert_eq!(c.latency().to_bits(), w.latency().to_bits());
    println!("check (b) warm restart: PASS");

    // ── 3. Decisions are bit-identical across shard counts ──────────────
    let shard_counts = [1usize, 4, 16, 64];
    let mut rng = Rng(0x5EED);
    let pair_sample: Vec<(usize, usize)> = (0..2_000)
        .map(|_| (rng.below(equiv_size), rng.below(equiv_size)))
        .collect();
    let mut repo = ModelRepository::new(Box::new(GroupPlanner)).with_shards(shard_counts[0]);
    repo.register_all_scoped(
        catalog(equiv_size),
        &cost,
        threads(),
        PlanScope::Window(WINDOW),
        None,
    );
    let names: Vec<String> = (0..equiv_size)
        .map(|i| format!("nasbench-{i:05}"))
        .collect();
    let decisions = |repo: &ModelRepository| -> Vec<Option<(bool, u64)>> {
        pair_sample
            .iter()
            .map(|&(s, d)| {
                repo.decide(&names[s], &names[d])
                    .map(|dec| (dec.is_transform(), dec.latency().to_bits()))
            })
            .collect()
    };
    let baseline = decisions(&repo);
    let mut identical = true;
    for &k in &shard_counts[1..] {
        repo = repo.with_shards(k);
        assert_eq!(repo.shard_count(), k);
        identical &= decisions(&repo) == baseline;
    }
    println!(
        "\ncheck (c) shard transparency over {:?} shards, {} sampled pairs: {}",
        shard_counts,
        pair_sample.len(),
        if identical { "PASS" } else { "FAIL" }
    );
    assert!(
        identical,
        "sharded decisions diverged from the single-map baseline"
    );

    // ── 4. Reader throughput vs shard count ─────────────────────────────
    let readers = threads().clamp(2, 8);
    println!("\nDecide throughput, {readers} reader threads, {equiv_size}-model catalog\n");
    let mut trows = Vec::new();
    let mut sweep_json = Vec::new();
    for &k in &shard_counts {
        repo = repo.with_shards(k);
        let ops = reader_throughput(&repo, equiv_size, readers, reader_iters);
        trows.push(vec![k.to_string(), format!("{:.2} M ops/s", ops / 1e6)]);
        sweep_json.push(serde_json::json!({"shards": k, "ops_per_s": ops}));
    }
    print_table(&["Shards", "Throughput"], &trows);

    save_results(
        if small {
            "exp_catalog_scale_small"
        } else {
            "exp_catalog_scale"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "available_parallelism": threads(),
            "window": WINDOW,
            "decide_scaling": scale_json,
            "checks": {
                "flat_decide_p99": flat,
                "warm_speedup": speedup,
                "warm_planner_invocations": warm_repo.planner_invocations(),
                "cold_planner_invocations": cold_plans,
                "shards_bit_identical": identical,
            },
            "reader_sweep": {
                "readers": readers,
                "catalog": equiv_size,
                "throughput": sweep_json,
            },
        }),
    );
}
