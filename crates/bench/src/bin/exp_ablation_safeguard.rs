//! Ablation — the §4.4 safeguard: compare the standard safeguard
//! (transform only when cheaper than loading) against "always transform"
//! and "never transform", measuring average and worst-case start latency.

use std::sync::Arc;

use optimus_bench::{fmt_s, print_table, save_results};
use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus_workload::PoissonGenerator;

fn build_repo(safeguard_ratio: f64) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner)).with_safeguard_ratio(safeguard_ratio);
    let cost = CostModel::default();
    // A deliberately heterogeneous population: transformations between
    // distant members can exceed the scratch-load cost, which is exactly
    // the case the safeguard exists for.
    for m in [
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::mobilenet::mobilenet_v1(0.25, 0),
        optimus_zoo::mobilenet::mobilenet_v2(1.0, 0),
        optimus_zoo::densenet::densenet121(),
        optimus_zoo::xception::xception(),
        optimus_zoo::inception::inception_v1(),
        optimus_zoo::resnet::resnet101(),
    ] {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn main() {
    println!("Ablation: the safeguard (§4.4 Module 3)\n");
    let cases = [
        ("never transform (ratio 0)", 0.0),
        ("safeguard (ratio 1, paper)", 1.0),
        ("always transform (ratio ∞)", f64::MAX),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, ratio) in cases {
        let repo = build_repo(ratio);
        let functions = repo.model_names();
        let trace = PoissonGenerator::new(0.004, 86_400.0, 31).generate(&functions);
        let config = SimConfig {
            nodes: 1,
            capacity_per_node: 4,
            placement: PlacementStrategy::Hash,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo).run(&trace);
        // Worst single non-warm start latency (init + load).
        let worst = report
            .records
            .iter()
            .filter(|r| r.kind != StartKind::Warm)
            .map(|r| r.init + r.load)
            .fold(0.0, f64::max);
        rows.push(vec![
            name.to_string(),
            fmt_s(report.avg_service_time()),
            fmt_s(worst),
        ]);
        json.push(serde_json::json!({
            "mode": name,
            "ratio": if ratio == f64::MAX { -1.0 } else { ratio },
            "avg_service_time": report.avg_service_time(),
            "worst_start": worst,
        }));
    }
    print_table(&["Mode", "Avg service (s)", "Worst start (s)"], &rows);
    println!(
        "\nExpected: the safeguard matches 'always transform' on average \
         while capping the worst case at the scratch-load latency — \
         'the performance of Optimus can be guaranteed in the worst case'."
    );
    save_results(
        "exp_ablation_safeguard",
        &serde_json::json!({ "rows": json }),
    );
}
