//! Ablation — planner choice end to end: register the model population
//! under the naive / group / Munkres planners and compare both the offline
//! planning cost (registration time) and the resulting online service time
//! of the Optimus policy.

use std::sync::Arc;
use std::time::Instant;

use optimus_bench::{fmt_s, print_table, save_results};
use optimus_core::{GroupPlanner, ModelRepository, MunkresPlanner, NaivePlanner, Planner};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};
use optimus_workload::PoissonGenerator;

fn population() -> Vec<optimus_model::ModelGraph> {
    vec![
        optimus_zoo::vgg::vgg11(),
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::resnet::resnet34(),
        optimus_zoo::resnet::resnet50(),
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        optimus_zoo::mobilenet::mobilenet_v1(0.5, 0),
        optimus_zoo::mobilenet::mobilenet_v2(1.0, 0),
        optimus_zoo::densenet::densenet121(),
        optimus_zoo::inception::inception_v1(),
        optimus_zoo::xception::xception(),
    ]
}

fn main() {
    let planners: Vec<(&str, Box<dyn Planner + Send + Sync>)> = vec![
        ("naive (delete+add)", Box::new(NaivePlanner)),
        ("group (Module 2+)", Box::new(GroupPlanner)),
        ("munkres (Module 2)", Box::new(MunkresPlanner)),
    ];
    println!("Ablation: planner choice — offline registration vs online latency\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, planner) in planners {
        let repo = ModelRepository::new(planner);
        let cost = CostModel::default();
        let t0 = Instant::now();
        for m in population() {
            repo.register(m, &cost);
        }
        let registration = t0.elapsed().as_secs_f64();
        let repo = Arc::new(repo);
        let functions = repo.model_names();
        let trace = PoissonGenerator::new(0.004, 86_400.0, 13).generate(&functions);
        let config = SimConfig {
            nodes: 1,
            capacity_per_node: 5,
            placement: PlacementStrategy::Hash,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo).run(&trace);
        rows.push(vec![
            name.to_string(),
            format!("{:.2} s", registration),
            fmt_s(report.avg_service_time()),
            fmt_s(report.percentile_service_time(99.0)),
        ]);
        json.push(serde_json::json!({
            "planner": name,
            "registration_s": registration,
            "avg_service_time": report.avg_service_time(),
        }));
    }
    print_table(
        &["Planner", "Plan-cache build", "Avg service (s)", "p99 (s)"],
        &rows,
    );
    println!(
        "\nExpected: naive plans make every transformation as costly as a \
         scratch load (the safeguard caps it there), so its online latency \
         is the worst; group ≈ munkres online, but group builds the cache \
         orders of magnitude faster."
    );
    save_results("exp_ablation_planner", &serde_json::json!({ "rows": json }));
}
