//! Figure 2 — request processing time for VGG and ResNet in serverless ML
//! inference: per-step latency, step percentages, and the params/size
//! table (Figure 2c).

use optimus_bench::{fmt_pct, fmt_s, print_table, save_results};
use optimus_profile::{CostModel, CostProvider, Environment, PlatformProfile};

fn main() {
    let cost = CostModel::default();
    let plat = PlatformProfile::new(Environment::Cpu);
    let models = [
        optimus_zoo::vgg::vgg11(),
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::resnet::resnet50(),
        optimus_zoo::resnet::resnet101(),
        optimus_zoo::resnet::resnet152(),
    ];

    println!("Figure 2(a/b): cold request processing time and step breakdown\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for m in &models {
        let init = plat.cold_init();
        let load = cost.model_load_cost(m);
        let compute = plat.compute_cost(m);
        let total = init + load + compute;
        rows.push(vec![
            m.name().to_string(),
            fmt_s(total),
            format!("{} ({})", fmt_s(init), fmt_pct(init / total)),
            format!("{} ({})", fmt_s(load), fmt_pct(load / total)),
            format!("{} ({})", fmt_s(compute), fmt_pct(compute / total)),
        ]);
        json.push(serde_json::json!({
            "model": m.name(),
            "total_s": total,
            "init_s": init,
            "load_s": load,
            "compute_s": compute,
        }));
    }
    print_table(
        &["Model", "Total (s)", "Init", "Model loading", "Inference"],
        &rows,
    );

    println!("\nFigure 2(c): number of parameters and size of varying models\n");
    let mut rows = Vec::new();
    for m in &models {
        let stats = optimus_model::ModelStats::of(m);
        rows.push(vec![
            m.name().to_string(),
            format!("{:.1}M", stats.params_millions()),
            format!("{:.0} MB", stats.size_mib()),
            format!("{}", stats.ops),
        ]);
    }
    print_table(&["Model", "Params", "Size", "Ops"], &rows);

    println!(
        "\nPaper check: model loading dominates (>50% of total); loading \
         scales with layer count, not parameter count."
    );
    save_results("exp_fig2", &serde_json::json!({ "rows": json }));
}
