//! Figure 12 — large-scale evaluation: 500 random transformation cases and
//! 500 scratch loads, for the Imgclsmob-style catalog and for NAS-Bench-201.

use optimus_bench::{fmt_s, print_table, save_results, transform_latency};
use optimus_profile::{CostModel, CostProvider};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stats(v: &[f64]) -> (f64, f64, f64) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(0.0, f64::max);
    (mean, min, max)
}

fn main() {
    let cost = CostModel::default();
    let cases = 500usize;
    let mut rng = StdRng::seed_from_u64(2024);

    // --- Imgclsmob-style catalog ---
    let catalog = optimus_zoo::imgclsmob_catalog();
    let mut transform = Vec::with_capacity(cases);
    let mut load = Vec::with_capacity(cases);
    for _ in 0..cases {
        let i = rng.gen_range(0..catalog.len());
        let mut j = rng.gen_range(0..catalog.len());
        while j == i {
            j = rng.gen_range(0..catalog.len());
        }
        let src = catalog[i].build();
        let dst = catalog[j].build();
        transform.push(transform_latency(&src, &dst, &cost));
    }
    for _ in 0..cases {
        let j = rng.gen_range(0..catalog.len());
        load.push(cost.model_load_cost(&catalog[j].build()));
    }
    let (tm, tmin, tmax) = stats(&transform);
    let (lm, lmin, lmax) = stats(&load);
    println!("Figure 12(a/b): Imgclsmob — {cases} transformations vs {cases} loads\n");
    print_table(
        &["Case", "Mean (s)", "Min (s)", "Max (s)"],
        &[
            vec!["Transformation".into(), fmt_s(tm), fmt_s(tmin), fmt_s(tmax)],
            vec!["Loading".into(), fmt_s(lm), fmt_s(lmin), fmt_s(lmax)],
        ],
    );
    let imgcls_reduction = 1.0 - tm / lm;
    println!(
        "Latency reduction: {:.2}% (paper: 52.88%)\n",
        100.0 * imgcls_reduction
    );

    // --- NAS-Bench-201 ---
    let mut transform_nb = Vec::with_capacity(cases);
    let mut load_nb = Vec::with_capacity(cases);
    for _ in 0..cases {
        let i = rng.gen_range(0..optimus_zoo::NASBENCH_SPACE_SIZE);
        let mut j = rng.gen_range(0..optimus_zoo::NASBENCH_SPACE_SIZE);
        while j == i {
            j = rng.gen_range(0..optimus_zoo::NASBENCH_SPACE_SIZE);
        }
        let src = optimus_zoo::nasbench_model(i);
        let dst = optimus_zoo::nasbench_model(j);
        transform_nb.push(transform_latency(&src, &dst, &cost));
    }
    for _ in 0..cases {
        let j = rng.gen_range(0..optimus_zoo::NASBENCH_SPACE_SIZE);
        load_nb.push(cost.model_load_cost(&optimus_zoo::nasbench_model(j)));
    }
    let (tm2, tmin2, tmax2) = stats(&transform_nb);
    let (lm2, lmin2, lmax2) = stats(&load_nb);
    println!("Figure 12(c/d): NAS-Bench-201 — {cases} transformations vs {cases} loads\n");
    print_table(
        &["Case", "Mean (s)", "Min (s)", "Max (s)"],
        &[
            vec![
                "Transformation".into(),
                fmt_s(tm2),
                fmt_s(tmin2),
                fmt_s(tmax2),
            ],
            vec!["Loading".into(), fmt_s(lm2), fmt_s(lmin2), fmt_s(lmax2)],
        ],
    );
    let nb_reduction = 1.0 - tm2 / lm2;
    println!(
        "Latency reduction: {:.2}% (paper: 94.48%; paper loading mean 1.45 s)",
        100.0 * nb_reduction
    );
    save_results(
        "exp_fig12",
        &serde_json::json!({
            "imgclsmob": {
                "transform": transform, "load": load,
                "reduction": imgcls_reduction,
            },
            "nasbench": {
                "transform": transform_nb, "load": load_nb,
                "reduction": nb_reduction,
            },
        }),
    );
}
