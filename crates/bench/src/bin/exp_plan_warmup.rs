//! Plan-cache warmup scaling — catalog size × worker threads.
//!
//! Seeds the BENCH trajectory for the offline planning path (§4.4
//! Module 3): full-catalog registration is an O(N²) sweep of pairwise
//! plans, and this experiment measures how its wall-clock scales with the
//! `register_all` worker-pool width, plus two properties the parallel
//! pipeline must preserve:
//!
//! 1. **Equivalence** — the parallel plan cache is byte-identical (after
//!    zeroing volatile host-timing fields) to sequential registration.
//! 2. **Non-blocking** — `decide()` readers keep answering while a bulk
//!    registration runs on another thread; the maximum observed reader
//!    latency is reported next to the warmup duration it overlapped.
//!
//! A third section micro-benchmarks the Hungarian kernel itself: the flat
//! row-major buffer + reusable scratch against the original
//! `Vec<Vec<f64>>` implementation.
//!
//! Run with `--small` for the CI configuration (tiny catalog, 2 threads).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use optimus_bench::{figure13_models, fmt_s, print_table, save_results};
use optimus_core::{
    solve_assignment, solve_assignment_flat, GroupPlanner, ModelRepository, MunkresScratch,
};
use optimus_model::ModelGraph;
use optimus_profile::CostModel;

fn build_sequential(models: &[ModelGraph], cost: &CostModel) -> ModelRepository {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    for m in models {
        repo.register(m.clone(), cost);
    }
    repo
}

fn warmup_seconds(models: &[ModelGraph], cost: &CostModel, threads: usize, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let t0 = Instant::now();
        repo.register_all_with_threads(models.to_vec(), cost, threads);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Max `decide()` latency observed by a reader thread while a bulk
/// registration runs concurrently; returns `(warmup_s, max_decide_s)`.
fn reader_stall(models: &[ModelGraph], cost: &CostModel, threads: usize) -> (f64, f64) {
    // Pre-register two models so the reader has a live pair to probe.
    let repo = Arc::new(ModelRepository::new(Box::new(GroupPlanner)));
    let (probe, rest) = models.split_at(2.min(models.len()));
    repo.register_all_with_threads(probe.to_vec(), cost, threads);
    let src = probe[0].name().to_string();
    let dst = probe[probe.len() - 1].name().to_string();
    let done = AtomicBool::new(false);
    let mut warmup = 0.0;
    let mut max_decide = 0.0f64;
    crossbeam::thread::scope(|s| {
        let writer = s.spawn(|_| {
            let t0 = Instant::now();
            repo.register_all_with_threads(rest.to_vec(), cost, threads);
            done.store(true, Ordering::Release);
            t0.elapsed().as_secs_f64()
        });
        let reader = s.spawn(|_| {
            let mut worst = 0.0f64;
            while !done.load(Ordering::Acquire) {
                let t = Instant::now();
                let d = repo.decide(&src, &dst);
                worst = worst.max(t.elapsed().as_secs_f64());
                assert!(d.is_some(), "pre-registered pair must stay decidable");
            }
            worst
        });
        warmup = writer.join().expect("writer");
        max_decide = reader.join().expect("reader");
    })
    .expect("stall probe threads");
    (warmup, max_decide)
}

fn kernel_bench(k: usize, solves: usize) -> (f64, f64) {
    let mut state: u64 = 0x9E3779B97F4A7C15 ^ k as u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    let flat: Vec<f64> = (0..k * k).map(|_| next() * 100.0).collect();
    let nested: Vec<Vec<f64>> = flat.chunks(k).map(<[f64]>::to_vec).collect();
    let t0 = Instant::now();
    for _ in 0..solves {
        std::hint::black_box(solve_assignment(&nested));
    }
    let nested_s = t0.elapsed().as_secs_f64() / solves as f64;
    let mut scratch = MunkresScratch::with_capacity(k);
    let t1 = Instant::now();
    for _ in 0..solves {
        std::hint::black_box(solve_assignment_flat(&flat, k, &mut scratch));
    }
    let flat_s = t1.elapsed().as_secs_f64() / solves as f64;
    (nested_s, flat_s)
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cost = CostModel::default();
    let all = figure13_models();
    let (catalog_sizes, thread_counts, repeats, kernel_dims, kernel_solves) = if small {
        (vec![8usize], vec![1usize, 2], 1usize, vec![64usize], 5usize)
    } else {
        (
            vec![10usize, 20, all.len()],
            vec![1usize, 2, 4, 8],
            3usize,
            vec![64usize, 128, 256],
            10usize,
        )
    };

    println!("Plan-cache warmup scaling (catalog size × worker threads)\n");
    let mut rows = Vec::new();
    let mut warmup_json = Vec::new();
    for &size in &catalog_sizes {
        let models = &all[..size.min(all.len())];
        let baseline = warmup_seconds(models, &cost, 1, repeats);
        for &threads in &thread_counts {
            let secs = if threads == 1 {
                baseline
            } else {
                warmup_seconds(models, &cost, threads, repeats)
            };
            let speedup = baseline / secs;
            rows.push(vec![
                size.to_string(),
                threads.to_string(),
                fmt_s(secs),
                format!("{speedup:.2}x"),
            ]);
            warmup_json.push(serde_json::json!({
                "catalog": size,
                "threads": threads,
                "warmup_s": secs,
                "speedup_vs_sequential": speedup,
            }));
        }
    }
    print_table(&["Catalog", "Threads", "Warmup (s)", "Speedup"], &rows);

    // Equivalence: parallel registration must publish the exact plan set
    // sequential registration would.
    let eq_models = &all[..catalog_sizes[0].min(all.len())];
    let seq = build_sequential(eq_models, &cost)
        .snapshot()
        .canonicalized()
        .to_json();
    let par_repo = ModelRepository::new(Box::new(GroupPlanner));
    par_repo.register_all_with_threads(eq_models.to_vec(), &cost, *thread_counts.last().unwrap());
    let par = par_repo.snapshot().canonicalized().to_json();
    let identical = seq == par;
    println!(
        "\nparallel vs sequential plan cache: {}",
        if identical {
            "byte-identical"
        } else {
            "MISMATCH"
        }
    );
    assert!(identical, "parallel registration diverged from sequential");

    // Reader stall while a warmup runs concurrently.
    let stall_threads = *thread_counts.last().unwrap();
    let (stall_warmup, max_decide) = reader_stall(&all, &cost, stall_threads);
    println!(
        "decide() readers during a {:.3} s warmup: max latency {:.6} s",
        stall_warmup, max_decide
    );

    println!("\nHungarian kernel: flat buffer + scratch vs nested Vec<Vec<f64>>\n");
    let mut krows = Vec::new();
    let mut kernel_json = Vec::new();
    for &k in &kernel_dims {
        let (nested_s, flat_s) = kernel_bench(k, kernel_solves);
        krows.push(vec![
            format!("{k}x{k}"),
            format!("{:.3} ms", 1e3 * nested_s),
            format!("{:.3} ms", 1e3 * flat_s),
            format!("{:.2}x", nested_s / flat_s),
        ]);
        kernel_json.push(serde_json::json!({
            "dim": k,
            "nested_s": nested_s,
            "flat_s": flat_s,
            "speedup": nested_s / flat_s,
        }));
    }
    print_table(&["Matrix", "Nested", "Flat+scratch", "Speedup"], &krows);

    // The small CI configuration writes to its own file so a smoke run
    // never clobbers the committed full-sweep results.
    save_results(
        if small {
            "exp_plan_warmup_small"
        } else {
            "exp_plan_warmup"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "available_parallelism":
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            "warmup": warmup_json,
            "plans_identical_to_sequential": identical,
            "reader_stall": {
                "threads": stall_threads,
                "warmup_s": stall_warmup,
                "max_decide_s": max_decide,
            },
            "kernel": kernel_json,
        }),
    );
}
