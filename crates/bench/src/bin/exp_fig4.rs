//! Figure 4 — loading latency for varying operations in ResNet50:
//! per-kind means plus the CONV shape sweep the paper highlights.

use optimus_bench::{fmt_s, print_table, save_results};
use optimus_model::{OpAttrs, Padding};
use optimus_profile::{CostModel, CostProvider, Profiler};

fn main() {
    let cost = CostModel::default();
    let model = optimus_zoo::resnet::resnet50();
    let profiles = Profiler::new(&cost).profile_ops(&[&model]);

    println!("Figure 4: per-operation loading latency in ResNet50 (structure + weights)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (kind, p) in &profiles {
        rows.push(vec![
            kind.to_string(),
            format!("{}", p.samples),
            format!("{:.2} ms", 1e3 * (p.mean_structure + p.mean_assign)),
            format!("{:.2} ms", 1e3 * p.min_structure),
            format!("{:.2} ms", 1e3 * p.max_structure),
        ]);
        json.push(serde_json::json!({
            "kind": kind.to_string(),
            "samples": p.samples,
            "mean_total_ms": 1e3 * (p.mean_structure + p.mean_assign),
        }));
    }
    print_table(
        &[
            "Operation",
            "Count",
            "Mean load",
            "Min struct",
            "Max struct",
        ],
        &rows,
    );

    println!("\nCONV shape sweep (kernel 3x3, growing output channels):\n");
    let conv = |out: usize| OpAttrs::Conv2d {
        in_channels: out,
        out_channels: out,
        kernel: (3, 3),
        stride: (1, 1),
        padding: Padding::Same,
        groups: 1,
        bias: true,
    };
    let base = cost.structure_cost(&conv(64));
    let mut rows = Vec::new();
    for out in [64usize, 128, 256, 512] {
        let c = cost.structure_cost(&conv(out));
        rows.push(vec![
            format!("CONV 3x3, {out}"),
            fmt_s(c),
            format!("{:.2}x", c / base),
        ]);
    }
    print_table(&["Operation", "Structure load (s)", "vs 3x3/64"], &rows);
    println!(
        "\nPaper reference: CONV ≈ 10x activation; CONV 3x3/512 costs \
         78.67% more than CONV 3x3/64."
    );
    save_results("exp_fig4", &serde_json::json!({ "kinds": json }));
}
