//! Figure 16 — average service time on a GPU-enabled server.
//!
//! Same setup as Figure 13 but the nodes carry the GPU environment
//! profile: higher runtime-init and load costs, faster compute.

use optimus_bench::{
    build_repo, figure13_models, fmt_pct, fmt_s, print_table, run_all_policies, save_results,
    workloads,
};
use optimus_profile::Environment;
use optimus_sim::{Policy, SimConfig};

fn main() {
    let duration: f64 = std::env::args()
        .skip_while(|a| a != "--duration")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(86_400.0);
    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!("registering {} models (GPU profile)...", names.len());
    let repo = build_repo(models, Environment::Gpu);
    let config = SimConfig {
        env: Environment::Gpu,
        ..SimConfig::default()
    };

    println!("Figure 16: average service time (s) with GPU support\n");
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for (wname, trace) in workloads(&names, duration, 7) {
        eprintln!("running {wname} ({} requests)...", trace.len());
        let results = run_all_policies(&config, &repo, &trace);
        let optimus = results
            .iter()
            .find(|(p, _)| *p == Policy::Optimus)
            .map(|(_, r)| r.avg_service_time())
            .expect("optimus ran");
        let mut row = vec![wname.clone()];
        let mut per_system = serde_json::Map::new();
        for (policy, report) in &results {
            let avg = report.avg_service_time();
            let cell = if *policy == Policy::Optimus {
                fmt_s(avg)
            } else {
                format!("{} (-{})", fmt_s(avg), fmt_pct(1.0 - optimus / avg))
            };
            row.push(cell);
            per_system.insert(
                policy.name().to_string(),
                serde_json::json!({ "avg_service_time": avg }),
            );
        }
        rows.push(row);
        json.insert(wname, serde_json::Value::Object(per_system));
    }
    print_table(
        &["Workload", "OpenWhisk", "Pagurus", "Tetris", "Optimus"],
        &rows,
    );
    println!(
        "\nPaper: Optimus reduces GPU inference latency by 26.93%–57.08%; \
         GPU latencies exceed CPU because of GPU runtime init and loading."
    );
    save_results("exp_fig16", &serde_json::Value::Object(json));
}
