//! Figure 11 — inter-function model transformation latency between 21
//! representative models (16 CNNs + 5 BERTs), plus the scratch-load row.
//!
//! Cell (i, j) = latency of transforming model i into model j; the
//! diagonal uses a weight variant of the same structure; the final row is
//! loading model j from scratch.
//!
//! `--threads <n>` plans the 21×21 matrix cells in parallel; the matrix
//! is assembled in index order, so the output is byte-identical at any
//! thread count.

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{figure11_models, print_table, save_results, transform_latency};
use optimus_profile::{CostModel, CostProvider};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = threads_arg(&args);
    let cost = CostModel::default();
    let models = figure11_models();
    let n = models.len();
    println!("Figure 11: transformation latency (s) between {n} representative models\n");

    let cells: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    let values = run_grid(&cells, threads, |&(i, j)| {
        if i == j {
            // Same structure, different weights (the Figure 11
            // diagonal): transform to a weight variant.
            let variant = variant_of(&models[j]);
            transform_latency(&models[i], &variant, &cost)
        } else {
            transform_latency(&models[i], &models[j], &cost)
        }
    });
    let mut matrix = vec![vec![0.0f64; n]; n + 1];
    for (&(i, j), v) in cells.iter().zip(values) {
        matrix[i][j] = v;
    }
    for (j, dst) in models.iter().enumerate() {
        matrix[n][j] = cost.model_load_cost(dst);
    }

    // Short labels for a readable table.
    let labels: Vec<String> = models.iter().map(|m| shorten(m.name())).collect();
    let mut headers: Vec<String> = vec!["from \\ to".into()];
    headers.extend(labels.clone());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        let mut cells = vec![if i < n {
            labels[i].clone()
        } else {
            "LOAD".to_string()
        }];
        cells.extend(row.iter().map(|v| format!("{v:.2}")));
        rows.push(cells);
    }
    print_table(&header_refs, &rows);

    // Headline statistics.
    let mut best_reduction: f64 = 0.0;
    let mut same_family = Vec::new();
    let mut cross_family = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let load = matrix[n][j];
            best_reduction = best_reduction.max(1.0 - matrix[i][j] / load);
            if models[i].family() == models[j].family() {
                same_family.push(matrix[i][j] / load);
            } else {
                cross_family.push(matrix[i][j] / load);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nBest transformation saving vs scratch load: {:.2}% (paper: up to 99.08%)",
        100.0 * best_reduction
    );
    println!(
        "Mean transform/load ratio — same family: {:.3}, cross family: {:.3}",
        mean(&same_family),
        mean(&cross_family)
    );
    save_results(
        "exp_fig11",
        &serde_json::json!({
            "labels": labels,
            "matrix": matrix,
            "best_reduction": best_reduction,
        }),
    );
}

fn variant_of(m: &optimus_model::ModelGraph) -> optimus_model::ModelGraph {
    // Rebuild the same structure with a different weight seed by name.
    let name = m.name();
    if let Some(entry) = optimus_zoo::find(name) {
        use optimus_zoo::catalog::ModelSpec;
        let spec = match entry.spec {
            ModelSpec::Vgg(d, w, _) => ModelSpec::Vgg(d, w, 9),
            ModelSpec::ResNet(d, w, _) => ModelSpec::ResNet(d, w, 9),
            ModelSpec::DenseNet(d, _) => ModelSpec::DenseNet(d, 9),
            ModelSpec::MobileNet(v, a, _) => ModelSpec::MobileNet(v, a, 9),
            ModelSpec::Xception(_) => ModelSpec::Xception(9),
            ModelSpec::Inception(_) => ModelSpec::Inception(9),
            ModelSpec::Bert(cfg) => ModelSpec::Bert(cfg.variant(9)),
            ModelSpec::NasBench(i, _) => ModelSpec::NasBench(i, 9),
            ModelSpec::SqueezeNet(_) => ModelSpec::SqueezeNet(9),
            ModelSpec::ResNeXt(d, _) => ModelSpec::ResNeXt(d, 9),
            ModelSpec::WideResNet(d, k, _) => ModelSpec::WideResNet(d, k, 9),
            ModelSpec::EfficientNet(w, dm, _) => ModelSpec::EfficientNet(w, dm, 9),
            ModelSpec::TextRnn(c, l, h, _) => ModelSpec::TextRnn(c, l, h, 9),
        };
        spec.build()
    } else if name.starts_with("bert") {
        // BERT task variants are not in the catalog; rebuild via the zoo.
        let cfgs = optimus_zoo::catalog::bert_configs();
        let cfg = cfgs
            .into_iter()
            .find(|c| c.name() == name)
            .expect("figure11 BERT config exists");
        optimus_zoo::bert(cfg.variant(9))
    } else {
        panic!("unknown figure11 model '{name}'");
    }
}

fn shorten(name: &str) -> String {
    name.replace("mobilenet_", "mbn")
        .replace("densenet", "dnet")
        .replace("resnet", "rnet")
        .replace("inception_v1", "incep")
        .replace("bert-", "b-")
        .replace("-uncased", "")
        .replace("-a0.50-v0", "-0.5")
        .chars()
        .take(12)
        .collect()
}
