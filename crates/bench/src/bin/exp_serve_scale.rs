//! Serving-front-end scaling — pooled keep-alive core vs the
//! thread-per-connection baseline, over real TCP.
//!
//! An open-loop load generator drives a live `HttpServer` (real sockets,
//! real HTTP/1.1) along a trajectory of increasing connection counts and
//! offered rates, once per front-end mode:
//!
//! * **thread-per-conn** — the legacy front end: every request opens a
//!   fresh connection, the server spawns a thread per accept and blocks
//!   it on inference (`Connection: close`).
//! * **pooled** — the production core: persistent keep-alive
//!   connections, sharded accept loops, a fixed HTTP worker pool that
//!   never blocks on inference, per-model batching at the serving
//!   workers, and bounded admission queues that shed overload with 429.
//!
//! Every client schedules arrivals on a fixed clock (open loop): latency
//! is measured from the *scheduled* send time, so a front end that falls
//! behind accumulates backlog into its tail instead of silently slowing
//! the generator down. Per point the harness records goodput (200s per
//! second of wall clock), p50/p99/p999 latency over successful requests,
//! and the 429 count.
//!
//! Machine-checked:
//! * bookkeeping — every scheduled request is accounted for
//!   (`sent == ok + rejected + errors`) in both modes, and the pooled
//!   core never drops a connection (`errors == 0`);
//! * backpressure — at the top of the trajectory the pooled core sheds
//!   load with 429s while the p99 of *admitted* requests stays bounded
//!   (no unbounded queue growth);
//! * (full run only) goodput — the pooled core sustains ≥ 5× the
//!   thread-per-connection goodput at equal-or-better p99, and a repeat
//!   of the peak point reproduces its goodput within noise bounds.
//!
//! Optional args: `--small` (CI configuration), `--duration <seconds>`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use optimus_bench::{print_table, save_results};
use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{
    FrontendMode, Gateway, GatewayConfig, HttpConfig, HttpServer, MetricsRegistry, ServingConfig,
};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Tiny CNN with a 4-logit head: the pooled head keeps the response
/// JSON small so the experiment measures the front end, not float
/// serialization.
fn tiny(name: &str, out_ch: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let x = b.input([1, 3, 8, 8]);
    let x = b.conv2d_after(x, 3, out_ch, (3, 3), (1, 1), 1);
    let x = b.activation_after(x, Activation::Relu);
    let x = b.global_avg_pool_after(x);
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, out_ch, 4);
    b.finish().unwrap()
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    ThreadPerConn,
    Pooled,
}

impl Mode {
    const ALL: [Mode; 2] = [Mode::ThreadPerConn, Mode::Pooled];

    fn name(self) -> &'static str {
        match self {
            Mode::ThreadPerConn => "thread-per-conn",
            Mode::Pooled => "pooled",
        }
    }

    fn frontend(self) -> FrontendMode {
        match self {
            Mode::ThreadPerConn => FrontendMode::ThreadPerConn,
            Mode::Pooled => FrontendMode::Pooled,
        }
    }
}

/// One trajectory point: `conns` client connections offering `offered`
/// requests per second in aggregate.
#[derive(Clone, Copy)]
struct Point {
    conns: usize,
    offered: f64,
}

#[derive(Clone)]
struct PointResult {
    mode: &'static str,
    conns: usize,
    offered: f64,
    sent: usize,
    ok: usize,
    rejected: usize,
    errors: usize,
    elapsed_s: f64,
    goodput: f64,
    // Latency from the *scheduled* send time (open loop, corrected for
    // coordinated omission): a front end that falls behind accumulates
    // its backlog into this tail.
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    // On-wire round trip from the actual send: what a single admitted
    // request experiences at the server, independent of generator debt.
    rtt_p50_ms: f64,
    rtt_p99_ms: f64,
}

/// Read one HTTP response off a persistent connection (status line,
/// headers for `Content-Length`, body). Returns the status code.
fn read_keep_alive_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<u16> {
    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(std::io::ErrorKind::UnexpectedEof.into());
    }
    let code = status
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(std::io::ErrorKind::InvalidData)?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(code)
}

fn connect(addr: SocketAddr) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(20)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

/// Status code of a `Connection: close` exchange on a fresh connection.
fn oneshot_request(addr: SocketAddr, raw: &[u8]) -> std::io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(20)))?;
    stream.write_all(raw)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::ErrorKind::InvalidData.into())
}

fn infer_request(model: &str, keep_alive: bool) -> Vec<u8> {
    let body = format!(r#"{{"model":"{model}","shape":[1,3,8,8]}}"#);
    format!(
        "POST /infer HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        body
    )
    .into_bytes()
}

/// Drive one trajectory point: `conns` client threads, each sending its
/// share of the offered rate on a fixed open-loop schedule. Requests
/// alternate between the two registered models so both serving nodes see
/// traffic and the batching window has same-model runs to group.
fn run_point(addr: SocketAddr, mode: Mode, point: Point, duration: f64) -> PointResult {
    let per_conn = point.offered / point.conns as f64;
    let interval = Duration::from_secs_f64(1.0 / per_conn);
    let requests_per_conn = ((duration * per_conn).round() as usize).max(1);
    // Pre-rendered request bytes (one per model) shared by every client.
    let raw: Arc<[Vec<u8>; 2]> = Arc::new([
        infer_request("ma", mode == Mode::Pooled),
        infer_request("mb", mode == Mode::Pooled),
    ]);

    let start = Instant::now() + Duration::from_millis(50);
    let mut clients = Vec::new();
    for conn_id in 0..point.conns {
        let raw = raw.clone();
        // Stagger connection phases so aggregate arrivals are even.
        let phase = interval.mul_f64(conn_id as f64 / point.conns as f64);
        clients.push(std::thread::spawn(move || {
            let mut samples: Vec<(u16, f64, f64)> = Vec::with_capacity(requests_per_conn);
            let mut errors = 0usize;
            let mut persistent = if mode == Mode::Pooled {
                connect(addr).ok()
            } else {
                None
            };
            for k in 0..requests_per_conn {
                let scheduled = start + phase + interval.mul_f64(k as f64);
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let raw = &raw[(conn_id + k) % 2];
                let sent_at = Instant::now();
                let outcome = match mode {
                    Mode::ThreadPerConn => oneshot_request(addr, raw),
                    Mode::Pooled => {
                        if persistent.is_none() {
                            persistent = connect(addr).ok();
                        }
                        match persistent.as_mut() {
                            Some((stream, reader)) => stream
                                .write_all(raw)
                                .and_then(|()| read_keep_alive_response(reader))
                                .inspect_err(|_| persistent = None),
                            None => Err(std::io::ErrorKind::ConnectionRefused.into()),
                        }
                    }
                };
                match outcome {
                    Ok(code) => {
                        let done = Instant::now();
                        samples.push((
                            code,
                            (done - scheduled).as_secs_f64(),
                            (done - sent_at).as_secs_f64(),
                        ));
                    }
                    Err(_) => errors += 1,
                }
            }
            (samples, errors, Instant::now())
        }));
    }

    let mut samples = Vec::new();
    let mut errors = 0usize;
    let mut end = start;
    for c in clients {
        let (s, e, finished) = c.join().expect("client thread");
        samples.extend(s);
        errors += e;
        end = end.max(finished);
    }
    let elapsed = (end - start).as_secs_f64().max(1e-9);
    let ok = samples.iter().filter(|(c, _, _)| *c == 200).count();
    let rejected = samples.iter().filter(|(c, _, _)| *c == 429).count();
    let other = samples.len() - ok - rejected;
    let sorted = |pick: fn(&(u16, f64, f64)) -> f64| -> Vec<f64> {
        let mut lat: Vec<f64> = samples
            .iter()
            .filter(|(c, _, _)| *c == 200)
            .map(pick)
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        lat
    };
    let sched = sorted(|s| s.1);
    let rtt = sorted(|s| s.2);
    let pct = |lat: &[f64], p: f64| -> f64 {
        if lat.is_empty() {
            return f64::NAN;
        }
        let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx] * 1e3
    };
    PointResult {
        mode: mode.name(),
        conns: point.conns,
        offered: point.offered,
        sent: point.conns * requests_per_conn,
        ok,
        rejected,
        errors: errors + other,
        elapsed_s: elapsed,
        goodput: ok as f64 / elapsed,
        p50_ms: pct(&sched, 0.50),
        p99_ms: pct(&sched, 0.99),
        p999_ms: pct(&sched, 0.999),
        rtt_p50_ms: pct(&rtt, 0.50),
        rtt_p99_ms: pct(&rtt, 0.99),
    }
}

/// Fresh gateway + server per mode so per-mode metrics and container
/// state never bleed across runs.
fn start_server(mode: Mode, serving: ServingConfig) -> (Arc<Gateway>, HttpServer) {
    let gw = Arc::new(
        Gateway::builder(GatewayConfig {
            nodes: 2,
            capacity_per_node: 4,
            idle_threshold: 0.0,
            // The paper's 10-minute window: effectively "never evict"
            // at this benchmark's seconds-long timescale.
            keep_alive: optimus_sim::DEFAULT_KEEP_ALIVE_S,
            store: None,
            faults: None,
            serving,
            predict: None,
        })
        .metrics(Arc::new(MetricsRegistry::new()))
        .register(tiny("ma", 4))
        .register(tiny("mb", 4))
        .spawn(),
    );
    let server = HttpServer::serve_with(
        gw.clone(),
        0,
        HttpConfig {
            mode: mode.frontend(),
            ..HttpConfig::default()
        },
    )
    .expect("binds an ephemeral port");
    (gw, server)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let default_duration = if small { 0.5 } else { 1.0 };
    let duration: f64 = arg(&args, "--duration", default_duration);
    // The trajectory ramps connections and offered rate together; the
    // final point offers more than either front end can serve, which is
    // where admission control must take over. Totals are sized so the
    // close-per-request baseline stays inside the ephemeral-port budget
    // (every `Connection: close` request burns a TIME_WAIT tuple —
    // itself part of why the thread-per-connection design collapses).
    let trajectory: Vec<Point> = if small {
        vec![
            Point {
                conns: 2,
                offered: 200.0,
            },
            Point {
                conns: 4,
                offered: 800.0,
            },
            Point {
                conns: 8,
                offered: 2_400.0,
            },
        ]
    } else {
        vec![
            Point {
                conns: 4,
                offered: 400.0,
            },
            Point {
                conns: 8,
                offered: 800.0,
            },
            Point {
                conns: 16,
                offered: 2_400.0,
            },
            Point {
                conns: 48,
                offered: 6_400.0,
            },
            Point {
                conns: 160,
                offered: 9_600.0,
            },
        ]
    };
    // A shallow queue makes the backpressure visible at the overload
    // point: concurrent requests at the top of the trajectory far exceed
    // 2 nodes × (queue depth + batch in service), so the excess must
    // come back as 429 instead of queueing into the tail.
    let serving = ServingConfig {
        queue_depth: 4,
        max_batch: 8,
        max_batch_wait_us: 100,
    };

    let mut results: Vec<PointResult> = Vec::new();
    for mode in Mode::ALL {
        let (gw, server) = start_server(mode, serving);
        let addr = server.addr();
        // One warmup request per model: container cold starts happen
        // here, not inside a measured point.
        for model in ["ma", "mb"] {
            let code = oneshot_request(addr, &infer_request(model, false)).expect("warmup");
            assert_eq!(code, 200, "warmup request for {model} failed");
        }
        for &point in &trajectory {
            results.push(run_point(addr, mode, point, duration));
            // Let queues drain between points.
            std::thread::sleep(Duration::from_millis(200));
        }
        server.shutdown();
        drop(gw);
    }

    let fmt_ms = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.2}")
        }
    };
    print_table(
        &[
            "mode",
            "conns",
            "offered/s",
            "sent",
            "ok",
            "429",
            "err",
            "goodput/s",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "rtt p99 ms",
        ],
        &results
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.conns.to_string(),
                    format!("{:.0}", r.offered),
                    r.sent.to_string(),
                    r.ok.to_string(),
                    r.rejected.to_string(),
                    r.errors.to_string(),
                    format!("{:.0}", r.goodput),
                    fmt_ms(r.p50_ms),
                    fmt_ms(r.p99_ms),
                    fmt_ms(r.p999_ms),
                    fmt_ms(r.rtt_p99_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ── Machine checks ──────────────────────────────────────────────────
    for r in &results {
        assert_eq!(
            r.sent,
            r.ok + r.rejected + r.errors,
            "{} at {} conns / {:.0} rps: requests leaked from the bookkeeping",
            r.mode,
            r.conns,
            r.offered
        );
        assert!(
            r.ok > 0,
            "{} at {} conns / {:.0} rps served nothing",
            r.mode,
            r.conns,
            r.offered
        );
    }
    for r in results.iter().filter(|r| r.mode == "pooled") {
        assert_eq!(
            r.errors, 0,
            "pooled front end dropped {} requests at {} conns / {:.0} rps: \
             persistent connections must never be dropped",
            r.errors, r.conns, r.offered
        );
    }

    // The comparison point is the top of the trajectory: the offered
    // load exceeds what either front end can serve, so goodput there is
    // each design's sustained capacity under overload.
    let at_overload = |mode: &str| {
        results
            .iter()
            .rfind(|r| r.mode == mode)
            .expect("trajectory is non-empty")
            .clone()
    };
    let baseline_over = at_overload("thread-per-conn");
    let overload = at_overload("pooled");
    let ratio = overload.goodput / baseline_over.goodput;
    println!(
        "\nat overload ({} conns, {:.0} offered/s):",
        overload.conns, overload.offered
    );
    println!(
        "  thread-per-conn: {:.0} req/s, p99 {:.0} ms, rtt p99 {:.0} ms",
        baseline_over.goodput, baseline_over.p99_ms, baseline_over.rtt_p99_ms
    );
    println!(
        "  pooled:          {:.0} req/s, p99 {:.0} ms, rtt p99 {:.0} ms, {} rejected — {ratio:.1}x goodput",
        overload.goodput, overload.p99_ms, overload.rtt_p99_ms, overload.rejected
    );
    if !small {
        // Backpressure: the pooled core must shed the excess with 429
        // and keep the on-wire tail of admitted requests bounded — the
        // queues cannot grow without bound. (The scheduled-time p99
        // grows at overload for *any* front end: that is the open-loop
        // generator's own debt, not server queueing.)
        assert!(
            overload.rejected > 0,
            "the overload point ({} conns / {:.0} rps offered, {:.0} served) never \
             tripped admission control",
            overload.conns,
            overload.offered,
            overload.goodput
        );
        assert!(
            overload.rtt_p99_ms < 500.0,
            "pooled on-wire p99 at overload is {:.1} ms: bounded queues must keep \
             the admitted tail flat",
            overload.rtt_p99_ms
        );
        // Goodput: ≥ 5× the thread-per-connection baseline at equal (in
        // fact strictly better) p99 — the baseline's tail at the same
        // point is its collapse, the pooled tail is its admission knee.
        assert!(
            ratio >= 5.0,
            "pooled goodput at overload is only {ratio:.1}x the thread-per-conn \
             baseline (pooled {:.0} vs baseline {:.0} req/s)",
            overload.goodput,
            baseline_over.goodput
        );
        assert!(
            overload.p99_ms <= baseline_over.p99_ms
                && overload.rtt_p99_ms <= baseline_over.rtt_p99_ms,
            "the goodput win must come at equal-or-better p99 \
             (pooled {:.0}/{:.0} ms vs baseline {:.0}/{:.0} ms scheduled/on-wire)",
            overload.p99_ms,
            overload.rtt_p99_ms,
            baseline_over.p99_ms,
            baseline_over.rtt_p99_ms
        );
    }

    // Repeatability (full run): rerun the pooled overload point once on
    // a fresh server; wall-clock percentiles are noisy, but goodput at a
    // fixed open-loop schedule must reproduce within a generous noise
    // bound.
    let repeat = if small {
        None
    } else {
        let (gw, server) = start_server(Mode::Pooled, serving);
        for model in ["ma", "mb"] {
            let _ = oneshot_request(server.addr(), &infer_request(model, false));
        }
        let r = run_point(
            server.addr(),
            Mode::Pooled,
            Point {
                conns: overload.conns,
                offered: overload.offered,
            },
            duration,
        );
        server.shutdown();
        drop(gw);
        let lo = overload.goodput.min(r.goodput);
        let hi = overload.goodput.max(r.goodput);
        assert!(
            hi / lo < 2.0,
            "pooled goodput did not reproduce: {:.0} vs {:.0} req/s on rerun",
            overload.goodput,
            r.goodput
        );
        println!(
            "repeat of the pooled overload point: {:.0} req/s, rtt p99 {:.2} ms",
            r.goodput, r.rtt_p99_ms
        );
        Some(r)
    };

    let point_json = |r: &PointResult| {
        serde_json::json!({
            "mode": r.mode,
            "conns": r.conns,
            "offered_rps": r.offered,
            "sent": r.sent,
            "ok": r.ok,
            "rejected_429": r.rejected,
            "errors": r.errors,
            "elapsed_s": r.elapsed_s,
            "goodput_rps": r.goodput,
            "p50_ms": r.p50_ms,
            "p99_ms": r.p99_ms,
            "p999_ms": r.p999_ms,
            "rtt_p50_ms": r.rtt_p50_ms,
            "rtt_p99_ms": r.rtt_p99_ms,
        })
    };
    save_results(
        if small {
            "bench_serve_small"
        } else {
            "bench_serve"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "duration_s": duration,
            "serving": {
                "queue_depth": serving.queue_depth,
                "max_batch": serving.max_batch,
                "max_batch_wait_us": serving.max_batch_wait_us,
            },
            "trajectory": results.iter().map(point_json).collect::<Vec<_>>(),
            "comparison_at_overload": {
                "conns": overload.conns,
                "offered_rps": overload.offered,
                "baseline_goodput_rps": baseline_over.goodput,
                "baseline_p99_ms": baseline_over.p99_ms,
                "baseline_rtt_p99_ms": baseline_over.rtt_p99_ms,
                "pooled_goodput_rps": overload.goodput,
                "pooled_p99_ms": overload.p99_ms,
                "pooled_rtt_p99_ms": overload.rtt_p99_ms,
                "pooled_rejected_429": overload.rejected,
                "goodput_ratio": ratio,
            },
            "repeat": repeat.as_ref().map(point_json),
        }),
    );
    println!("\nall serve-scale checks passed");
}
