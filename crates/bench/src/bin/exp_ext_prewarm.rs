//! Extension — predictive prewarming on top of Optimus (§2.2 notes the
//! two cold-start mitigation classes are complementary; this measures the
//! combination).
//!
//! Azure-style workloads contain many timer-triggered (periodic) functions
//! whose next arrival is predictable, which is exactly where proactive
//! transformation pays off.

use optimus_bench::{build_repo, figure13_models, fmt_pct, fmt_s, print_table, save_results};
use optimus_profile::Environment;
use optimus_sim::{Platform, Policy, PrewarmConfig, SimConfig, StartKind};
use optimus_workload::AzureTraceGenerator;

fn main() {
    let models = figure13_models();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!("registering {} models...", names.len());
    let repo = build_repo(models, Environment::Cpu);
    let trace = AzureTraceGenerator::new(86_400.0, 7).generate(&names);
    println!(
        "Extension: Optimus vs Optimus + predictive prewarming, Azure \
         workload ({} requests)\n",
        trace.len()
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let cases: Vec<(String, Option<PrewarmConfig>)> = vec![
        ("Optimus".to_string(), None),
        (
            "Optimus + prewarm (lead 5 s)".to_string(),
            Some(PrewarmConfig {
                lead: 5.0,
                min_history: 3,
            }),
        ),
        (
            "Optimus + prewarm (lead 30 s)".to_string(),
            Some(PrewarmConfig {
                lead: 30.0,
                min_history: 3,
            }),
        ),
    ];
    for (name, prewarm) in cases {
        let config = SimConfig {
            prewarm,
            ..SimConfig::default()
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        let frac = report.start_fractions();
        let warm = frac.get(&StartKind::Warm).copied().unwrap_or(0.0);
        rows.push(vec![
            name.clone(),
            fmt_s(report.avg_service_time()),
            fmt_s(report.percentile_service_time(99.0)),
            fmt_pct(warm),
            format!("{}", report.prewarms),
        ]);
        json.push(serde_json::json!({
            "mode": name,
            "avg_service_time": report.avg_service_time(),
            "p99": report.percentile_service_time(99.0),
            "warm_fraction": warm,
            "prewarms": report.prewarms,
        }));
    }
    print_table(
        &["Mode", "Avg service (s)", "p99 (s)", "Warm", "Prewarms"],
        &rows,
    );
    println!(
        "\nPrewarming converts predictable reactive transformations into \
         warm starts; the safeguard still governs each proactive transform."
    );
    save_results("exp_ext_prewarm", &serde_json::json!({ "rows": json }));
}
