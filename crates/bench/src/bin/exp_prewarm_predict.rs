//! Arrival-prediction sweep — adaptive keep-alive and speculative
//! transformation vs the fixed-window Optimus baseline.
//!
//! Sweeps predictor aggressiveness across three trace families (Poisson,
//! Azure-like, diurnal/bursty) on the Optimus policy and reports how the
//! cold-start rate and tail latency respond. The diurnal trace is the
//! predictor's stress case: every function's rate is strongly
//! time-varying, so the fixed `DEFAULT_KEEP_ALIVE_S` window idles
//! containers through the daily trough and evicts them right before
//! arrivals return. Four invariants are machine-checked:
//!
//! 1. **Inert identity** — an inert predictor (adaptive keep-alive off,
//!    speculation off) observes every arrival yet reproduces the
//!    prediction-less run's request records byte-identically.
//! 2. **Determinism** — re-running the most aggressive diurnal cell
//!    yields a byte-identical report (same trace ⇒ same forecasts ⇒
//!    same speculations).
//! 3. **Bounded misprediction cost** — in every speculative cell,
//!    `max_spec_over_budget` stays below 0: the cost-model gate admitted
//!    no speculation that could cost more than the cold start it
//!    replaces.
//! 4. **Prediction wins where it should** — on the diurnal trace, the
//!    default predictive configuration beats the fixed-window baseline
//!    in *both* cold-start rate and p99 service time.
//!
//! Optional args: `--small` (CI configuration), `--threads <n>`
//! (byte-identical output at any thread count), `--duration <seconds>`
//! (diurnal trace length), `--seed <n>`.

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{build_repo, figure13_models, fmt_pct, fmt_s, print_table, save_results};
use optimus_model::ModelGraph;
use optimus_profile::Environment;
use optimus_sim::{
    Platform, Policy, PredictConfig, SimConfig, SpeculationConfig, StartKind, DEFAULT_KEEP_ALIVE_S,
};
use optimus_workload::{
    rates, AzureTraceGenerator, DiurnalBurstGenerator, PoissonGenerator, Trace,
};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One predictor configuration under sweep.
#[derive(Clone, Copy)]
enum Variant {
    /// `predict: None` — the fixed `DEFAULT_KEEP_ALIVE_S` window.
    Fixed,
    /// Adaptive keep-alive only: learned per-function windows, no
    /// speculation.
    Adaptive,
    /// Adaptive keep-alive + speculative transformation at the given
    /// aggressiveness.
    Speculative(f64),
}

impl Variant {
    fn name(&self) -> String {
        match self {
            Variant::Fixed => "fixed".to_string(),
            Variant::Adaptive => "adaptive".to_string(),
            Variant::Speculative(a) => format!("spec@{a}"),
        }
    }

    fn predict(&self) -> Option<PredictConfig> {
        match *self {
            Variant::Fixed => None,
            Variant::Adaptive => Some(PredictConfig {
                adaptive_keep_alive: true,
                speculation: None,
                ..PredictConfig::default()
            }),
            Variant::Speculative(aggressiveness) => Some(PredictConfig {
                adaptive_keep_alive: true,
                // The sim evaluates due bands at arrival events; a lead
                // larger than the aggregate inter-event gap (~15 s on
                // these traces) keeps forecast bands from being skipped
                // over between checks.
                speculation: Some(SpeculationConfig {
                    lead: 60.0,
                    aggressiveness,
                }),
                ..PredictConfig::default()
            }),
        }
    }
}

fn cold_rate(report: &optimus_sim::SimReport) -> f64 {
    *report
        .start_fractions()
        .get(&StartKind::Cold)
        .unwrap_or(&0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let threads = threads_arg(&args);
    let seed: u64 = arg(&args, "--seed", 42);
    let (catalog_size, default_diurnal_s, aggressiveness): (usize, f64, Vec<f64>) = if small {
        (10, 43_200.0, vec![1.0])
    } else {
        (usize::MAX, 172_800.0, vec![0.5, 1.0, 2.0])
    };
    let diurnal_s: f64 = arg(&args, "--duration", default_diurnal_s);

    let models: Vec<ModelGraph> = figure13_models().into_iter().take(catalog_size).collect();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    eprintln!(
        "registering {} models and computing plan cache...",
        names.len()
    );
    let repo = build_repo(models, Environment::Cpu);

    // Three trace families. The diurnal generator's base rate is set so
    // trough-time gaps (rate × (1 − amplitude)) stretch past the fixed
    // keep-alive window — the regime the predictor exists for.
    let traces: Vec<(&str, Trace)> = vec![
        (
            "poisson",
            PoissonGenerator::new(rates::MIDDLE, if small { 2_400.0 } else { 7_200.0 }, seed)
                .generate(&names),
        ),
        (
            "azure",
            AzureTraceGenerator::new(if small { 2_400.0 } else { 14_400.0 }, seed).generate(&names),
        ),
        (
            "diurnal",
            DiurnalBurstGenerator::new(diurnal_s, seed, 0.002).generate(&names),
        ),
    ];

    let mut variants = vec![Variant::Fixed, Variant::Adaptive];
    variants.extend(aggressiveness.iter().map(|&a| Variant::Speculative(a)));

    let base = SimConfig::default();
    println!(
        "Prediction sweep: {} functions, {} nodes x {} slots, fixed window {} s, seed {seed}\n",
        names.len(),
        base.nodes,
        base.capacity_per_node,
        DEFAULT_KEEP_ALIVE_S
    );

    // One grid cell per trace × variant; results return in input order,
    // so table/JSON are byte-identical at any --threads.
    let cells: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|t| (0..variants.len()).map(move |v| (t, v)))
        .collect();
    let reports = run_grid(&cells, threads, |&(t, v)| {
        let config = SimConfig {
            predict: variants[v].predict(),
            ..base.clone()
        };
        Platform::new(config, Policy::Optimus, repo.clone()).run(&traces[t].1)
    });
    let report_at =
        |t: usize, v: usize| -> &optimus_sim::SimReport { &reports[t * variants.len() + v] };

    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for (t, (trace_name, trace)) in traces.iter().enumerate() {
        let mut per_variant = serde_json::Map::new();
        for (v, variant) in variants.iter().enumerate() {
            let report = report_at(t, v);
            rows.push(vec![
                trace_name.to_string(),
                variant.name(),
                report.len().to_string(),
                fmt_pct(cold_rate(report)),
                fmt_pct(
                    *report
                        .start_fractions()
                        .get(&StartKind::Warm)
                        .unwrap_or(&0.0),
                ),
                fmt_s(report.avg_service_time()),
                fmt_s(report.percentile_service_time(99.0)),
                match &report.predict {
                    Some(p) => format!("{}/{}", p.spec_hits, p.speculations),
                    None => "-".to_string(),
                },
            ]);
            let mut cell = serde_json::Map::new();
            cell.insert(
                "avg_service_time".to_string(),
                serde_json::json!(report.avg_service_time()),
            );
            cell.insert(
                "p99".to_string(),
                serde_json::json!(report.percentile_service_time(99.0)),
            );
            cell.insert(
                "cold_rate".to_string(),
                serde_json::json!(cold_rate(report)),
            );
            cell.insert("requests".to_string(), serde_json::json!(report.len()));
            if let Some(p) = &report.predict {
                // ── Invariant 3: bounded misprediction cost ─────────────
                if p.speculations > 0 {
                    assert!(
                        p.max_spec_over_budget < 0.0,
                        "{trace_name}/{}: speculation exceeded its cold-start budget: {}",
                        variant.name(),
                        p.max_spec_over_budget
                    );
                }
                assert_eq!(p.observed_arrivals, trace.len() as u64);
                cell.insert(
                    "predict".to_string(),
                    serde_json::json!({
                        "speculations": p.speculations,
                        "spec_hits": p.spec_hits,
                        "spec_mispredictions": p.spec_mispredictions,
                        "spec_skipped": p.spec_skipped,
                        "spec_cost_seconds": p.spec_cost_seconds,
                        "spec_saved_seconds": p.spec_saved_seconds,
                        "max_spec_over_budget": p.max_spec_over_budget,
                        "mean_window_s": p.mean_window(),
                    }),
                );
            }
            per_variant.insert(variant.name(), serde_json::Value::Object(cell));
        }
        sweep_json.push(serde_json::json!({
            "trace": trace_name,
            "requests": trace.len(),
            "duration_s": trace.duration,
            "variants": serde_json::Value::Object(per_variant),
        }));
    }
    print_table(
        &[
            "Trace", "Variant", "Reqs", "Cold", "Warm", "Avg", "p99", "Spec hit",
        ],
        &rows,
    );

    // ── Invariant 1: inert identity ─────────────────────────────────────
    let diurnal_idx = traces.len() - 1;
    let inert = Platform::new(
        SimConfig {
            predict: Some(PredictConfig::inert()),
            ..base.clone()
        },
        Policy::Optimus,
        repo.clone(),
    )
    .run(&traces[diurnal_idx].1);
    let fixed = report_at(diurnal_idx, 0);
    assert_eq!(
        serde_json::to_string(&inert.records).expect("serializes"),
        serde_json::to_string(&fixed.records).expect("serializes"),
        "an inert predictor must reproduce the prediction-less run byte-identically"
    );
    println!("\ninert identity: OK (inert predictor == predict off, byte-identical records)");

    // ── Invariant 2: determinism ────────────────────────────────────────
    let last_v = variants.len() - 1;
    let rerun = Platform::new(
        SimConfig {
            predict: variants[last_v].predict(),
            ..base.clone()
        },
        Policy::Optimus,
        repo.clone(),
    )
    .run(&traces[diurnal_idx].1);
    assert_eq!(
        serde_json::to_string(&rerun).expect("serializes"),
        serde_json::to_string(report_at(diurnal_idx, last_v)).expect("serializes"),
        "same trace must give a byte-identical predictive report"
    );
    println!("determinism: OK (most aggressive diurnal cell re-ran byte-identically)");

    // ── Invariant 4: prediction wins on the diurnal trace ───────────────
    let default_spec = variants
        .iter()
        .position(|v| matches!(v, Variant::Speculative(a) if *a == 1.0))
        .expect("default aggressiveness in sweep");
    let predictive = report_at(diurnal_idx, default_spec);
    let (fixed_cold, pred_cold) = (cold_rate(fixed), cold_rate(predictive));
    let (fixed_p99, pred_p99) = (
        fixed.percentile_service_time(99.0),
        predictive.percentile_service_time(99.0),
    );
    assert!(
        pred_cold < fixed_cold,
        "diurnal: predictive cold-start rate {pred_cold} must beat fixed {fixed_cold}"
    );
    assert!(
        pred_p99 < fixed_p99,
        "diurnal: predictive p99 {pred_p99} must beat fixed {fixed_p99}"
    );
    println!(
        "prediction: OK (diurnal cold rate {} -> {}, p99 {} -> {})",
        fmt_pct(fixed_cold),
        fmt_pct(pred_cold),
        fmt_s(fixed_p99),
        fmt_s(pred_p99)
    );

    save_results(
        if small {
            "exp_prewarm_predict_small"
        } else {
            "exp_prewarm_predict"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "seed": seed,
            "functions": names.len(),
            "fixed_keep_alive_s": DEFAULT_KEEP_ALIVE_S,
            "sweep": sweep_json,
        }),
    );
}
