//! Content-addressed weight store — dedup and byte-accurate load pricing.
//!
//! Three sections exercise `optimus-store` end to end:
//!
//! 1. **Catalog dedup** — chunk the whole model catalog plus every cached
//!    transformation plan's payload into one content-addressed
//!    [`ChunkSet`]. Plan payloads duplicate destination-model tensors by
//!    construction, so the combined dedup ratio must exceed 1.0: the
//!    bytes a flat per-model repository would store twice, a
//!    content-addressed one stores once.
//! 2. **Tier monotonicity** — price one model's chunk set at every
//!    residency tier of a [`NodeStore`] (remote → node disk → node
//!    memory → container) and assert the load latency strictly decreases
//!    as residency warms.
//! 3. **Remote-bandwidth sweep** — run the Optimus policy on a Poisson
//!    workload with the store enabled at several remote bandwidths,
//!    against the byte-agnostic baseline (`store: None`), reporting
//!    load-latency percentiles and the fleet dedup ratio.
//!
//! Run with `--small` for the CI configuration; `--threads <n>` runs the
//! bandwidth sweep cells in parallel (byte-identical output at any
//! thread count).

use optimus_bench::sweep::{run_grid, threads_arg};
use optimus_bench::{figure11_models, fmt_s, print_table, save_results};
use optimus_model::ModelGraph;
use optimus_profile::Environment;
use optimus_sim::{Platform, Policy, SimConfig, TierParams};
use optimus_store::{model_chunks, ChunkRef, ChunkSet, NodeStore, StoreConfig};
use optimus_workload::{rates, PoissonGenerator};

/// Sorted percentile of a sample (nearest-rank on the sorted data).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Load latency of `chunks` at each tier of a default-config store,
/// coldest first: `[(tier, seconds)]`.
fn tier_chain(chunks: &[ChunkRef]) -> Vec<(&'static str, f64)> {
    let mut store = NodeStore::new(StoreConfig::default());
    let remote = store.estimate(chunks).seconds;
    store.admit(chunks);
    let container = store.estimate(chunks).seconds;
    store.release(chunks); // keep-alive expiry: demote to node memory
    let memory = store.estimate(chunks).seconds;
    // With a zero memory budget the demotion spills straight to disk.
    let mut disk_store = NodeStore::new(StoreConfig {
        node_memory_bytes: 0,
        ..StoreConfig::default()
    });
    disk_store.admit(chunks);
    disk_store.release(chunks);
    let disk = disk_store.estimate(chunks).seconds;
    vec![
        ("remote", remote),
        ("node_disk", disk),
        ("node_memory", memory),
        ("container", container),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let threads = threads_arg(&args);
    let all = figure11_models();
    let (catalog_size, duration, bandwidths) = if small {
        (4usize, 1_200.0, vec![100.0e6])
    } else {
        (10usize, 7_200.0, vec![25.0e6, 100.0e6, 400.0e6])
    };
    let models: Vec<ModelGraph> = all.into_iter().take(catalog_size).collect();
    let chunk_bytes = StoreConfig::default().chunk_bytes;

    assert!(
        SimConfig::default().store.is_none(),
        "the store must stay opt-in: default sim config is byte-agnostic"
    );

    // ── 1. Catalog dedup ────────────────────────────────────────────────
    let repo = optimus_bench::build_repo(models.clone(), Environment::Cpu);
    let mut catalog = ChunkSet::new();
    for m in &models {
        catalog.extend(&model_chunks(m, chunk_bytes));
    }
    let catalog_ratio = catalog.dedup_ratio();
    let mut with_plans = catalog.clone();
    let plan_payload = repo.plan_referenced_chunks(chunk_bytes);
    with_plans.extend(&plan_payload);
    let combined_ratio = with_plans.dedup_ratio();
    println!("Content-addressed catalog ({} models)\n", models.len());
    print_table(
        &["Corpus", "Referenced", "Unique", "Dedup"],
        &[
            vec![
                "models only".to_string(),
                format!(
                    "{:.1} MiB",
                    catalog.logical_bytes() as f64 / (1 << 20) as f64
                ),
                format!(
                    "{:.1} MiB",
                    catalog.unique_bytes() as f64 / (1 << 20) as f64
                ),
                format!("{catalog_ratio:.3}x"),
            ],
            vec![
                "models + plan payloads".to_string(),
                format!(
                    "{:.1} MiB",
                    with_plans.logical_bytes() as f64 / (1 << 20) as f64
                ),
                format!(
                    "{:.1} MiB",
                    with_plans.unique_bytes() as f64 / (1 << 20) as f64
                ),
                format!("{combined_ratio:.3}x"),
            ],
        ],
    );
    assert!(
        combined_ratio > 1.0,
        "plan payloads duplicate catalog tensors: dedup must exceed 1.0"
    );

    // ── 2. Tier monotonicity ────────────────────────────────────────────
    let probe = &models[0];
    let probe_chunks = model_chunks(probe, chunk_bytes);
    let chain = tier_chain(&probe_chunks);
    println!("\nLoad latency of {} by residency tier\n", probe.name());
    print_table(
        &["Tier", "Load"],
        &chain
            .iter()
            .map(|(tier, s)| vec![(*tier).to_string(), fmt_s(*s)])
            .collect::<Vec<_>>(),
    );
    for pair in chain.windows(2) {
        assert!(
            pair[0].1 > pair[1].1,
            "{} ({} s) must load slower than {} ({} s)",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
    assert_eq!(chain[3].1, 0.0, "container residency is free to read");

    // ── 3. Remote-bandwidth sweep under the Optimus policy ──────────────
    let functions: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    let trace = PoissonGenerator::new(rates::MIDDLE, duration, 42).generate(&functions);
    // Cell 0 is the byte-agnostic baseline, then one cell per remote
    // bandwidth; results return in input order at any thread count.
    let mut sweep_cells: Vec<Option<StoreConfig>> = vec![None];
    sweep_cells.extend(bandwidths.iter().map(|&bw| {
        Some(StoreConfig {
            remote: TierParams {
                bandwidth_bytes_per_s: bw,
                latency_s: StoreConfig::default().remote.latency_s,
            },
            ..StoreConfig::default()
        })
    }));
    let mut reports = run_grid(&sweep_cells, threads, |store: &Option<StoreConfig>| {
        let config = SimConfig {
            store: *store,
            ..SimConfig::default()
        };
        Platform::new(config, Policy::Optimus, repo.clone()).run(&trace)
    })
    .into_iter();
    let baseline = reports.next().expect("baseline cell ran");
    let mut baseline_loads: Vec<f64> = baseline.records.iter().map(|r| r.load).collect();
    baseline_loads.sort_by(f64::total_cmp);
    println!(
        "\nOptimus on Poisson λ=10⁻²·⁵ ({} requests, {} functions)\n",
        baseline.records.len(),
        functions.len()
    );
    let mut rows = vec![vec![
        "byte-agnostic (no store)".to_string(),
        fmt_s(percentile(&baseline_loads, 0.50)),
        fmt_s(percentile(&baseline_loads, 0.95)),
        fmt_s(percentile(&baseline_loads, 0.99)),
        "-".to_string(),
    ]];
    let mut sweep_json = Vec::new();
    for &bw in &bandwidths {
        let report = reports.next().expect("bandwidth cell ran");
        let mut loads: Vec<f64> = report.records.iter().map(|r| r.load).collect();
        loads.sort_by(f64::total_cmp);
        let stats = report.store.expect("store enabled");
        rows.push(vec![
            format!("remote {:.0} MB/s", bw / 1e6),
            fmt_s(percentile(&loads, 0.50)),
            fmt_s(percentile(&loads, 0.95)),
            fmt_s(percentile(&loads, 0.99)),
            format!("{:.3}x", stats.dedup_ratio),
        ]);
        sweep_json.push(serde_json::json!({
            "remote_bandwidth_bytes_per_s": bw,
            "load_p50_s": percentile(&loads, 0.50),
            "load_p95_s": percentile(&loads, 0.95),
            "load_p99_s": percentile(&loads, 0.99),
            "dedup_ratio": stats.dedup_ratio,
            "chunk_hits": stats.hits,
            "chunk_misses": stats.misses,
            "fetched_bytes": stats.fetched_bytes,
            "admitted_bytes": stats.admitted_bytes,
        }));
    }
    print_table(
        &["Configuration", "Load p50", "Load p95", "Load p99", "Dedup"],
        &rows,
    );

    save_results(
        if small {
            "exp_store_small"
        } else {
            "exp_store"
        },
        &serde_json::json!({
            "config": if small { "small" } else { "full" },
            "catalog_models": models.len(),
            "chunk_bytes": chunk_bytes,
            "catalog_dedup_ratio": catalog_ratio,
            "catalog_plus_plans_dedup_ratio": combined_ratio,
            "plan_payload_chunks": plan_payload.len(),
            "tier_chain": chain
                .iter()
                .map(|(tier, s)| serde_json::json!({ "tier": tier, "load_s": s }))
                .collect::<Vec<_>>(),
            "sweep": sweep_json,
            "baseline_load_p50_s": percentile(&baseline_loads, 0.50),
            "baseline_load_p95_s": percentile(&baseline_loads, 0.95),
            "baseline_load_p99_s": percentile(&baseline_loads, 0.99),
        }),
    );
}
