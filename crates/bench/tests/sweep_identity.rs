//! The sweep runner's core guarantee: the serialized simulation output
//! is byte-identical at any thread count, and across consecutive runs.
//!
//! This is what lets experiment binaries take `--threads` without any
//! risk to reproducibility — the whole grid is pure (seeded traces,
//! per-cell `Platform`s) and [`run_grid`] returns results in input
//! order regardless of scheduling. `scripts/check.sh` and CI run this
//! test explicitly.

use optimus_bench::build_repo;
use optimus_bench::sweep::run_grid;
use optimus_profile::Environment;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};
use optimus_workload::PoissonGenerator;

fn catalog() -> Vec<optimus_model::ModelGraph> {
    vec![
        optimus_zoo::vgg::vgg11(),
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
    ]
}

#[test]
fn sweep_reports_are_byte_identical_across_thread_counts() {
    let models = catalog();
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    let repo = build_repo(models, Environment::Cpu);
    // Policy × seed grid — the same shape the experiment binaries sweep.
    let cells: Vec<(Policy, u64)> = Policy::ALL
        .iter()
        .flat_map(|&p| [(p, 5u64), (p, 9u64)])
        .collect();
    let sweep = |threads: usize| -> Vec<String> {
        run_grid(&cells, threads, |&(policy, seed)| {
            let trace = PoissonGenerator::new(0.003, 30_000.0, seed).generate(&names);
            let config = SimConfig {
                nodes: 2,
                capacity_per_node: 3,
                placement: PlacementStrategy::Hash,
                ..SimConfig::default()
            };
            let report = Platform::new(config, policy, repo.clone()).run(&trace);
            serde_json::to_string(&report).expect("report serializes")
        })
    };
    let sequential = sweep(1);
    assert_eq!(sequential.len(), cells.len());
    assert!(
        sequential.iter().any(|s| s.contains("\"Warm\"")),
        "the grid should exercise warm starts"
    );
    for threads in [2, 8] {
        assert_eq!(sweep(threads), sequential, "threads={threads} diverged");
    }
    // Two consecutive runs at the same thread count are also identical:
    // nothing (allocator state, scheduling, shared caches) leaks into the
    // output between runs.
    assert_eq!(sweep(8), sweep(8), "consecutive runs diverged");
}
