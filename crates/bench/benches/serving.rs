//! Criterion bench of the live serving engine: warm-path throughput and
//! the real cost of an in-place transformation round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{Gateway, GatewayConfig};

fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.global_avg_pool_after(x);
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch, 4);
    b.finish().expect("valid bench model")
}

fn serving_benches(c: &mut Criterion) {
    // Warm path: repeated inferences on one model.
    let gw = Gateway::builder(GatewayConfig {
        nodes: 1,
        capacity_per_node: 2,
        idle_threshold: 1e9, // never transform: pure warm path
        keep_alive: 1e9,
        store: None,
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    })
    .register(tiny("warm", &[8]))
    .spawn();
    let input = Tensor::zeros([1, 3, 8, 8]);
    c.bench_function("serve/warm_inference", |b| {
        b.iter(|| gw.infer("warm", input.clone()).expect("serves"))
    });
    drop(gw);

    // Transform path: alternating models on a single container forces a
    // real meta-operator execution per request.
    let gw = Gateway::builder(GatewayConfig {
        nodes: 1,
        capacity_per_node: 1,
        idle_threshold: 0.0,
        keep_alive: 1e9,
        store: None,
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    })
    .register(tiny("a", &[8]))
    .register(tiny("b", &[16, 16]))
    .spawn();
    c.bench_function("serve/transform_roundtrip", |b| {
        b.iter(|| {
            gw.infer("a", input.clone()).expect("serves");
            gw.infer("b", input.clone()).expect("serves");
        })
    });
    drop(gw);
}

criterion_group!(benches, serving_benches);
criterion_main!(benches);
