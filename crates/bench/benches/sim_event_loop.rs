//! Criterion microbench of the simulator event loop: invocations simulated
//! per second of host wall-clock, per policy, on a 10k-invocation Poisson
//! trace over a six-model catalog.
//!
//! Besides the criterion report, a manual best-of-N timing pass merges
//! per-policy `events_per_sec` into `results/bench_sim.json` under the
//! label given by `SIM_BENCH_LABEL` (default `"interned"`), so the event
//! loop's perf trajectory is tracked across PRs; when both the
//! `baseline_string_keyed` and `interned` entries are present the file
//! also records the per-policy speedup. Run with `--small` for a
//! 1k-invocation CI smoke that skips the JSON update.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};
use optimus_workload::{PoissonGenerator, Trace};

/// The six-model CNN catalog shared with `benches/simulator.rs`, plus a
/// trace truncated to exactly `invocations` events.
fn repo_and_trace(invocations: usize) -> (Arc<ModelRepository>, Trace) {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    repo.register_all(
        vec![
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::resnet::resnet101(),
            optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
            optimus_zoo::mobilenet::mobilenet_v2(1.0, 0),
        ],
        &cost,
    );
    let functions = repo.model_names();
    let mut trace = PoissonGenerator::new(0.01, 200_000.0, 5).generate(&functions);
    assert!(trace.len() >= invocations, "trace too short for the bench");
    trace.invocations.truncate(invocations);
    trace.duration = trace.invocations.last().map_or(0.0, |i| i.time + 1.0);
    (Arc::new(repo), trace)
}

/// Best-of-`runs` events/sec of `platform.run(trace)` (one warmup run).
fn events_per_sec(platform: &Platform, trace: &Trace, runs: usize) -> f64 {
    criterion::black_box(platform.run(trace));
    let mut best = 0.0f64;
    for _ in 0..runs {
        let t = Instant::now();
        criterion::black_box(platform.run(trace));
        best = best.max(trace.len() as f64 / t.elapsed().as_secs_f64());
    }
    best
}

/// Merge this run's numbers into `results/bench_sim.json` (keeping any
/// other labels, e.g. the committed string-keyed baseline) and derive the
/// per-policy speedup when both baseline and interned entries exist.
fn save_bench_json(label: &str, entry: serde_json::Value) {
    // Benches run with cwd = the package dir; anchor at the workspace root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join("bench_sim.json");
    if !path.parent().is_some_and(std::path::Path::is_dir) {
        return;
    }
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|v| match v {
            serde_json::Value::Object(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    root.insert(label.to_string(), entry);
    if let (Some(base), Some(new)) = (
        root.get("baseline_string_keyed")
            .and_then(|v| v.get("events_per_sec"))
            .and_then(|v| v.as_object())
            .cloned(),
        root.get("interned")
            .and_then(|v| v.get("events_per_sec"))
            .and_then(|v| v.as_object())
            .cloned(),
    ) {
        let mut speedup = serde_json::Map::new();
        for (policy, b) in &base {
            if let (Some(b), Some(n)) = (b.as_f64(), new.get(policy).and_then(|v| v.as_f64())) {
                if b > 0.0 {
                    speedup.insert(policy.clone(), serde_json::json!(n / b));
                }
            }
        }
        root.insert("speedup".to_string(), serde_json::Value::Object(speedup));
    }
    let pretty = serde_json::to_string_pretty(&serde_json::Value::Object(root)).unwrap();
    if let Err(e) = std::fs::write(&path, pretty) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn sim_event_loop(c: &mut Criterion) {
    let small = std::env::args().any(|a| a == "--small");
    let invocations = if small { 1_000 } else { 10_000 };
    let (repo, trace) = repo_and_trace(invocations);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 4,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("sim_event_loop");
    group.throughput(Throughput::Elements(trace.len() as u64));
    let mut eps = serde_json::Map::new();
    for policy in Policy::ALL {
        let platform = Platform::new(config.clone(), policy, repo.clone());
        group.bench_with_input(
            BenchmarkId::new("run", policy.name()),
            &trace,
            |b, trace| b.iter(|| platform.run(trace)),
        );
        let runs = if small { 3 } else { 10 };
        eps.insert(
            policy.name().to_string(),
            serde_json::json!(events_per_sec(&platform, &trace, runs)),
        );
    }
    group.finish();
    if !small {
        let label = std::env::var("SIM_BENCH_LABEL").unwrap_or_else(|_| "interned".to_string());
        save_bench_json(
            &label,
            serde_json::json!({
                "trace_invocations": trace.len(),
                "catalog_models": repo.model_count(),
                "events_per_sec": serde_json::Value::Object(eps),
            }),
        );
    }
}

criterion_group!(benches, sim_event_loop);
criterion_main!(benches);
