//! Criterion benches of the load balancer: K-medoids clustering, the
//! distance matrix, and the Pearson correlation kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optimus_balance::{kmedoids, pearson, FunctionPoint, SharingAwareBalancer};

fn synthetic_points(n: usize) -> Vec<FunctionPoint> {
    (0..n)
        .map(|i| FunctionPoint {
            name: format!("f{i}"),
            demand: (0..48)
                .map(|t| ((i * 7 + t) % 13) as f64 + if i % 2 == 0 { 5.0 } else { 0.0 })
                .collect(),
        })
        .collect()
}

fn synthetic_distance(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| ((i as f64 - j as f64).abs() * 37.0) % 11.0)
                .collect()
        })
        .collect()
}

fn balancer_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("balancer");
    for &n in &[32usize, 128] {
        let dist = synthetic_distance(n);
        group.bench_with_input(BenchmarkId::new("kmedoids", n), &dist, |b, d| {
            b.iter(|| kmedoids(d, 4, 50))
        });
        let points = synthetic_points(n);
        let balancer = SharingAwareBalancer::default();
        group.bench_with_input(BenchmarkId::new("distance-matrix", n), &points, |b, p| {
            b.iter(|| balancer.distance_matrix(p, &|a, bn| (a.len() + bn.len()) as f64))
        });
    }
    let a: Vec<f64> = (0..1440).map(|i| (i % 97) as f64).collect();
    let bb: Vec<f64> = (0..1440).map(|i| (i % 31) as f64).collect();
    group.bench_function("pearson/1440", |b| b.iter(|| pearson(&a, &bb)));
    group.finish();
}

criterion_group!(benches, balancer_benches);
criterion_main!(benches);
