//! Criterion bench of simulator throughput: requests simulated per second
//! of host time, per policy.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};
use optimus_workload::PoissonGenerator;

fn simulator_benches(c: &mut Criterion) {
    let repo = Arc::new({
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        for m in [
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::vgg::vgg19(),
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::resnet::resnet101(),
            optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
            optimus_zoo::mobilenet::mobilenet_v2(1.0, 0),
        ] {
            repo.register(m, &cost);
        }
        repo
    });
    let functions: Vec<String> = repo.model_names();
    let trace = PoissonGenerator::new(0.01, 40_000.0, 5).generate(&functions);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 4,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("simulator");
    group.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for policy in Policy::ALL {
        let platform = Platform::new(config.clone(), policy, repo.clone());
        group.bench_with_input(
            BenchmarkId::new("run", policy.name()),
            &trace,
            |b, trace| b.iter(|| platform.run(trace)),
        );
    }
    group.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
