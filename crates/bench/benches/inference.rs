//! Criterion benches of the forward-pass engine (the "inference
//! computation" step's substrate) on small models.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus_model::tensor::Tensor;
use optimus_model::{infer, Activation, GraphBuilder, OpAttrs, PoolKind};

fn tiny_cnn() -> optimus_model::ModelGraph {
    let mut b = GraphBuilder::new("bench-cnn");
    let mut x = b.input([1, 3, 32, 32]);
    let mut ch = 3;
    for c in [8usize, 16] {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.batchnorm_after(x, c);
        x = b.activation_after(x, Activation::Relu);
        x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
        ch = c;
    }
    let x = b.global_avg_pool_after(x);
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch, 10);
    b.finish().expect("valid bench model")
}

fn tiny_attention() -> optimus_model::ModelGraph {
    let mut b = GraphBuilder::new("bench-attn");
    let i = b.input([1, 16]);
    let emb = b.after(
        i,
        "emb",
        OpAttrs::Embedding {
            vocab: 64,
            hidden: 32,
        },
    );
    let q = b.after(
        emb,
        "q",
        OpAttrs::Query {
            hidden: 32,
            heads: 4,
        },
    );
    let k = b.after(
        emb,
        "k",
        OpAttrs::Key {
            hidden: 32,
            heads: 4,
        },
    );
    let v = b.after(
        emb,
        "v",
        OpAttrs::Value {
            hidden: 32,
            heads: 4,
        },
    );
    let l = b.merge(&[q, k], "logit", OpAttrs::Logit { heads: 4 });
    let sm = b.after(l, "softmax", OpAttrs::Softmax);
    let at = b.merge(&[sm, v], "attend", OpAttrs::Attend { heads: 4 });
    let _ = b.after(at, "out", OpAttrs::AttnOutput { hidden: 32 });
    b.finish().expect("valid bench model")
}

fn inference_benches(c: &mut Criterion) {
    let cnn = tiny_cnn();
    c.bench_function("infer/tiny_cnn_32x32", |b| {
        b.iter(|| infer::run(&cnn, Tensor::zeros([1, 3, 32, 32])).expect("runs"))
    });
    let attn = tiny_attention();
    let ids = Tensor::new([1, 16], (0..16).map(|v| v as f32).collect());
    c.bench_function("infer/tiny_attention_s16_h32", |b| {
        b.iter(|| infer::run(&attn, ids.clone()).expect("runs"))
    });
    let nas = optimus_zoo::nasbench::nasbench_model_sized(7, 1, 0);
    c.bench_function("infer/nasbench_1cell_32x32", |b| {
        b.iter(|| infer::run(&nas, Tensor::zeros([1, 3, 32, 32])).expect("runs"))
    });
}

criterion_group!(benches, inference_benches);
criterion_main!(benches);
