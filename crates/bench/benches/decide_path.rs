//! Criterion microbench of the request-time decide path against the
//! sharded plan cache: single-thread `decide_by_id` latency per catalog
//! size, plus a manual contended pass (all cores hammering decides) that
//! compares the machine-sized shard count with the `with_shards(1)`
//! single-map baseline.
//!
//! The contended numbers are written to `results/bench_decide.json` so
//! the decide path's perf trajectory is tracked across PRs. On boxes with
//! few cores the sharded/single-map ratio is mostly noise (read locks
//! barely contend with two readers); the sharding's real payoff —
//! readers never stalling behind a bulk registration — is asserted in
//! `optimus-core`'s `sharded_cache` tests. Run with `--small` for a CI
//! smoke that trims catalog sizes and skips the JSON update.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optimus_core::{GroupPlanner, ModelRepository, PlanScope};
use optimus_model::ModelId;
use optimus_profile::CostModel;

/// Deterministic splitmix64 stream for pair sampling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// An `n`-model NASBench catalog registered with window-4 planning (the
/// same registration mode `exp_catalog_scale` uses at 10k models).
fn registered(n: usize, cost: &CostModel) -> ModelRepository {
    let space = optimus_zoo::NASBENCH_SPACE_SIZE;
    let models = (0..n as u64)
        .map(|i| optimus_zoo::nasbench::nasbench_model_sized(i % space, 1, i / space))
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    repo.register_all_scoped(models, cost, threads, PlanScope::Window(4), None);
    repo
}

fn ids(repo: &ModelRepository, n: usize) -> Vec<ModelId> {
    (0..n)
        .map(|i| {
            repo.model_id(&format!(
                "nasbench-{:05}",
                i as u64 % optimus_zoo::NASBENCH_SPACE_SIZE
            ))
            .expect("registered model resolves")
        })
        .collect()
}

/// Contended decide throughput (ops/s): every available core draws random
/// pairs and calls `decide_by_id` as fast as it can. One warmup round,
/// then best of three (thread spin-up and cold caches land in neither).
fn contended_ops(repo: &ModelRepository, ids: &[ModelId], iters: usize) -> f64 {
    let readers = std::thread::available_parallelism().map_or(2, std::num::NonZero::get);
    let round = |iters: usize| {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for r in 0..readers {
                s.spawn(move || {
                    let mut rng = Rng(0xBEEF ^ r as u64);
                    for _ in 0..iters {
                        let (src, dst) = (ids[rng.below(ids.len())], ids[rng.below(ids.len())]);
                        criterion::black_box(repo.decide_by_id(src, dst));
                    }
                });
            }
        });
        (readers * iters) as f64 / t0.elapsed().as_secs_f64()
    };
    round(iters / 4);
    (0..3).map(|_| round(iters)).fold(0.0, f64::max)
}

fn save_bench_json(entry: serde_json::Value) {
    // Benches run with cwd = the package dir; anchor at the workspace root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join("bench_decide.json");
    if !path.parent().is_some_and(std::path::Path::is_dir) {
        return;
    }
    let pretty = serde_json::to_string_pretty(&entry).unwrap();
    if let Err(e) = std::fs::write(&path, pretty) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn decide_path(c: &mut Criterion) {
    let small = std::env::args().any(|a| a == "--small");
    let cost = CostModel::default();
    let sizes: Vec<usize> = if small {
        vec![50, 200]
    } else {
        vec![100, 1_000, 10_000]
    };
    let iters = if small { 20_000 } else { 200_000 };

    let mut group = c.benchmark_group("decide_path");
    group.throughput(Throughput::Elements(1));
    let mut catalogs = Vec::new();
    for &n in &sizes {
        let mut repo = registered(n, &cost);
        let ids = ids(&repo, n);
        group.bench_with_input(BenchmarkId::new("decide_by_id", n), &(), |b, ()| {
            let mut rng = Rng(0xC0FF_EE00 ^ n as u64);
            b.iter(|| {
                let (src, dst) = (ids[rng.below(n)], ids[rng.below(n)]);
                repo.decide_by_id(src, dst)
            })
        });
        // Rebuild both configurations through `with_shards` so they get
        // identical (freshly compacted) stripe storage — otherwise the
        // comparison measures registration-time allocation locality, not
        // the striping itself.
        let default_shards = repo.shard_count();
        repo = repo.with_shards(default_shards);
        let sharded_ops = contended_ops(&repo, &ids, iters);
        repo = repo.with_shards(1);
        let flat_ops = contended_ops(&repo, &ids, iters);
        catalogs.push(serde_json::json!({
            "catalog": n,
            "shards": default_shards,
            "contended_ops_per_s_sharded": sharded_ops,
            "contended_ops_per_s_single_map": flat_ops,
            "sharded_vs_single_map": sharded_ops / flat_ops,
        }));
    }
    group.finish();
    if !small {
        save_bench_json(serde_json::json!({
            "readers": std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            "window": 4,
            "catalogs": catalogs,
        }));
    }
}

criterion_group!(benches, decide_path);
criterion_main!(benches);
