//! Criterion benches of meta-operator application: full plan execution and
//! the Reshape weight crop/zero-pad.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus_core::{execute_plan, GroupPlanner, Planner};
use optimus_model::WeightSpec;
use optimus_profile::CostModel;

fn metaop_benches(c: &mut Criterion) {
    let cost = CostModel::default();
    let src = optimus_zoo::vgg::vgg16();
    let dst = optimus_zoo::vgg::vgg19();
    let plan = GroupPlanner.plan(&src, &dst, &cost);
    c.bench_function("execute_plan/vgg16->vgg19", |b| {
        b.iter(|| {
            let mut g = src.clone();
            execute_plan(&mut g, &plan, &dst).expect("plan executes");
            g
        })
    });

    let r50 = optimus_zoo::resnet::resnet50();
    let r101 = optimus_zoo::resnet::resnet101();
    let plan_up = GroupPlanner.plan(&r50, &r101, &cost);
    c.bench_function("execute_plan/resnet50->resnet101", |b| {
        b.iter(|| {
            let mut g = r50.clone();
            execute_plan(&mut g, &plan_up, &r101).expect("plan executes");
            g
        })
    });

    // Weight crop/pad materialisation (the Reshape semantics).
    let src_w = WeightSpec::seeded([128, 64, 3, 3], 7);
    c.bench_function("reshape/crop_pad_3x3_to_5x5", |b| {
        b.iter(|| WeightSpec::crop_pad_of(src_w.clone(), [128, 64, 5, 5]).materialize())
    });
}

criterion_group!(benches, metaop_benches);
criterion_main!(benches);
