//! Criterion benches of the transformation planners (Table 1's hot path)
//! and the ablation between Munkres / group / naive planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optimus_core::{CostMatrix, GroupPlanner, MunkresPlanner, NaivePlanner, Planner};
use optimus_profile::CostModel;

fn planner_benches(c: &mut Criterion) {
    let cost = CostModel::default();
    let cases = vec![
        (
            "vgg11->vgg13",
            optimus_zoo::vgg::vgg11(),
            optimus_zoo::vgg::vgg13(),
        ),
        (
            "resnet18->resnet34",
            optimus_zoo::resnet::resnet18(),
            optimus_zoo::resnet::resnet34(),
        ),
        (
            "vgg16->resnet50",
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::resnet::resnet50(),
        ),
    ];
    let mut group = c.benchmark_group("planning");
    for (name, src, dst) in &cases {
        group.bench_with_input(BenchmarkId::new("group", name), &(), |b, ()| {
            b.iter(|| GroupPlanner.plan(src, dst, &cost))
        });
        group.bench_with_input(BenchmarkId::new("munkres", name), &(), |b, ()| {
            b.iter(|| MunkresPlanner.plan(src, dst, &cost))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &(), |b, ()| {
            b.iter(|| NaivePlanner.plan(src, dst, &cost))
        });
        group.bench_with_input(BenchmarkId::new("cost-matrix", name), &(), |b, ()| {
            b.iter(|| CostMatrix::build(src, dst, &cost))
        });
    }
    group.finish();
}

criterion_group!(benches, planner_benches);
criterion_main!(benches);
