//! HTTP front-end tests: a real TCP client against the real server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{Gateway, GatewayConfig, HttpServer};

fn tiny(name: &str, ch: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let i = b.input([1, 3, 8, 8]);
    let c = b.conv2d_after(i, 3, ch, (3, 3), (1, 1), 1);
    let a = b.activation_after(c, Activation::Relu);
    let g = b.global_avg_pool_after(a);
    let f = b.flatten_after(g);
    let _ = b.dense_after(f, ch, 4);
    b.finish().unwrap()
}

fn start_server() -> (HttpServer, std::net::SocketAddr) {
    let gw = Arc::new(
        Gateway::builder(GatewayConfig {
            nodes: 1,
            capacity_per_node: 2,
            idle_threshold: 0.0,
            keep_alive: 60.0,
            store: Some(optimus_store::StoreConfig::default()),
            faults: None,
            serving: optimus_serve::ServingConfig::default(),
            predict: None,
        })
        .register(tiny("m1", 4))
        .register(tiny("m2", 8))
        .spawn(),
    );
    let server = HttpServer::serve(gw, 0).expect("binds an ephemeral port");
    let addr = server.addr();
    (server, addr)
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, payload) = response.split_once("\r\n\r\n").expect("valid response");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, payload.to_string())
}

#[test]
fn get_models_lists_registered_names() {
    let (server, addr) = start_server();
    let (status, body) = request(addr, "GET", "/models", "");
    assert!(status.contains("200"), "{status}");
    let names: Vec<String> = serde_json::from_str(&body).expect("json array");
    assert_eq!(names, vec!["m1", "m2"]);
    server.shutdown();
}

#[test]
fn post_infer_serves_and_reports_start_kind() {
    let (server, addr) = start_server();
    let body = r#"{"model":"m1","shape":[1,3,8,8]}"#;
    let (status, payload) = request(addr, "POST", "/infer", body);
    assert!(status.contains("200"), "{status}: {payload}");
    let v: serde_json::Value = serde_json::from_str(&payload).expect("json");
    assert_eq!(v["model"], "m1");
    assert_eq!(v["start"], "cold");
    assert_eq!(v["output_shape"].as_array().unwrap().len(), 2);
    // Second request is warm.
    let (_, payload) = request(addr, "POST", "/infer", body);
    let v: serde_json::Value = serde_json::from_str(&payload).expect("json");
    assert_eq!(v["start"], "warm");
    // m2 transforms the idle m1 container.
    let (_, payload) = request(
        addr,
        "POST",
        "/infer",
        r#"{"model":"m2","shape":[1,3,8,8]}"#,
    );
    let v: serde_json::Value = serde_json::from_str(&payload).expect("json");
    assert_eq!(v["start"], "transformed", "{payload}");
    assert!(v["transform_steps"].as_u64().unwrap() > 0);
    server.shutdown();
}

#[test]
fn bad_requests_get_4xx() {
    let (server, addr) = start_server();
    let (status, _) = request(addr, "POST", "/infer", "{not json");
    assert!(status.contains("400"), "{status}");
    let (status, _) = request(addr, "POST", "/infer", r#"{"shape":[1]}"#);
    assert!(status.contains("400"), "{status}");
    let (status, _) = request(
        addr,
        "POST",
        "/infer",
        r#"{"model":"nope","shape":[1,3,8,8]}"#,
    );
    assert!(status.contains("422"), "{status}");
    let (status, _) = request(addr, "GET", "/missing", "");
    assert!(status.contains("404"), "{status}");
    server.shutdown();
}

#[test]
fn explicit_input_data_is_used() {
    let (server, addr) = start_server();
    // 1x3x8x8 = 192 values of 1.0.
    let data: Vec<String> = (0..192).map(|_| "1.0".to_string()).collect();
    let body = format!(
        r#"{{"model":"m1","shape":[1,3,8,8],"data":[{}]}}"#,
        data.join(",")
    );
    let (status, payload) = request(addr, "POST", "/infer", &body);
    assert!(status.contains("200"), "{status}: {payload}");
    let v: serde_json::Value = serde_json::from_str(&payload).expect("json");
    let zeros = request(
        addr,
        "POST",
        "/infer",
        r#"{"model":"m1","shape":[1,3,8,8]}"#,
    )
    .1;
    let vz: serde_json::Value = serde_json::from_str(&zeros).expect("json");
    assert_ne!(
        v["output"], vz["output"],
        "non-zero input must change the output"
    );
    server.shutdown();
}

#[test]
fn concurrent_http_clients() {
    let (server, addr) = start_server();
    let mut handles = Vec::new();
    for i in 0..6 {
        handles.push(std::thread::spawn(move || {
            let model = if i % 2 == 0 { "m1" } else { "m2" };
            let body = format!(r#"{{"model":"{model}","shape":[1,3,8,8]}}"#);
            let (status, payload) = request(addr, "POST", "/infer", &body);
            assert!(status.contains("200"), "{status}: {payload}");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn get_store_reports_residency_and_dedup() {
    let (server, addr) = start_server();
    // Cold-start m1 so the store has admitted chunks.
    let (status, _) = request(
        addr,
        "POST",
        "/infer",
        r#"{"model":"m1","shape":[1,3,8,8]}"#,
    );
    assert!(status.contains("200"), "{status}");
    let (status, payload) = request(addr, "GET", "/store", "");
    assert!(status.contains("200"), "{status}");
    let v: serde_json::Value = serde_json::from_str(&payload).unwrap();
    assert_eq!(v["enabled"], true);
    assert!(v["total"]["container_bytes"].as_u64().unwrap() > 0);
    assert!(v["total"]["misses"].as_u64().unwrap() > 0);
    assert!(!v["nodes"].as_array().unwrap().is_empty(), "{payload}");
    // The weight-store gauges are part of the Prometheus exposition.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert!(status.contains("200"), "{status}");
    assert!(
        metrics.contains("optimus_store_resident_bytes"),
        "{metrics}"
    );
    assert!(metrics.contains("optimus_store_dedup_ratio"), "{metrics}");
    server.shutdown();
}
