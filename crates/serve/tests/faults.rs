//! Resilience tests for the live gateway: injected faults must degrade
//! service (cold starts, failover, retries) — never corrupt it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{
    FaultSpec, Gateway, GatewayConfig, HttpConfig, HttpServer, RetryPolicy, ServeError, ServedStart,
};
use optimus_telemetry::MetricsRegistry;

fn tiny(name: &str, ch: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let i = b.input([1, 3, 8, 8]);
    let c = b.conv2d_after(i, 3, ch, (3, 3), (1, 1), 1);
    let a = b.activation_after(c, Activation::Relu);
    let g = b.global_avg_pool_after(a);
    let f = b.flatten_after(g);
    let _ = b.dense_after(f, ch, 4);
    b.finish().unwrap()
}

fn config(nodes: usize, faults: FaultSpec) -> GatewayConfig {
    GatewayConfig {
        nodes,
        capacity_per_node: 2,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: Some(faults),
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    }
}

/// Every transformation aborts (rate 1.0): the safeguard escalates to a
/// cold start and the client still gets a correct answer — never an
/// error, never a half-transformed model.
#[test]
fn injected_transform_failure_escalates_to_cold() {
    let registry = Arc::new(MetricsRegistry::new());
    let spec = FaultSpec {
        transform_failure_rate: 1.0,
        ..FaultSpec::off(5)
    };
    let gw = Gateway::builder(config(1, spec))
        .metrics(registry.clone())
        .register(tiny("m1", 4))
        .register(tiny("m2", 8))
        .spawn();
    let r1 = gw.infer("m1", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r1.start, ServedStart::Cold);
    // m2 would transform the idle m1 donor; the injected failure forces
    // the escalation path instead.
    let r2 = gw.infer("m2", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r2.start, ServedStart::Cold, "safeguard escalated");
    assert_eq!(r2.transform_steps, 0);
    assert_eq!(r2.model, "m2", "served the right model");
    let escalations = registry
        .counter("optimus_safeguard_escalations_total", &[("node", "0")])
        .get();
    assert!(escalations >= 1, "escalation must be counted");
    let injected = registry
        .counter(
            "optimus_faults_injected_total",
            &[("kind", "transform_failure")],
        )
        .get();
    assert!(injected >= 2, "every request drew the fault");
    gw.shutdown();
}

/// A crashed home node is marked unhealthy and requests fail over to the
/// surviving node; the crash wipes the home node's containers and
/// volatile store tiers.
#[test]
fn node_crash_fails_over_to_healthy_node() {
    let registry = Arc::new(MetricsRegistry::new());
    let spec = FaultSpec {
        node_crash_rate: 1.0,
        recovery_seconds: 60.0,
        ..FaultSpec::off(9)
    };
    let gw = Gateway::builder(config(2, spec))
        .metrics(registry.clone())
        .register(tiny("a", 4))
        .spawn();
    let r = gw.infer("a", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.node, 1, "home node 0 crashed; node 1 serves");
    assert_eq!(gw.healthy_nodes(), vec![false, true]);
    // The second request warm-hits the failover node.
    let r = gw.infer("a", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.node, 1);
    assert_eq!(r.start, ServedStart::Warm);
    assert!(
        registry.counter("optimus_reroutes_total", &[]).get() >= 2,
        "both requests re-routed"
    );
    assert!(
        registry
            .counter("optimus_faults_injected_total", &[("kind", "node_crash")])
            .get()
            >= 1
    );
    gw.shutdown();
}

/// With a single node and a permanent crash, retries back off and then
/// surface `Unavailable` instead of hanging forever.
#[test]
fn all_nodes_down_is_unavailable() {
    let spec = FaultSpec {
        node_crash_rate: 1.0,
        recovery_seconds: 60.0,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_seconds: 0.001,
            backoff_multiplier: 2.0,
        },
        ..FaultSpec::off(3)
    };
    let gw = Gateway::builder(config(1, spec))
        .register(tiny("a", 4))
        .spawn();
    let err = gw.infer("a", Tensor::zeros([1, 3, 8, 8])).unwrap_err();
    assert!(
        matches!(err, ServeError::Unavailable(_)),
        "expected Unavailable, got {err:?}"
    );
    assert_eq!(gw.healthy_nodes(), vec![false]);
    gw.shutdown();
}

/// A quiet spec (all rates zero) must serve exactly like a fault-free
/// gateway and inject nothing.
#[test]
fn quiet_fault_spec_serves_normally() {
    let registry = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(config(1, FaultSpec::off(1)))
        .metrics(registry.clone())
        .register(tiny("m1", 4))
        .spawn();
    let r = gw.infer("m1", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Cold);
    let r = gw.infer("m1", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Warm);
    for kind in ["node_crash", "container_kill", "transform_failure"] {
        assert_eq!(
            registry
                .counter("optimus_faults_injected_total", &[("kind", kind)])
                .get(),
            0,
            "{kind}"
        );
    }
    assert_eq!(gw.healthy_nodes(), vec![true]);
    gw.shutdown();
}

/// A client that stalls mid-request hits the socket read timeout and gets
/// a `408`; a live client sees per-node health in `/healthz`.
#[test]
fn stalled_client_gets_408_and_healthz_reports_nodes() {
    let gw = Arc::new(
        Gateway::builder(GatewayConfig {
            nodes: 1,
            capacity_per_node: 2,
            idle_threshold: 0.0,
            keep_alive: 60.0,
            store: None,
            faults: None,
            serving: optimus_serve::ServingConfig::default(),
            predict: None,
        })
        .register(tiny("m1", 4))
        .spawn(),
    );
    let server = HttpServer::serve_with(
        gw,
        0,
        HttpConfig {
            read_timeout: Some(Duration::from_millis(200)),
            write_timeout: Some(Duration::from_secs(5)),
            ..HttpConfig::default()
        },
    )
    .expect("binds");
    let addr = server.addr();

    // Stalled client: an unterminated request line, then silence.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(b"GET /healthz HTTP").expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.contains("408"), "{response}");

    // Healthy client: per-node health in the probe body.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.contains("200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    let v: serde_json::Value = serde_json::from_str(body).expect("json");
    assert_eq!(v["status"], "ok");
    assert_eq!(v["nodes"], serde_json::json!([true]));
    server.shutdown();
}
