//! Elastic fleet tests for the live gateway: nodes register warm (the
//! catalog chunk set is shipped ahead of traffic), join the failover
//! ring, and drain back out — with the initial fleet as the floor.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus_serve::{FaultSpec, Gateway, GatewayConfig, HttpServer, RetryPolicy, ServedStart};

fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch * 16, 4);
    b.finish().unwrap()
}

fn single_node() -> GatewayConfig {
    GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    }
}

/// Poll until `pred` holds (worker threads apply warm transfers
/// asynchronously) or a generous deadline expires.
fn eventually(mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

#[test]
fn registered_node_joins_warm_and_drains_back_out() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m", &[4]))
        .spawn();
    assert_eq!(gw.fleet_size(), 1);
    let r = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Cold);

    let id = gw.register_node();
    assert_eq!(id, 1, "slots are append-only");
    assert_eq!(gw.fleet_size(), 2);
    assert_eq!(gw.healthy_nodes(), vec![true, true]);
    // The warm transfer lands asynchronously: the catalog chunk set shows
    // up resident at node memory without any request touching the node.
    assert!(
        eventually(|| {
            gw.store_stats_by_node()
                .iter()
                .any(|&(n, s)| n == 1 && s.memory_bytes > 0 && s.misses == 0)
        }),
        "joiner never published a warm store: {:?}",
        gw.store_stats_by_node()
    );
    // Node 0 held the only replica, so the transfer was peer-sourced.
    let peer = gw
        .metrics()
        .counter("optimus_fleet_multicast_bytes_total", &[("source", "peer")]);
    assert!(peer.get() > 0, "warm bytes counted as peer traffic");

    assert!(!gw.drain_node(0), "the initial fleet is the scaling floor");
    assert!(gw.drain_node(1), "extras drain");
    assert!(!gw.drain_node(1), "already drained");
    assert_eq!(gw.fleet_size(), 1);
    assert_eq!(gw.healthy_nodes(), vec![true, false]);
    // The shrunk fleet still serves.
    let r = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Warm);
    gw.shutdown();
}

/// Regression for drain vs in-flight work: requests already queued on a
/// node when it drains must complete (the worker finishes its queue
/// before exiting), and later requests must be answered — rerouted or
/// refused — never silently dropped.
#[test]
fn drain_finishes_queued_requests_and_never_drops_them() {
    // Crash rate 1.0 with a long recovery: the home node (0) goes down on
    // the first draw and every request fails over to the elastically
    // registered node 1 — the node we then drain mid-backlog.
    let spec = FaultSpec {
        node_crash_rate: 1.0,
        recovery_seconds: 60.0,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_seconds: 0.001,
            backoff_multiplier: 2.0,
        },
        ..FaultSpec::off(7)
    };
    let config = GatewayConfig {
        faults: Some(spec),
        ..single_node()
    };
    let gw = Gateway::builder(config)
        // Isolated registry: the global scale-event counters are
        // asserted exactly by `fleet_gauges_track_scale_events`.
        .metrics(std::sync::Arc::new(
            optimus_telemetry::MetricsRegistry::new(),
        ))
        .register(tiny("m", &[4]))
        .spawn();
    assert_eq!(gw.register_node(), 1);

    // Build a backlog on node 1, then drain it while the queue is live.
    let mut pending: Vec<_> = (0..12)
        .map(|_| gw.submit("m", Tensor::zeros([1, 3, 8, 8])).expect("admits"))
        .collect();
    assert!(gw.drain_node(1), "the extra node drains");

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut results = Vec::new();
    while !pending.is_empty() {
        assert!(
            Instant::now() < deadline,
            "queued requests on the drained node never completed"
        );
        pending.retain_mut(|p| match gw.poll(p) {
            Some(r) => {
                results.push(r);
                false
            }
            None => true,
        });
        std::thread::sleep(Duration::from_micros(200));
    }
    for (i, r) in results.iter().enumerate() {
        let r = r
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i} queued before the drain was dropped: {e}"));
        assert_eq!(r.node, 1, "request {i} was queued on the draining node");
    }
    // A request after the drain finds no healthy node (0 is crashed for
    // 60s, 1 is drained): it must be *answered* with Unavailable — an
    // explicit refusal, not a hang or a dropped reply.
    let after = gw.infer("m", Tensor::zeros([1, 3, 8, 8]));
    assert!(
        matches!(after, Err(optimus_serve::ServeError::Unavailable(_))),
        "post-drain request must be refused explicitly: {after:?}"
    );
    gw.shutdown();
}

/// Regression for drain vs persistent connections: a keep-alive client
/// mid-stream across register/drain fleet events keeps its connection —
/// every pipelined request is answered in order on the same socket.
#[test]
fn keep_alive_connection_survives_register_and_drain() {
    let gw = std::sync::Arc::new(
        Gateway::builder(single_node())
            // Isolated registry: keep the global scale-event counters
            // untouched for `fleet_gauges_track_scale_events`.
            .metrics(std::sync::Arc::new(
                optimus_telemetry::MetricsRegistry::new(),
            ))
            .register(tiny("m", &[4]))
            .spawn(),
    );
    let server = HttpServer::serve(gw.clone(), 0).expect("binds");
    let stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);

    let body = r#"{"model":"m","shape":[1,3,8,8]}"#;
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
        body.len(),
        body
    );
    let mut exchange = || {
        writer.write_all(request.as_bytes()).expect("writes");
        let mut status = String::new();
        reader.read_line(&mut status).expect("reads status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reads header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse::<usize>().ok())
            {
                content_length = v;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("reads body");
        assert!(status.contains("200"), "{status}");
        serde_json::from_slice::<serde_json::Value>(&body).expect("json response")
    };

    let r1 = exchange();
    assert_eq!(r1["model"], "m");
    let id = gw.register_node();
    let r2 = exchange();
    assert_eq!(r2["model"], "m", "request mid scale-out answered");
    assert!(gw.drain_node(id));
    let r3 = exchange();
    assert_eq!(
        r3["model"], "m",
        "request after drain answered on the same socket"
    );
    assert_eq!(gw.fleet_size(), 1);
    server.shutdown();
}

#[test]
fn fleet_gauges_track_scale_events() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m", &[4]))
        .spawn();
    let nodes = gw.metrics().gauge("optimus_fleet_nodes", &[]);
    let outs = gw
        .metrics()
        .counter("optimus_fleet_scale_events_total", &[("direction", "out")]);
    let ins = gw
        .metrics()
        .counter("optimus_fleet_scale_events_total", &[("direction", "in")]);
    assert_eq!(nodes.get(), 1.0);
    let a = gw.register_node();
    let b = gw.register_node();
    assert_eq!((a, b), (1, 2));
    assert_eq!(nodes.get(), 3.0);
    assert_eq!(outs.get(), 2);
    assert!(gw.drain_node(a));
    assert_eq!(nodes.get(), 2.0);
    assert_eq!(ins.get(), 1);
    // Render sanity: the fleet family is exposed for scrapes.
    let text = gw.metrics().render_prometheus();
    assert!(text.contains("optimus_fleet_nodes"), "{text}");
    gw.shutdown();
}
