//! Elastic fleet tests for the live gateway: nodes register warm (the
//! catalog chunk set is shipped ahead of traffic), join the failover
//! ring, and drain back out — with the initial fleet as the floor.

use std::time::{Duration, Instant};

use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus_serve::{Gateway, GatewayConfig, ServedStart};

fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch * 16, 4);
    b.finish().unwrap()
}

fn single_node() -> GatewayConfig {
    GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
    }
}

/// Poll until `pred` holds (worker threads apply warm transfers
/// asynchronously) or a generous deadline expires.
fn eventually(mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

#[test]
fn registered_node_joins_warm_and_drains_back_out() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m", &[4]))
        .spawn();
    assert_eq!(gw.fleet_size(), 1);
    let r = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Cold);

    let id = gw.register_node();
    assert_eq!(id, 1, "slots are append-only");
    assert_eq!(gw.fleet_size(), 2);
    assert_eq!(gw.healthy_nodes(), vec![true, true]);
    // The warm transfer lands asynchronously: the catalog chunk set shows
    // up resident at node memory without any request touching the node.
    assert!(
        eventually(|| {
            gw.store_stats_by_node()
                .iter()
                .any(|&(n, s)| n == 1 && s.memory_bytes > 0 && s.misses == 0)
        }),
        "joiner never published a warm store: {:?}",
        gw.store_stats_by_node()
    );
    // Node 0 held the only replica, so the transfer was peer-sourced.
    let peer = gw
        .metrics()
        .counter("optimus_fleet_multicast_bytes_total", &[("source", "peer")]);
    assert!(peer.get() > 0, "warm bytes counted as peer traffic");

    assert!(!gw.drain_node(0), "the initial fleet is the scaling floor");
    assert!(gw.drain_node(1), "extras drain");
    assert!(!gw.drain_node(1), "already drained");
    assert_eq!(gw.fleet_size(), 1);
    assert_eq!(gw.healthy_nodes(), vec![true, false]);
    // The shrunk fleet still serves.
    let r = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Warm);
    gw.shutdown();
}

#[test]
fn fleet_gauges_track_scale_events() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m", &[4]))
        .spawn();
    let nodes = gw.metrics().gauge("optimus_fleet_nodes", &[]);
    let outs = gw
        .metrics()
        .counter("optimus_fleet_scale_events_total", &[("direction", "out")]);
    let ins = gw
        .metrics()
        .counter("optimus_fleet_scale_events_total", &[("direction", "in")]);
    assert_eq!(nodes.get(), 1.0);
    let a = gw.register_node();
    let b = gw.register_node();
    assert_eq!((a, b), (1, 2));
    assert_eq!(nodes.get(), 3.0);
    assert_eq!(outs.get(), 2);
    assert!(gw.drain_node(a));
    assert_eq!(nodes.get(), 2.0);
    assert_eq!(ins.get(), 1);
    // Render sanity: the fleet family is exposed for scrapes.
    let text = gw.metrics().render_prometheus();
    assert!(text.contains("optimus_fleet_nodes"), "{text}");
    gw.shutdown();
}
