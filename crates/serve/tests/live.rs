//! Live serving-engine tests: real threads, real transformations, real
//! inference.

use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus_serve::{Gateway, GatewayConfig, ServeError, ServedStart};

/// A tiny CNN small enough for the naive forward-pass engine.
fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch * 16, 4);
    b.finish().unwrap()
}

fn single_node() -> GatewayConfig {
    GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0, // everything idles instantly (tests)
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    }
}

#[test]
fn cold_then_warm_start() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m", &[4]))
        .spawn();
    let r1 = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r1.start, ServedStart::Cold);
    assert_eq!(r1.output.shape().dims(), &[1, 4]);
    let r2 = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r2.start, ServedStart::Warm);
    assert_eq!(r2.transform_steps, 0);
    gw.shutdown();
}

#[test]
fn idle_container_is_really_transformed() {
    let gw = Gateway::builder(single_node())
        .register(tiny("small", &[4]))
        .register(tiny("large", &[4, 8]))
        .spawn();
    // Cold-start "small"; it instantly counts as idle (threshold 0).
    let r1 = gw.infer("small", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r1.start, ServedStart::Cold);
    // "large" must be served by transforming the idle "small" container.
    let r2 = gw.infer("large", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r2.start, ServedStart::Transformed);
    assert!(r2.transform_steps > 0, "meta-operators actually executed");
    assert_eq!(r2.output.shape().dims(), &[1, 4]);
    assert!(r2.output.data().iter().all(|v| v.is_finite()));
    gw.shutdown();
}

#[test]
fn transformation_roundtrip_back_and_forth() {
    let gw = Gateway::builder(single_node())
        .register(tiny("a", &[4]))
        .register(tiny("b", &[8, 8]))
        .spawn();
    for _ in 0..3 {
        let ra = gw.infer("a", Tensor::zeros([1, 3, 8, 8])).unwrap();
        assert!(ra.output.data().iter().all(|v| v.is_finite()));
        let rb = gw.infer("b", Tensor::zeros([1, 3, 8, 8])).unwrap();
        assert!(rb.output.data().iter().all(|v| v.is_finite()));
    }
    gw.shutdown();
}

#[test]
fn unknown_model_and_bad_input_are_reported() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m", &[4]))
        .spawn();
    assert!(matches!(
        gw.infer("nope", Tensor::zeros([1, 3, 8, 8])),
        Err(ServeError::UnknownModel(_))
    ));
    assert!(matches!(
        gw.infer("m", Tensor::zeros([1, 1, 8, 8])),
        Err(ServeError::Inference(_))
    ));
    gw.shutdown();
}

#[test]
fn concurrent_clients_are_all_served() {
    let config = GatewayConfig {
        nodes: 2,
        capacity_per_node: 2,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    };
    let gw = std::sync::Arc::new(
        Gateway::builder(config)
            .register(tiny("a", &[4]))
            .register(tiny("b", &[8]))
            .register(tiny("c", &[4, 4]))
            .register(tiny("d", &[8, 8]))
            .spawn(),
    );
    let mut clients = Vec::new();
    for t in 0..8 {
        let gw = gw.clone();
        clients.push(std::thread::spawn(move || {
            let names = ["a", "b", "c", "d"];
            for i in 0..10 {
                let m = names[(t + i) % 4];
                let r = gw.infer(m, Tensor::zeros([1, 3, 8, 8])).unwrap();
                assert_eq!(r.model, m);
                assert!(r.output.data().iter().all(|v| v.is_finite()));
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let gw = std::sync::Arc::try_unwrap(gw)
        .ok()
        .expect("all clients done");
    gw.shutdown();
}

#[test]
fn capacity_is_respected_via_lru_eviction() {
    // Capacity 1: each new model evicts (or transforms) the previous one,
    // but requests always succeed.
    let config = GatewayConfig {
        nodes: 1,
        capacity_per_node: 1,
        idle_threshold: 1e9, // never idle: forces the eviction path
        keep_alive: 1e9,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    };
    let gw = Gateway::builder(config)
        .register(tiny("x", &[4]))
        .register(tiny("y", &[8]))
        .spawn();
    for m in ["x", "y", "x", "y"] {
        let r = gw.infer(m, Tensor::zeros([1, 3, 8, 8])).unwrap();
        assert_eq!(r.start, ServedStart::Cold, "{m} must cold-start each time");
    }
    gw.shutdown();
}

#[test]
fn models_listing_and_drop_shutdown() {
    let gw = Gateway::builder(single_node())
        .register(tiny("m1", &[4]))
        .register(tiny("m2", &[8]))
        .spawn();
    assert_eq!(gw.models(), vec!["m1", "m2"]);
    drop(gw); // Drop-based shutdown must not hang.
}

/// A tiny attention model (embedding + one self-attention block).
fn tiny_attention(name: &str, hidden: usize, heads: usize) -> ModelGraph {
    use optimus_model::OpAttrs;
    let mut b = GraphBuilder::new(name);
    let i = b.input([1, 4]);
    let emb = b.after(i, "emb", OpAttrs::Embedding { vocab: 32, hidden });
    let q = b.after(emb, "q", OpAttrs::Query { hidden, heads });
    let k = b.after(emb, "k", OpAttrs::Key { hidden, heads });
    let v = b.after(emb, "v", OpAttrs::Value { hidden, heads });
    let l = b.merge(&[q, k], "logit", OpAttrs::Logit { heads });
    let sm = b.after(l, "softmax", OpAttrs::Softmax);
    let at = b.merge(&[sm, v], "attend", OpAttrs::Attend { heads });
    let _ = b.after(at, "out", OpAttrs::AttnOutput { hidden });
    b.finish().unwrap()
}

#[test]
fn live_transformer_transformation() {
    // §5.2 live: a small attention model is reshaped into a wider one
    // inside the container, then actually runs attention inference.
    let gw = Gateway::builder(single_node())
        .register(tiny_attention("attn-narrow", 8, 2))
        .register(tiny_attention("attn-wide", 16, 4))
        .spawn();
    let ids = Tensor::new([1, 4], vec![1.0, 2.0, 3.0, 4.0]);
    let r1 = gw.infer("attn-narrow", ids.clone()).unwrap();
    assert_eq!(r1.start, ServedStart::Cold);
    assert_eq!(r1.output.shape().dims(), &[1, 4, 8]);
    let r2 = gw.infer("attn-wide", ids).unwrap();
    assert_eq!(r2.start, ServedStart::Transformed);
    assert!(r2.transform_steps > 0);
    assert_eq!(r2.output.shape().dims(), &[1, 4, 16]);
    assert!(r2.output.data().iter().all(|v| v.is_finite()));
    gw.shutdown();
}

#[test]
fn live_rnn_transformation() {
    use optimus_model::OpAttrs;
    let rnn = |name: &str, hidden: usize| {
        let mut b = GraphBuilder::new(name);
        let i = b.input([1, 5]);
        let emb = b.after(
            i,
            "emb",
            OpAttrs::Embedding {
                vocab: 16,
                hidden: 8,
            },
        );
        let l = b.after(emb, "lstm", OpAttrs::Lstm { input: 8, hidden });
        let _ = b.after(
            l,
            "clf",
            OpAttrs::Dense {
                in_features: hidden,
                out_features: 2,
                bias: true,
            },
        );
        b.finish().unwrap()
    };
    let gw = Gateway::builder(single_node())
        .register(rnn("rnn-small", 6))
        .register(rnn("rnn-large", 12))
        .spawn();
    let ids = Tensor::new([1, 5], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    let r1 = gw.infer("rnn-small", ids.clone()).unwrap();
    assert_eq!(r1.start, ServedStart::Cold);
    let r2 = gw.infer("rnn-large", ids).unwrap();
    assert_eq!(r2.start, ServedStart::Transformed);
    assert_eq!(r2.output.shape().dims(), &[1, 5, 2]);
    gw.shutdown();
}

#[test]
fn store_accounts_the_container_lifecycle() {
    // With the weight store enabled, cold starts admit chunks (misses),
    // warm hits leave the store untouched, and a transformation admits
    // only the cached plan's payload delta.
    let gw = Gateway::builder(single_node())
        .register(tiny("a", &[4]))
        .register(tiny("b", &[8]))
        .spawn();
    let input = Tensor::zeros([1, 3, 8, 8]);

    let r = gw.infer("a", input.clone()).unwrap();
    assert_eq!(r.start, ServedStart::Cold);
    let after_cold = gw.store_stats().expect("store enabled by config");
    assert!(after_cold.misses > 0, "cold start fetches from remote");
    assert!(after_cold.container_bytes > 0, "model chunks are resident");

    let r = gw.infer("a", input.clone()).unwrap();
    assert_eq!(r.start, ServedStart::Warm);
    let after_warm = gw.store_stats().unwrap();
    assert_eq!(
        after_warm.admitted_bytes, after_cold.admitted_bytes,
        "warm hits admit nothing"
    );

    let r = gw.infer("b", input).unwrap();
    assert_eq!(r.start, ServedStart::Transformed);
    let after_transform = gw.store_stats().unwrap();
    let delta_fetched = after_transform.fetched_bytes - after_cold.fetched_bytes;
    let delta_admitted = after_transform.admitted_bytes - after_cold.admitted_bytes;
    assert!(
        delta_fetched <= delta_admitted,
        "the transform fetches at most the plan payload"
    );
    assert!(
        after_transform.container_bytes > 0,
        "the transformed model's chunks are resident"
    );

    let per_node = gw.store_stats_by_node();
    assert_eq!(per_node.len(), 1, "single node publishes one snapshot");
    gw.shutdown();
}

#[test]
fn store_disabled_reports_nothing() {
    let config = GatewayConfig {
        store: None,
        ..single_node()
    };
    let gw = Gateway::builder(config).register(tiny("a", &[4])).spawn();
    let r = gw.infer("a", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r.start, ServedStart::Cold);
    assert!(gw.store_stats().is_none(), "no store, no stats");
    assert!(gw.store_stats_by_node().is_empty());
    gw.shutdown();
}
