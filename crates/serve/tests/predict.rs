//! Live arrival-prediction tests: prediction off leaves the engine
//! untouched, adaptive keep-alive replaces the global window with learned
//! per-model windows, and idle-tick speculation converts an idle donor
//! ahead of a predicted arrival into a real warm hit.

use std::time::Duration;

use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus_serve::{
    Gateway, GatewayConfig, MetricsRegistry, PredictConfig, ServedStart, SpeculationConfig,
};

/// A tiny CNN small enough for the naive forward-pass engine.
fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch * 16, 4);
    b.finish().unwrap()
}

fn input() -> Tensor {
    Tensor::zeros([1, 3, 8, 8])
}

#[test]
fn prediction_off_is_invisible() {
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let config = GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0,
        keep_alive: 30.0,
        store: None,
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    };
    let gw = Gateway::builder(config)
        .metrics(registry.clone())
        .register(tiny("m", &[4]))
        .spawn();
    assert_eq!(gw.infer("m", input()).unwrap().start, ServedStart::Cold);
    assert_eq!(gw.infer("m", input()).unwrap().start, ServedStart::Warm);
    // No predictor: the global keep-alive applies, no demand is ever
    // forecast, and no `optimus_predict_*` series exist.
    assert_eq!(gw.keep_alive_for("m"), Some(30.0));
    assert_eq!(gw.keep_alive_for("nope"), None);
    assert_eq!(gw.predicted_demand(1e9), 0);
    assert!(
        !registry.render_prometheus().contains("optimus_predict"),
        "prediction off must not register its metric families"
    );
    gw.shutdown();
}

#[test]
fn adaptive_keep_alive_applies_learned_windows() {
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let config = GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0,
        keep_alive: 30.0,
        store: None,
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: Some(PredictConfig {
            min_history: 2,
            keep_alive_floor: 0.05,
            keep_alive_ceiling: 0.4,
            adaptive_keep_alive: true,
            speculation: None,
            ..PredictConfig::default()
        }),
    };
    let gw = Gateway::builder(config)
        .metrics(registry.clone())
        .register(tiny("m", &[4]))
        .spawn();
    // Arrivals every ~150 ms teach the predictor a sub-second window.
    for _ in 0..5 {
        gw.infer("m", input()).unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    let window = gw.keep_alive_for("m").unwrap();
    assert!(
        window > 0.0 && window <= 0.4,
        "learned window replaces the 30 s global constant: {window}"
    );
    // Idle well past the learned window but far under the global 30 s:
    // the adaptive sweep must have evicted the container.
    std::thread::sleep(Duration::from_millis(900));
    assert_eq!(
        gw.infer("m", input()).unwrap().start,
        ServedStart::Cold,
        "a learned sub-second window evicts what a 30 s window would keep"
    );
    assert!(
        registry
            .counter("optimus_predict_observed_total", &[])
            .get()
            >= 6
    );
    assert!(registry
        .render_prometheus()
        .contains("optimus_predict_keep_alive_seconds"));
    gw.shutdown();
}

#[test]
fn speculation_warms_a_predicted_arrival() {
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let config = GatewayConfig {
        nodes: 1,
        capacity_per_node: 4,
        idle_threshold: 0.1,
        keep_alive: 0.6,
        store: None,
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: Some(PredictConfig {
            min_history: 2,
            adaptive_keep_alive: false,
            // A generous lead keeps the whole forecast band eligible; a
            // high aggressiveness leaves only the hard budget gate
            // (plan cost < scratch load) in play for these tiny models.
            speculation: Some(SpeculationConfig {
                lead: 5.0,
                aggressiveness: 100.0,
            }),
            ..PredictConfig::default()
        }),
    };
    let gw = Gateway::builder(config)
        .metrics(registry.clone())
        // In-process "loads" are graph clones (microseconds), so the
        // default measured-wall-clock guard would demote every plan
        // after two real transforms; judge plans by modeled cost only.
        .overrun_policy(f64::INFINITY, 2)
        .register(tiny("feeder", &[4]))
        .register(tiny("hot", &[4, 8]))
        .spawn();
    // "hot" returns every ~1 s — past the 0.6 s keep-alive, so reactively
    // it can never warm-start. "feeder" refreshes strictly every 250 ms
    // (a uniform cadence keeps its own forecast band closed whenever a
    // donor is idle), keeping a same-family donor around. Once "hot" has
    // history, an idle tick between its arrivals transforms the donor
    // ahead of time.
    let mut starts = Vec::new();
    for step in 0..24 {
        if step % 4 == 0 {
            starts.push(gw.infer("hot", input()).unwrap().start);
        }
        gw.infer("feeder", input()).unwrap();
        std::thread::sleep(Duration::from_millis(250));
    }
    let speculations = registry
        .counter("optimus_predict_speculations_total", &[])
        .get();
    let hits = registry
        .counter("optimus_predict_spec_hits_total", &[])
        .get();
    assert!(
        speculations >= 1,
        "speculative transforms fired: {starts:?}"
    );
    assert!(hits >= 1, "a predicted arrival warm-started: {starts:?}");
    assert!(hits <= speculations);
    assert!(
        starts.iter().skip(2).any(|s| *s == ServedStart::Warm),
        "warm hits are impossible here without speculation: {starts:?}"
    );
    // With fresh history on both models, the forecast bands ahead feed
    // the predictive scale-out signal.
    assert!(gw.predicted_demand(10.0) >= 1);
    gw.shutdown();
}
