//! Persistent plan-cache tests for the live gateway: a gateway pointed at
//! a plan-cache path persists its planned artifact on registration, a
//! restarted gateway warm-loads it (serving its first transform without
//! ever invoking the planner), and elastically joining nodes receive the
//! artifact's chunks alongside the catalog weights.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use optimus_core::PlanArtifact;
use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus_serve::{Gateway, GatewayConfig, ServedStart};
use optimus_telemetry::MetricsRegistry;

fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch * 16, 4);
    b.finish().unwrap()
}

fn single_node() -> GatewayConfig {
    GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    }
}

/// A unique scratch path under the system temp dir; the file does not
/// exist yet.
fn scratch_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "optimus-serve-plan-cache-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("plans.json")
}

/// Poll until `pred` holds (worker threads apply warm transfers
/// asynchronously) or a generous deadline expires.
fn eventually(mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

#[test]
fn restart_warm_loads_persisted_plans_and_skips_the_planner() {
    let path = scratch_path("restart");
    let models = || vec![tiny("small", &[4]), tiny("large", &[4, 8])];

    // Cold run: no artifact on disk, so registration invokes the planner
    // and persists the result.
    let cold_metrics = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(cold_metrics.clone())
        .plan_cache_path(&path)
        .register_all(models())
        .spawn();
    assert!(path.exists(), "registration persists the plan artifact");
    let artifact = PlanArtifact::from_json(&std::fs::read_to_string(&path).unwrap())
        .expect("the persisted artifact round-trips");
    assert_eq!(artifact.len(), 2, "both directions of the pair are cached");
    assert!(
        cold_metrics
            .histogram("optimus_planning_seconds", &[])
            .count()
            > 0,
        "cold registration planned from scratch"
    );
    assert_eq!(
        cold_metrics
            .histogram("optimus_plan_cache_load_seconds", &[])
            .count(),
        0,
        "nothing to warm-load on the first run"
    );
    gw.shutdown();

    // Restart against the same path: every plan comes out of the artifact
    // and the planner never runs — including for the first live transform.
    let warm_metrics = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(warm_metrics.clone())
        .plan_cache_path(&path)
        .register_all(models())
        .spawn();
    let hit = warm_metrics.counter("optimus_plan_cache_warm_total", &[("result", "hit")]);
    let miss = warm_metrics.counter("optimus_plan_cache_warm_total", &[("result", "miss")]);
    assert_eq!(hit.get(), 2, "both cached plans warm-load");
    assert_eq!(miss.get(), 0);
    assert_eq!(
        warm_metrics
            .histogram("optimus_plan_cache_load_seconds", &[])
            .count(),
        1,
        "the warm load is timed once"
    );
    let planning = warm_metrics.histogram("optimus_planning_seconds", &[]);
    assert_eq!(planning.count(), 0, "warm registration never plans");

    let r1 = gw.infer("small", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(r1.start, ServedStart::Cold);
    let r2 = gw.infer("large", Tensor::zeros([1, 3, 8, 8])).unwrap();
    assert_eq!(
        r2.start,
        ServedStart::Transformed,
        "the restarted node serves its first transform from the warm cache"
    );
    assert_eq!(
        planning.count(),
        0,
        "serving the first transform did not invoke the planner"
    );
    gw.shutdown();
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn corrupt_artifact_falls_back_to_cold_planning_and_is_rewritten() {
    let path = scratch_path("corrupt");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, "{\"version\": 999}").unwrap();

    let metrics = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(metrics.clone())
        .plan_cache_path(&path)
        .register_all(vec![tiny("small", &[4]), tiny("large", &[4, 8])])
        .spawn();
    // The incompatible artifact is ignored, not trusted: registration
    // plans from scratch and no warm hit/miss is counted.
    assert!(
        metrics.histogram("optimus_planning_seconds", &[]).count() > 0,
        "incompatible artifact forces cold planning"
    );
    let hit = metrics.counter("optimus_plan_cache_warm_total", &[("result", "hit")]);
    let miss = metrics.counter("optimus_plan_cache_warm_total", &[("result", "miss")]);
    assert_eq!((hit.get(), miss.get()), (0, 0));
    assert_eq!(
        metrics
            .histogram("optimus_plan_cache_load_seconds", &[])
            .count(),
        0
    );
    // The stale file is replaced with a loadable artifact.
    let artifact = PlanArtifact::from_json(&std::fs::read_to_string(&path).unwrap())
        .expect("the rewritten artifact is valid");
    assert_eq!(artifact.len(), 2);
    gw.shutdown();
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn joiner_warm_transfer_ships_plan_artifact_chunks() {
    let metrics = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(metrics.clone())
        .register_all(vec![tiny("small", &[4]), tiny("large", &[4, 8])])
        .spawn();

    // What the catalog weights alone would occupy on the joiner.
    let sc = optimus_store::StoreConfig::default();
    let mut seen = std::collections::HashSet::new();
    let mut weight_bytes = 0u64;
    for m in [tiny("small", &[4]), tiny("large", &[4, 8])] {
        for c in optimus_store::model_chunks(&m, sc.chunk_bytes) {
            if seen.insert(c.id) {
                weight_bytes += c.bytes;
            }
        }
    }

    let id = gw.register_node();
    assert!(
        eventually(|| {
            gw.store_stats_by_node()
                .iter()
                .any(|&(n, s)| n == id && s.memory_bytes > weight_bytes)
        }),
        "joiner memory never exceeded the weights-only footprint: {:?} (weights = {weight_bytes})",
        gw.store_stats_by_node()
    );
    gw.shutdown();
}
