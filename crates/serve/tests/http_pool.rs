//! Tests of the pooled keep-alive HTTP front end: pipelining over one
//! persistent connection, fragmented writes, 431/413 limits, and 429
//! admission control with health endpoints that stay responsive under
//! saturation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{Gateway, GatewayConfig, HttpConfig, HttpServer, ServingConfig};

fn tiny(name: &str, out_ch: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let x = b.input([1, 3, 8, 8]);
    let x = b.conv2d_after(x, 3, out_ch, (3, 3), (1, 1), 1);
    let _ = b.activation_after(x, Activation::Relu);
    b.finish().unwrap()
}

fn gateway(serving: ServingConfig) -> Arc<Gateway> {
    Arc::new(
        Gateway::builder(GatewayConfig {
            nodes: 1,
            capacity_per_node: 4,
            idle_threshold: 0.0,
            keep_alive: 60.0,
            store: None,
            faults: None,
            serving,
            predict: None,
        })
        .register(tiny("m1", 4))
        .spawn(),
    )
}

/// Read exactly one HTTP response off a persistent connection: status
/// line, headers (for `Content-Length`), then the body. The reader must
/// be reused across responses so buffered pipelined bytes are not lost.
fn read_response(reader: &mut BufReader<TcpStream>) -> (String, Vec<(String, String)>, String) {
    let mut status = String::new();
    reader.read_line(&mut status).expect("reads status line");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads header line");
        let line = line.trim_end().to_string();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("numeric content-length");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("reads body");
    (
        status.trim_end().to_string(),
        headers,
        String::from_utf8(body).expect("utf8 body"),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn infer_body() -> String {
    r#"{"model":"m1","shape":[1,3,8,8]}"#.to_string()
}

fn post_infer(keep_alive: bool) -> String {
    let body = infer_body();
    format!(
        "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        body
    )
}

/// One `Connection: close` request/response exchange.
fn oneshot(addr: SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("writes");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((&response, ""));
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    let gw = gateway(ServingConfig::default());
    let server = HttpServer::serve(gw, 0).expect("binds");
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clones");
    // Three requests in a single write: the server must answer all three
    // on the same connection, in order.
    let pipeline = format!(
        "GET /models HTTP/1.1\r\nHost: t\r\n\r\n{}GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        post_infer(true)
    );
    writer.write_all(pipeline.as_bytes()).expect("writes");

    let mut reader = BufReader::new(stream);
    let (status, headers, body) = read_response(&mut reader);
    assert!(status.contains("200"), "{status}");
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    assert!(body.contains("m1"), "models listing: {body}");

    let (status, headers, body) = read_response(&mut reader);
    assert!(status.contains("200"), "{status}");
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    let v: serde_json::Value = serde_json::from_str(&body).expect("infer json");
    assert_eq!(v["model"], "m1");
    assert!(v["batch_size"].as_u64().expect("batch size") >= 1);

    let (status, _, body) = read_response(&mut reader);
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // A fourth request after the reads proves the connection is still
    // alive (not half-closed after the pipeline).
    writer
        .write_all(b"GET /models HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("connection still writable");
    let (status, headers, _) = read_response(&mut reader);
    assert!(status.contains("200"), "{status}");
    assert_eq!(header(&headers, "connection"), Some("close"));
    server.shutdown();
}

#[test]
fn fragmented_writes_parse_into_one_request() {
    let gw = gateway(ServingConfig::default());
    let server = HttpServer::serve(gw, 0).expect("binds");
    let addr = server.addr();

    let raw = post_infer(false);
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Trickle the request a few bytes at a time across many writes; the
    // incremental parser must reassemble it without misparsing.
    for chunk in raw.as_bytes().chunks(7) {
        stream.write_all(chunk).expect("writes fragment");
        stream.flush().expect("flushes");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"batch_size\""), "{response}");
    server.shutdown();
}

#[test]
fn oversized_headers_get_431_and_oversized_bodies_413() {
    let gw = gateway(ServingConfig::default());
    let server = HttpServer::serve_with(
        gw,
        0,
        HttpConfig {
            max_header_bytes: 512,
            max_body_bytes: 1024,
            ..HttpConfig::default()
        },
    )
    .expect("binds");
    let addr = server.addr();

    let huge_header = format!(
        "GET /models HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
        "j".repeat(2048)
    );
    let (status, _) = oneshot(addr, &huge_header);
    assert!(status.contains("431"), "{status}");

    // The header alone is rejected: no body bytes are ever sent.
    let huge_body =
        "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: 1048576\r\n\r\n".to_string();
    let (status, _) = oneshot(addr, &huge_body);
    assert!(status.contains("413"), "{status}");

    // The server is still healthy afterwards.
    let (status, _) = oneshot(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    server.shutdown();
}

#[test]
fn saturated_queues_answer_429_and_health_endpoints_stay_responsive() {
    // A single node with a depth-2 queue and no batching: concurrent
    // clients must overflow admission control (429), while /healthz and
    // /metrics keep answering promptly because HTTP workers never block
    // on inference.
    let gw = gateway(ServingConfig {
        queue_depth: 2,
        max_batch: 1,
        max_batch_wait_us: 0,
    });
    let server = HttpServer::serve(gw, 0).expect("binds");
    let addr = server.addr();

    let oks = Arc::new(AtomicUsize::new(0));
    let rejected = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for _ in 0..8 {
        let oks = oks.clone();
        let rejected = rejected.clone();
        clients.push(std::thread::spawn(move || {
            for _ in 0..25 {
                let (status, _) = oneshot(addr, &post_infer(false));
                if status.contains("200") {
                    oks.fetch_add(1, Ordering::Relaxed);
                } else if status.contains("429") {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // Health endpoints must answer while the storm is in flight.
    let mut health_checks = 0;
    let storm_deadline = Instant::now() + Duration::from_secs(10);
    while clients.iter().any(|c| !c.is_finished()) && Instant::now() < storm_deadline {
        let t0 = Instant::now();
        let (status, body) = oneshot(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(status.contains("200"), "healthz failed mid-storm: {status}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "healthz stalled under load: {:?}",
            t0.elapsed()
        );
        health_checks += 1;
    }
    for c in clients {
        c.join().expect("client thread");
    }
    assert!(health_checks > 0, "storm finished before any health check");
    assert!(
        oks.load(Ordering::Relaxed) > 0,
        "some inferences must succeed"
    );
    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "a depth-2 queue under 8 concurrent clients must shed load with 429s \
         (got {} oks, {} rejections)",
        oks.load(Ordering::Relaxed),
        rejected.load(Ordering::Relaxed)
    );

    // The admission metrics are exposed for scrapes.
    let (status, metrics) = oneshot(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    assert!(metrics.contains("optimus_serve_queue_depth"), "{metrics}");
    assert!(metrics.contains("optimus_serve_batch_size"), "{metrics}");
    assert!(
        metrics.contains("optimus_serve_rejected_total"),
        "{metrics}"
    );
    server.shutdown();
}
