//! Token-level serving and persistence tests for the live gateway:
//! decode loops ride the existing submit/poll machinery, single-model
//! registrations persist the plan artifact incrementally, spawn-time GC
//! drops entries whose endpoints left the catalog, and learned predictor
//! state survives a gateway restart.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use optimus_core::PlanArtifact;
use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph, OpAttrs, PoolKind};
use optimus_serve::{
    Gateway, GatewayConfig, LlmConfig, MetricsRegistry, PredictConfig, ServedStart,
};

/// A tiny CNN small enough for the naive forward-pass engine.
fn tiny(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 8, 8]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch * 16, 4);
    b.finish().unwrap()
}

/// A tiny GPT-shaped decoder (embedding + one causal attention block)
/// small enough to actually prefill through the naive engine.
fn tiny_decoder(name: &str, hidden: usize, heads: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let i = b.input([1, 4]);
    let emb = b.after(i, "emb", OpAttrs::Embedding { vocab: 32, hidden });
    let pos = b.after(emb, "pos", OpAttrs::PosEmbedding { max_len: 4, hidden });
    let q = b.after(pos, "q", OpAttrs::Query { hidden, heads });
    let k = b.after(pos, "k", OpAttrs::Key { hidden, heads });
    let v = b.after(pos, "v", OpAttrs::Value { hidden, heads });
    let l = b.merge(&[q, k], "logit", OpAttrs::Logit { heads });
    let sm = b.after(l, "softmax", OpAttrs::Softmax);
    let at = b.merge(&[sm, v], "attend", OpAttrs::Attend { heads });
    let _ = b.after(at, "out", OpAttrs::AttnOutput { hidden });
    b.finish().unwrap()
}

fn single_node() -> GatewayConfig {
    GatewayConfig {
        nodes: 1,
        capacity_per_node: 3,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: Some(optimus_store::StoreConfig::default()),
        faults: None,
        serving: optimus_serve::ServingConfig::default(),
        predict: None,
    }
}

/// A unique scratch path under the system temp dir; the file does not
/// exist yet.
fn scratch_path(tag: &str, file: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("optimus-serve-llm-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join(file)
}

fn drive(gw: &Gateway, mut pending: optimus_serve::PendingDecode) -> optimus_serve::DecodeResponse {
    loop {
        if let Some(r) = gw.poll_decode(&mut pending) {
            return r.unwrap();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn decode_loops_ride_the_submit_poll_api() {
    let llm = LlmConfig {
        min_decode_tokens: 16,
        max_decode_tokens: 24,
        ..LlmConfig::default()
    };
    let gw = Gateway::builder(single_node())
        .llm_config(llm)
        .register(tiny_decoder("decoder", 8, 2))
        .spawn();
    let ids = Tensor::new([1, 4], vec![1.0, 2.0, 3.0, 4.0]);

    let first = drive(&gw, gw.submit_decode("decoder", ids.clone()).unwrap());
    // The prefill is a real measured forward pass: it cold-started the
    // container and produced the decoder's activations.
    assert_eq!(first.prefill.start, ServedStart::Cold);
    assert_eq!(first.prefill.output.shape().dims(), &[1, 4, 8]);
    assert!(first.prefill.output.data().iter().all(|v| v.is_finite()));
    // The loop structure: a deterministic output length in the configured
    // range, TTFT covering the measured prefill, and a positive modeled
    // decode tail for the remaining tokens.
    assert!((16..=24).contains(&(first.tokens as usize)));
    assert!(first.ttft_seconds > 0.0);
    assert!(first.decode_seconds > 0.0);
    assert!(first.total_seconds() > first.ttft_seconds);

    // A second loop warm-starts and draws its own (deterministic) length.
    let second = drive(&gw, gw.submit_decode("decoder", ids).unwrap());
    assert_eq!(second.prefill.start, ServedStart::Warm);
    assert_eq!(second.tokens, llm.decode_tokens(1) as u64);

    assert!(matches!(
        gw.submit_decode("nope", Tensor::zeros([1, 4])),
        Err(optimus_serve::ServeError::UnknownModel(_))
    ));
    gw.shutdown();
}

#[test]
fn single_registrations_persist_plans_across_restarts() {
    let path = scratch_path("incremental", "plans.json");

    // Cold run: the catalog is grown one model at a time; each step
    // rewrites the artifact.
    let cold = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(cold.clone())
        .plan_cache_path(&path)
        .register(tiny("small", &[4]))
        .register(tiny("large", &[4, 8]))
        .spawn();
    assert!(path.exists(), "single-model registration persists");
    let artifact = PlanArtifact::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(artifact.len(), 2, "both directions of the pair are cached");
    assert!(
        cold.histogram("optimus_planning_seconds", &[]).count() > 0,
        "cold registration planned from scratch"
    );
    gw.shutdown();

    // Restart, registering one model at a time again: the first
    // registration must not erase the pair entries (their partner is not
    // registered *yet*), and the second warm-loads both plans without
    // ever invoking the planner.
    let warm = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(warm.clone())
        .plan_cache_path(&path)
        .register(tiny("small", &[4]))
        .register(tiny("large", &[4, 8]))
        .spawn();
    let hit = warm.counter("optimus_plan_cache_warm_total", &[("result", "hit")]);
    assert_eq!(hit.get(), 2, "both cached plans warm-load incrementally");
    assert_eq!(
        warm.histogram("optimus_planning_seconds", &[]).count(),
        0,
        "incremental warm registration never plans"
    );
    gw.shutdown();
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn spawn_gc_drops_entries_that_left_the_catalog() {
    let path = scratch_path("gc", "plans.json");

    let gw = Gateway::builder(single_node())
        .plan_cache_path(&path)
        .register(tiny("small", &[4]))
        .register(tiny("large", &[4, 8]))
        .spawn();
    gw.shutdown();

    // The next deployment rotates "large" out and "third" in: its spawn
    // garbage-collects the small<->large entries but keeps serving the
    // freshly planned small<->third pair.
    let metrics = Arc::new(MetricsRegistry::new());
    let gw = Gateway::builder(single_node())
        .metrics(metrics.clone())
        .plan_cache_path(&path)
        .register(tiny("small", &[4]))
        .register(tiny("third", &[4, 4]))
        .spawn();
    gw.shutdown();

    let artifact = PlanArtifact::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        artifact.len(),
        2,
        "only the live catalog's pair survives GC"
    );
    assert_eq!(
        metrics
            .counter("optimus_plan_cache_gc_entries_total", &[])
            .get(),
        2,
        "both stale small<->large entries were collected"
    );
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn predictor_state_survives_restart() {
    let path = scratch_path("predict", "predictor.json");
    let predict = PredictConfig {
        min_history: 2,
        keep_alive_floor: 0.05,
        keep_alive_ceiling: 0.4,
        adaptive_keep_alive: true,
        speculation: None,
        ..PredictConfig::default()
    };
    let config = GatewayConfig {
        predict: Some(predict),
        ..single_node()
    };

    // Teach the predictor a sub-second window, then shut down (persists
    // the snapshot).
    let gw = Gateway::builder(config)
        .predict_state_path(&path)
        .register(tiny("m", &[4]))
        .spawn();
    for _ in 0..5 {
        gw.infer("m", Tensor::zeros([1, 3, 8, 8])).unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    let learned = gw.keep_alive_for("m").unwrap();
    assert!(
        learned > 0.0 && learned <= 0.4,
        "a learned window replaced the 60 s global: {learned}"
    );
    gw.shutdown();
    assert!(path.exists(), "shutdown persists the predictor snapshot");

    // A restarted gateway applies the learned window before observing a
    // single arrival.
    let gw = Gateway::builder(config)
        .predict_state_path(&path)
        .register(tiny("m", &[4]))
        .spawn();
    let restored = gw.keep_alive_for("m").unwrap();
    assert!(
        restored > 0.0 && restored <= 0.4,
        "restored histograms yield the learned window immediately: {restored}"
    );
    gw.shutdown();

    // A snapshot taken under different knobs is ignored: prediction
    // starts cold on the 60 s default.
    let other = GatewayConfig {
        predict: Some(PredictConfig {
            min_history: 3,
            ..predict
        }),
        ..single_node()
    };
    let gw = Gateway::builder(other)
        .predict_state_path(&path)
        .register(tiny("m", &[4]))
        .spawn();
    assert_eq!(
        gw.keep_alive_for("m"),
        Some(60.0),
        "an incompatible snapshot must not be trusted"
    );
    gw.shutdown();
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
