//! Batching edge cases for the worker-side per-model request batching:
//! window expiry with a single request, mixed-model arrivals never
//! co-batched, and byte-identical responses whether batched or not.

use std::time::{Duration, Instant};

use optimus_model::tensor::Tensor;
use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{
    Gateway, GatewayConfig, InferenceResponse, InferenceResult, PendingInference, ServingConfig,
};

fn tiny(name: &str, out_ch: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let x = b.input([1, 3, 8, 8]);
    let x = b.conv2d_after(x, 3, out_ch, (3, 3), (1, 1), 1);
    let _ = b.activation_after(x, Activation::Relu);
    b.finish().unwrap()
}

fn config(serving: ServingConfig) -> GatewayConfig {
    GatewayConfig {
        nodes: 1,
        capacity_per_node: 4,
        idle_threshold: 0.0,
        keep_alive: 60.0,
        store: None,
        faults: None,
        serving,
        predict: None,
    }
}

/// Poll a set of submitted requests round-robin until all complete.
fn drain_all(gw: &Gateway, mut pending: Vec<PendingInference>) -> Vec<InferenceResult> {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut done: Vec<Option<InferenceResult>> = (0..pending.len()).map(|_| None).collect();
    while done.iter().any(Option::is_none) {
        assert!(Instant::now() < deadline, "requests never completed");
        for (i, p) in pending.iter_mut().enumerate() {
            if done[i].is_none() {
                if let Some(r) = gw.poll(p) {
                    done[i] = Some(r);
                }
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    done.into_iter().map(|r| r.expect("checked")).collect()
}

#[test]
fn single_request_is_served_when_the_batch_window_expires() {
    // A generous window with no follow-up traffic: the worker must serve
    // the lone request at window expiry as a batch of one, not wait for
    // the batch to fill.
    let gw = Gateway::builder(config(ServingConfig {
        queue_depth: 64,
        max_batch: 8,
        max_batch_wait_us: 5_000,
    }))
    .register(tiny("m", 4))
    .spawn();
    let start = Instant::now();
    let r = gw.infer("m", Tensor::zeros([1, 3, 8, 8])).expect("serves");
    assert_eq!(r.batch_size, 1, "a lone request is a batch of one");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "window expiry must not stall the request"
    );
    gw.shutdown();
}

#[test]
fn mixed_model_arrivals_are_never_co_batched() {
    // Interleaved arrivals for two models on one node inside one batch
    // window: groups are per-model, so no response may report a batch
    // larger than its own model's request count, and every output must
    // have its own model's shape.
    let gw = Gateway::builder(config(ServingConfig {
        queue_depth: 64,
        max_batch: 16,
        max_batch_wait_us: 200_000,
    }))
    .register(tiny("a", 4))
    .register(tiny("b", 8))
    .spawn();
    let per_model = 6usize;
    let mut pending = Vec::new();
    for _ in 0..per_model {
        pending.push(gw.submit("a", Tensor::zeros([1, 3, 8, 8])).expect("admits"));
        pending.push(gw.submit("b", Tensor::zeros([1, 3, 8, 8])).expect("admits"));
    }
    let results = drain_all(&gw, pending);
    for (i, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("all requests succeed");
        let expect_ch = if i % 2 == 0 { 4 } else { 8 };
        assert_eq!(
            r.output.shape().dims(),
            &[1, expect_ch, 8, 8],
            "request {i} got another model's output"
        );
        assert!(
            r.batch_size <= per_model,
            "request {i} reports batch_size {} > its model's {} requests: \
             models were co-batched",
            r.batch_size,
            per_model
        );
    }
    gw.shutdown();
}

#[test]
fn batched_and_unbatched_responses_are_byte_identical() {
    let gw = Gateway::builder(config(ServingConfig {
        queue_depth: 64,
        max_batch: 8,
        max_batch_wait_us: 200_000,
    }))
    .register(tiny("m", 4))
    .spawn();
    let input = || {
        let numel = 3 * 8 * 8;
        Tensor::new(
            vec![1, 3, 8, 8],
            (0..numel).map(|i| (i as f32) * 0.01 - 0.5).collect(),
        )
    };
    // Baseline: a lone request (batch of one).
    let solo = gw.infer("m", input()).expect("solo request serves");
    assert_eq!(solo.batch_size, 1);
    let solo_bits: Vec<u32> = solo.output.data().iter().map(|v| v.to_bits()).collect();

    // Burst: submitted back-to-back so the worker's batch window groups
    // them; each runs its own forward pass.
    let burst: Vec<PendingInference> = (0..6)
        .map(|_| gw.submit("m", input()).expect("admits"))
        .collect();
    let results: Vec<InferenceResponse> = drain_all(&gw, burst)
        .into_iter()
        .map(|r| r.expect("burst requests succeed"))
        .collect();
    assert!(
        results.iter().any(|r| r.batch_size >= 2),
        "burst of 6 within a 200ms window never batched: {:?}",
        results.iter().map(|r| r.batch_size).collect::<Vec<_>>()
    );
    for (i, r) in results.iter().enumerate() {
        let bits: Vec<u32> = r.output.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, solo_bits,
            "batched response {i} (batch_size {}) differs from the unbatched baseline",
            r.batch_size
        );
    }
    gw.shutdown();
}
