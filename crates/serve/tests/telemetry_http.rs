//! Observability integration tests: drive a scripted request sequence
//! through the real HTTP server and check that `GET /metrics` exposes
//! exactly the counters the sequence implies.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use optimus_model::{Activation, GraphBuilder, ModelGraph};
use optimus_serve::{Gateway, GatewayConfig, HttpServer};
use optimus_telemetry::MetricsRegistry;

fn tiny(name: &str, ch: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let i = b.input([1, 3, 8, 8]);
    let c = b.conv2d_after(i, 3, ch, (3, 3), (1, 1), 1);
    let a = b.activation_after(c, Activation::Relu);
    let g = b.global_avg_pool_after(a);
    let f = b.flatten_after(g);
    let _ = b.dense_after(f, ch, 4);
    b.finish().unwrap()
}

/// Single-node server over a hermetic registry so counter assertions are
/// exact (the process-wide global registry would see other tests).
fn start_server(registry: Arc<MetricsRegistry>) -> (HttpServer, std::net::SocketAddr) {
    let gw = Arc::new(
        Gateway::builder(GatewayConfig {
            nodes: 1,
            capacity_per_node: 2,
            idle_threshold: 0.0,
            keep_alive: 60.0,
            store: Some(optimus_store::StoreConfig::default()),
            faults: None,
            serving: optimus_serve::ServingConfig::default(),
            predict: None,
        })
        .metrics(registry)
        .register(tiny("m1", 4))
        .register(tiny("m2", 8))
        .spawn(),
    );
    let server = HttpServer::serve(gw, 0).expect("binds an ephemeral port");
    let addr = server.addr();
    (server, addr)
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, payload) = response.split_once("\r\n\r\n").expect("valid response");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, payload.to_string())
}

/// Parse Prometheus text exposition into `(sample_name, value)` pairs,
/// failing the test on any line that is neither a comment nor a sample.
fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable sample line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in: {line:?}"));
        samples.push((name.to_string(), value));
    }
    samples
}

fn sample(samples: &[(String, f64)], name: &str) -> f64 {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing sample {name}"))
        .1
}

#[test]
fn metrics_endpoint_matches_scripted_sequence() {
    let registry = Arc::new(MetricsRegistry::new());
    let (server, addr) = start_server(registry);

    // Scripted sequence on one node: cold m1, warm m1, transform m1→m2.
    let infer = |model: &str| {
        let body = format!(r#"{{"model":"{model}","shape":[1,3,8,8]}}"#);
        let (status, payload) = request(addr, "POST", "/infer", &body);
        assert!(status.contains("200"), "{status}: {payload}");
        let v: serde_json::Value = serde_json::from_str(&payload).expect("json");
        v["start"].as_str().expect("start label").to_string()
    };
    assert_eq!(infer("m1"), "cold");
    assert_eq!(infer("m1"), "warm");
    assert_eq!(infer("m2"), "transformed");

    let (status, text) = request(addr, "GET", "/metrics", "");
    assert!(status.contains("200"), "{status}");
    let samples = parse_prometheus(&text);

    // Start-kind counters match the script exactly (paper Fig. 14 split).
    assert_eq!(
        sample(&samples, r#"optimus_requests_total{kind="cold"}"#),
        1.0
    );
    assert_eq!(
        sample(&samples, r#"optimus_requests_total{kind="warm"}"#),
        1.0
    );
    assert_eq!(
        sample(&samples, r#"optimus_requests_total{kind="transform"}"#),
        1.0
    );
    // Every phase histogram observed all three requests.
    for phase in ["wait", "init", "load", "compute"] {
        assert_eq!(
            sample(
                &samples,
                &format!(r#"optimus_phase_seconds_count{{phase="{phase}"}}"#)
            ),
            3.0,
            "phase {phase}"
        );
    }
    assert_eq!(sample(&samples, "optimus_request_seconds_count"), 3.0);
    // The m1→m2 transform applied at least one cached meta-operator step.
    assert!(sample(&samples, "optimus_transform_steps_total") >= 1.0);
    // Plan cache: registration planned m1↔m2 both ways; the transform
    // request hit the cache once.
    assert_eq!(
        sample(&samples, r#"optimus_plan_cache_total{result="hit"}"#),
        1.0
    );
    assert_eq!(sample(&samples, "optimus_planning_seconds_count"), 2.0);
    // One node, at most capacity 2 containers live.
    let containers = sample(&samples, r#"optimus_containers{node="0"}"#);
    assert!((1.0..=2.0).contains(&containers), "{containers}");
    // The three inference POSTs were counted by the HTTP layer (this
    // /metrics GET is still in flight, so it is not included yet).
    assert_eq!(
        sample(&samples, r#"optimus_http_requests_total{code="200"}"#),
        3.0
    );

    server.shutdown();
}

#[test]
fn healthz_and_stats_endpoints() {
    let registry = Arc::new(MetricsRegistry::new());
    let (server, addr) = start_server(registry);

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert!(status.contains("200"), "{status}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("json body");
    assert_eq!(v["status"], "ok");

    let body = r#"{"model":"m1","shape":[1,3,8,8]}"#;
    let (status, _) = request(addr, "POST", "/infer", body);
    assert!(status.contains("200"), "{status}");

    let (status, body) = request(addr, "GET", "/stats", "");
    assert!(status.contains("200"), "{status}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("stats is json");
    assert_eq!(v[r#"optimus_requests_total{kind="cold"}"#], 1);
    let phase = &v[r#"optimus_phase_seconds{phase="compute"}"#];
    assert_eq!(phase["count"], 1);
    assert!(phase["p50"].as_f64().expect("quantile") >= 0.0);

    server.shutdown();
}

#[test]
fn malformed_requests_get_json_400_not_dropped_connection() {
    let registry = Arc::new(MetricsRegistry::new());
    let (server, addr) = start_server(registry);

    // Body shorter than the declared Content-Length: the server must still
    // answer with a 400 JSON body rather than dropping the connection.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .write_all(b"POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: 999\r\nConnection: close\r\n\r\n{}")
        .expect("writes");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    let (_, payload) = response.split_once("\r\n\r\n").expect("has body");
    let v: serde_json::Value = serde_json::from_str(payload).expect("json error body");
    assert!(v["error"].as_str().is_some(), "{payload}");

    // Garbage request line.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(b"\r\n\r\n").expect("writes");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // Malformed JSON payload gets a structured error.
    let (status, payload) = request(addr, "POST", "/infer", "{not json");
    assert!(status.contains("400"), "{status}");
    let v: serde_json::Value = serde_json::from_str(&payload).expect("json error body");
    assert!(v["error"].as_str().unwrap().contains("JSON"), "{payload}");

    server.shutdown();
}
