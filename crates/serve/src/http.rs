//! Minimal HTTP/1.1 front end for the gateway (§7: "Optimus API and
//! communication between clients and the gateway are implemented in REST
//! API format … a Flask HTTP server that accepts client requests").
//!
//! Dependency-free: a small hand-rolled HTTP server over
//! `std::net::TcpListener`, good for the prototype's request shapes.
//!
//! Endpoints:
//!
//! - `GET /models` — JSON array of registered model names.
//! - `POST /infer` — body `{"model": "<name>", "shape": [..], "data": [..]}`
//!   (`data` optional; zeros are used when omitted). Responds
//!   `{"model", "start", "wait_seconds", "startup_seconds",
//!   "compute_seconds", "node", "transform_steps", "output_shape",
//!   "output": [..first 16 values..]}`. Malformed payloads get a `400`
//!   with a JSON error body — never a dropped connection.
//! - `GET /metrics` — Prometheus text exposition of the gateway's
//!   registry (request counters by start kind, phase histograms,
//!   plan-cache counters, container gauges).
//! - `GET /stats` — the same registry as one JSON object (histograms as
//!   `{count, sum, mean, p50, p95, p99}`).
//! - `GET /store` — weight-store residency: `{"enabled", "total",
//!   "nodes": [{"node", "stats"}..]}` with per-tier resident bytes, chunk
//!   hit/miss counts and the dedup ratio (`{"enabled": false}` when the
//!   gateway runs without a store).
//! - `GET /healthz` — liveness probe for load balancers:
//!   `{"status":"ok","fleet_nodes":N,"nodes":[true,..]}` with the live
//!   fleet size and per-node health (crashed nodes read `false` until
//!   they recover; drained nodes stay `false`).
//!
//! One OS thread per connection; connections are `Connection: close`.
//! Sockets carry read/write timeouts ([`HttpConfig`]) so a stalled or
//! silent client cannot pin a connection thread forever: a read that
//! times out gets a `408 Request Timeout` response.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use optimus_model::tensor::Tensor;

use crate::gateway::Gateway;

/// Socket-level configuration of the HTTP front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// Read timeout per connection (headers + body). `None` waits
    /// forever (the pre-timeout behaviour).
    pub read_timeout: Option<Duration>,
    /// Write timeout per connection (response flush).
    pub write_timeout: Option<Duration>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// A running HTTP front end.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Serve `gateway` on `127.0.0.1:port` (`port` 0 picks a free port)
    /// with the default socket timeouts.
    ///
    /// # Errors
    ///
    /// Returns the bind error message when the port is unavailable.
    pub fn serve(gateway: Arc<Gateway>, port: u16) -> Result<HttpServer, String> {
        HttpServer::serve_with(gateway, port, HttpConfig::default())
    }

    /// [`HttpServer::serve`] with explicit socket timeouts.
    ///
    /// # Errors
    ///
    /// Returns the bind error message when the port is unavailable.
    pub fn serve_with(
        gateway: Arc<Gateway>,
        port: u16,
        config: HttpConfig,
    ) -> Result<HttpServer, String> {
        let listener = TcpListener::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_read_timeout(config.read_timeout);
                        let _ = stream.set_write_timeout(config.write_timeout);
                        let gw = gateway.clone();
                        workers.push(std::thread::spawn(move || handle_connection(stream, &gw)));
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the acceptor thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One response: status line suffix, content type, body.
struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: &'static str, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: &'static str, message: &str) -> Response {
        Response::json(status, serde_json::json!({ "error": message }).to_string())
    }

    fn code(&self) -> &str {
        self.status.split_whitespace().next().unwrap_or("")
    }
}

fn handle_connection(stream: TcpStream, gateway: &Gateway) {
    let peer = stream.try_clone();
    let Ok(mut writer) = peer else { return };
    let response = read_and_route(stream, gateway);
    gateway
        .metrics()
        .counter("optimus_http_requests_total", &[("code", response.code())])
        .inc();
    let payload = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.content_type,
        response.body.len(),
        response.body
    );
    let _ = writer.write_all(payload.as_bytes());
}

/// Parse the request and dispatch. Malformed requests produce a `400`
/// response instead of a silently dropped connection.
fn read_and_route(stream: TcpStream, gateway: &Gateway) -> Response {
    let mut reader = BufReader::new(stream);
    // Request line.
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        Err(e) if is_timeout(&e) => {
            return Response::error("408 Request Timeout", "timed out reading request line")
        }
        Err(_) => return Response::error("400 Bad Request", "empty or unreadable request line"),
        Ok(_) => {}
    }
    if request_line.trim().is_empty() {
        return Response::error("400 Bad Request", "empty or unreadable request line");
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Response::error("400 Bad Request", "malformed request line");
    }
    // Headers (we only need Content-Length).
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line
                    .to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    content_length = v;
                }
            }
            Err(e) if is_timeout(&e) => {
                return Response::error("408 Request Timeout", "timed out reading headers")
            }
            Err(_) => return Response::error("400 Bad Request", "unreadable headers"),
        }
    }
    let mut body = vec![0u8; content_length.min(16 * 1024 * 1024)];
    if content_length > 0 {
        match reader.read_exact(&mut body) {
            Err(e) if is_timeout(&e) => {
                return Response::error("408 Request Timeout", "timed out reading body")
            }
            Err(_) => {
                return Response::error("400 Bad Request", "body shorter than content-length")
            }
            Ok(()) => {}
        }
    }
    route(gateway, &method, &path, &body)
}

/// Whether an I/O error is the socket read/write timeout firing
/// (`SO_RCVTIMEO` surfaces as `WouldBlock` on Unix, `TimedOut` on
/// Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn route(gateway: &Gateway, method: &str, path: &str, body: &[u8]) -> Response {
    match (method, path) {
        ("GET", "/models") => {
            let names = gateway.models();
            Response::json(
                "200 OK",
                serde_json::to_string(&names).expect("string array serializes"),
            )
        }
        ("POST", "/infer") => match infer_request(gateway, body) {
            Ok(json) => Response::json("200 OK", json),
            Err((status, msg)) => Response::error(status, &msg),
        },
        ("GET", "/metrics") => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4",
            body: gateway.metrics().render_prometheus(),
        },
        ("GET", "/stats") => {
            Response::json("200 OK", gateway.metrics().snapshot_json().to_string())
        }
        ("GET", "/store") => Response::json("200 OK", store_response(gateway)),
        ("GET", "/healthz") => {
            let nodes = gateway.healthy_nodes();
            let fleet = gateway.fleet_size();
            Response::json(
                "200 OK",
                serde_json::json!({ "status": "ok", "fleet_nodes": fleet, "nodes": nodes })
                    .to_string(),
            )
        }
        _ => Response::error(
            "404 Not Found",
            "unknown endpoint (GET /models, /metrics, /stats, /store, /healthz; POST /infer)",
        ),
    }
}

/// Body of `GET /store`: fleet total plus per-node weight-store stats.
fn store_response(gateway: &Gateway) -> String {
    let Some(total) = gateway.store_stats() else {
        return "{\"enabled\":false}".to_string();
    };
    let nodes: Vec<String> = gateway
        .store_stats_by_node()
        .iter()
        .map(|(node, stats)| {
            format!(
                "{{\"node\":{node},\"stats\":{}}}",
                serde_json::to_string(stats).expect("store stats serialize")
            )
        })
        .collect();
    format!(
        "{{\"enabled\":true,\"total\":{},\"nodes\":[{}]}}",
        serde_json::to_string(&total).expect("store stats serialize"),
        nodes.join(",")
    )
}

fn infer_request(gateway: &Gateway, body: &[u8]) -> Result<String, (&'static str, String)> {
    let parsed: serde_json::Value = serde_json::from_slice(body)
        .map_err(|e| ("400 Bad Request", format!("malformed JSON: {e}")))?;
    let model = parsed["model"]
        .as_str()
        .ok_or(("400 Bad Request", "missing 'model'".to_string()))?;
    let shape: Vec<usize> = parsed["shape"]
        .as_array()
        .ok_or(("400 Bad Request", "missing 'shape'".to_string()))?
        .iter()
        .map(|v| v.as_u64().unwrap_or(0) as usize)
        .collect();
    let numel: usize = shape.iter().product();
    if numel == 0 || numel > 4_000_000 {
        return Err(("400 Bad Request", format!("bad tensor shape {shape:?}")));
    }
    let data: Vec<f32> = match parsed.get("data").and_then(|d| d.as_array()) {
        Some(values) => {
            if values.len() != numel {
                return Err((
                    "400 Bad Request",
                    format!("data length {} != shape numel {numel}", values.len()),
                ));
            }
            values
                .iter()
                .map(|v| v.as_f64().unwrap_or(0.0) as f32)
                .collect()
        }
        None => vec![0.0; numel],
    };
    let input = Tensor::new(shape, data);
    let resp = gateway.infer(model, input).map_err(|e| {
        let status = match &e {
            crate::api::ServeError::Unavailable(_) => "503 Service Unavailable",
            _ => "422 Unprocessable Entity",
        };
        (status, e.to_string())
    })?;
    let preview: Vec<f32> = resp.output.data().iter().copied().take(16).collect();
    Ok(serde_json::json!({
        "model": resp.model,
        "start": resp.start.as_label(),
        "wait_seconds": resp.wait_seconds,
        "startup_seconds": resp.startup_seconds,
        "compute_seconds": resp.compute_seconds,
        "node": resp.node,
        "transform_steps": resp.transform_steps,
        "output_shape": resp.output.shape().dims(),
        "output": preview,
    })
    .to_string())
}
