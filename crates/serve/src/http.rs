//! HTTP/1.1 front end for the gateway (§7: "Optimus API and
//! communication between clients and the gateway are implemented in REST
//! API format … a Flask HTTP server that accepts client requests").
//!
//! Dependency-free: a hand-rolled HTTP server over
//! `std::net::TcpListener` with two front-end modes
//! ([`HttpConfig::mode`]):
//!
//! - [`FrontendMode::Pooled`] (default) — the production serving core.
//!   A few accept shards hand persistent keep-alive connections to a
//!   poller thread; connections with readable bytes (or a finished
//!   inference) are dispatched to a fixed pool of HTTP workers that
//!   parse pipelined requests incrementally from a reusable
//!   per-connection buffer ([`crate::parser`]). Workers *never block on
//!   inference*: `POST /infer` goes through [`Gateway::submit`] and the
//!   connection is parked on the pending reply, so `GET /healthz` and
//!   `GET /metrics` stay responsive even when every worker queue is
//!   saturated (admission control answers `429` immediately, and an
//!   ops lane serves health endpoints past the connection budget).
//! - [`FrontendMode::ThreadPerConn`] — the original one-OS-thread per
//!   `Connection: close` exchange, kept as the load-generator baseline.
//!
//! Endpoints:
//!
//! - `GET /models` — JSON array of registered model names.
//! - `POST /infer` — body `{"model": "<name>", "shape": [..], "data": [..]}`
//!   (`data` optional; zeros are used when omitted). Responds
//!   `{"model", "start", "wait_seconds", "startup_seconds",
//!   "compute_seconds", "node", "transform_steps", "batch_size",
//!   "output_shape", "output": [..first 16 values..]}`. Malformed
//!   payloads get a `400` with a JSON error body — never a dropped
//!   connection; a full admission queue gets a `429`.
//! - `GET /metrics` — Prometheus text exposition of the gateway's
//!   registry (request counters by start kind, phase histograms,
//!   plan-cache counters, queue-depth/batch-size gauges).
//! - `GET /stats` — the same registry as one JSON object (histograms as
//!   `{count, sum, mean, p50, p95, p99}`).
//! - `GET /store` — weight-store residency: `{"enabled", "total",
//!   "nodes": [{"node", "stats"}..]}` with per-tier resident bytes, chunk
//!   hit/miss counts and the dedup ratio (`{"enabled": false}` when the
//!   gateway runs without a store).
//! - `GET /healthz` — liveness probe for load balancers:
//!   `{"status":"ok","fleet_nodes":N,"nodes":[true,..]}` with the live
//!   fleet size and per-node health (crashed nodes read `false` until
//!   they recover; drained nodes stay `false`).
//!
//! Sockets carry read/write timeouts ([`HttpConfig`]) so a stalled or
//! silent client cannot pin resources forever: a connection that goes
//! quiet mid-request gets a `408 Request Timeout`; an idle keep-alive
//! connection past [`HttpConfig::keep_alive_idle`] is closed silently.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use optimus_model::tensor::Tensor;

use crate::api::{InferenceResponse, ServeError};
use crate::gateway::{Gateway, InferenceResult, PendingInference};
use crate::parser::{parse_request, ParseOutcome, ParserLimits};

/// How the front end maps connections to OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendMode {
    /// Sharded accept loops + poller + fixed worker pool over
    /// keep-alive connections (the production path).
    Pooled,
    /// One OS thread per `Connection: close` exchange (the original
    /// front end, kept as the load-generator baseline).
    ThreadPerConn,
}

/// Configuration of the HTTP front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// Read timeout per connection. In pooled mode this is the stall
    /// deadline: a connection mid-request with no new bytes for this
    /// long gets a `408`. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Write timeout per connection (response flush).
    pub write_timeout: Option<Duration>,
    /// Front-end threading model.
    pub mode: FrontendMode,
    /// Accept-loop shards feeding the pooled front end.
    pub accept_shards: usize,
    /// Fixed HTTP worker pool size (parsing + response writing; never
    /// blocks on inference).
    pub http_workers: usize,
    /// Connection budget of the pooled front end; connections beyond it
    /// are handed to the ops lane (health endpoints still answer,
    /// `/infer` gets an immediate `503`).
    pub max_connections: usize,
    /// Largest allowed request head; beyond it the request is `431`.
    pub max_header_bytes: usize,
    /// Largest allowed `Content-Length`; beyond it the request is `413`
    /// (decided from the header alone).
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection (between requests) is
    /// retained before being closed silently.
    pub keep_alive_idle: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            mode: FrontendMode::Pooled,
            accept_shards: 2,
            http_workers: 8,
            max_connections: 1024,
            max_header_bytes: 16 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
            keep_alive_idle: Duration::from_secs(30),
        }
    }
}

/// A running HTTP front end.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Serve `gateway` on `127.0.0.1:port` (`port` 0 picks a free port)
    /// with the default configuration (pooled keep-alive front end).
    ///
    /// # Errors
    ///
    /// Returns the bind error message when the port is unavailable.
    pub fn serve(gateway: Arc<Gateway>, port: u16) -> Result<HttpServer, String> {
        HttpServer::serve_with(gateway, port, HttpConfig::default())
    }

    /// [`HttpServer::serve`] with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns the bind error message when the port is unavailable.
    pub fn serve_with(
        gateway: Arc<Gateway>,
        port: u16,
        config: HttpConfig,
    ) -> Result<HttpServer, String> {
        let listener = TcpListener::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let handles = match config.mode {
            FrontendMode::ThreadPerConn => {
                vec![spawn_legacy_acceptor(
                    listener,
                    gateway,
                    config,
                    stop.clone(),
                )]
            }
            FrontendMode::Pooled => {
                spawn_pooled(listener, gateway, config, stop.clone()).map_err(|e| e.to_string())?
            }
        };
        Ok(HttpServer {
            addr,
            stop,
            handles,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the serving threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One response: status line suffix, content type, body.
struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: &'static str, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: &'static str, message: &str) -> Response {
        Response::json(status, serde_json::json!({ "error": message }).to_string())
    }

    fn code(&self) -> &str {
        self.status.split_whitespace().next().unwrap_or("")
    }
}

/// Whether an I/O error is a would-block / socket-timeout condition
/// (`SO_RCVTIMEO` surfaces as `WouldBlock` on Unix, `TimedOut` on
/// Windows; nonblocking sockets report `WouldBlock`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------
// Pooled front end: accept shards → poller → ready queue → worker pool.
// ---------------------------------------------------------------------

/// Pipelined requests a worker serves from one connection before
/// yielding it back to the queue so other connections interleave.
const REQUEST_BUDGET: usize = 32;

/// One persistent client connection. Travels between the poller (while
/// waiting for bytes or an inference reply) and HTTP workers (while
/// parsing and responding); the buffer is reused across requests.
struct Conn {
    stream: TcpStream,
    /// Unparsed received bytes (grows across fragmented reads, drained
    /// per parsed request).
    buf: Vec<u8>,
    /// Last instant bytes arrived (stall/idle accounting).
    last_activity: Instant,
    /// In-flight inference this connection is parked on.
    pending: Option<PendingInference>,
    /// Finished inference outcome awaiting response serialization.
    ready_result: Option<InferenceResult>,
    /// Keep-alive flag of the request that produced `pending`.
    keep_alive_after_reply: bool,
    /// Poller verdict: the client stalled mid-request (`408` + close).
    stalled: bool,
    /// Requests completed on this connection (distinguishes a silent
    /// new client, which deserves a `408`, from an idle keep-alive
    /// connection, which is closed silently).
    served: u64,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            last_activity: Instant::now(),
            pending: None,
            ready_result: None,
            keep_alive_after_reply: true,
            stalled: false,
            served: 0,
        }
    }
}

/// MPMC hand-off from the poller to the HTTP workers. The crossbeam
/// shim's `Receiver` is single-consumer, so the multi-consumer ready
/// queue is a mutex-protected deque with a condvar.
struct ReadyQueue {
    inner: std::sync::Mutex<VecDeque<Conn>>,
    cv: std::sync::Condvar,
}

impl ReadyQueue {
    fn new() -> ReadyQueue {
        ReadyQueue {
            inner: std::sync::Mutex::new(VecDeque::new()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn push(&self, conn: Conn) {
        self.inner
            .lock()
            .expect("ready queue poisoned")
            .push_back(conn);
        self.cv.notify_one();
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<Conn> {
        let guard = self.inner.lock().expect("ready queue poisoned");
        let (mut guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |q| q.is_empty())
            .expect("ready queue poisoned");
        guard.pop_front()
    }
}

/// State shared by every pooled front-end thread.
#[derive(Clone)]
struct Shared {
    gateway: Arc<Gateway>,
    config: HttpConfig,
    stop: Arc<AtomicBool>,
    /// Connections handed (back) to the poller.
    park_tx: Sender<Conn>,
    ready: Arc<ReadyQueue>,
    /// Live pooled connections (admission against `max_connections`).
    conns: Arc<AtomicUsize>,
}

fn close_conn(conn: Conn, conns: &AtomicUsize) {
    drop(conn);
    conns.fetch_sub(1, Ordering::Relaxed);
}

fn spawn_pooled(
    listener: TcpListener,
    gateway: Arc<Gateway>,
    config: HttpConfig,
    stop: Arc<AtomicBool>,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    let (park_tx, park_rx) = unbounded::<Conn>();
    let (ops_tx, ops_rx) = unbounded::<TcpStream>();
    let shared = Shared {
        gateway,
        config,
        stop,
        park_tx,
        ready: Arc::new(ReadyQueue::new()),
        conns: Arc::new(AtomicUsize::new(0)),
    };
    let mut handles = Vec::new();
    for _ in 0..config.accept_shards.max(1) {
        let shard = listener.try_clone()?;
        let s = shared.clone();
        let ops = ops_tx.clone();
        handles.push(std::thread::spawn(move || {
            run_accept_shard(shard, &s, &ops)
        }));
    }
    drop(ops_tx);
    {
        let s = shared.clone();
        handles.push(std::thread::spawn(move || run_poller(&s, &park_rx)));
    }
    for _ in 0..config.http_workers.max(1) {
        let s = shared.clone();
        handles.push(std::thread::spawn(move || run_http_worker(&s)));
    }
    {
        let s = shared.clone();
        handles.push(std::thread::spawn(move || run_ops_lane(&s, &ops_rx)));
    }
    Ok(handles)
}

fn run_accept_shard(listener: TcpListener, shared: &Shared, ops_tx: &Sender<TcpStream>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(shared.config.read_timeout);
                let _ = stream.set_write_timeout(shared.config.write_timeout);
                if shared.conns.load(Ordering::Relaxed) >= shared.config.max_connections {
                    // Past the connection budget, operators must still be
                    // able to observe the gateway: the ops lane answers
                    // health endpoints and 503s inference.
                    let _ = ops_tx.send(stream);
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nonblocking(true);
                if let Err(e) = shared.park_tx.send(Conn::new(stream)) {
                    close_conn(e.0, &shared.conns);
                }
            }
            Err(ref e) if is_timeout(e) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

enum PollAction {
    Keep,
    Dispatch,
    Close,
}

fn poll_conn(conn: &mut Conn, shared: &Shared, now: Instant) -> PollAction {
    if let Some(p) = conn.pending.as_mut() {
        // Parked on an inference; the worker queue replies through the
        // gateway. Readable pipelined bytes stay in the socket buffer
        // until the reply is written (responses keep request order).
        if let Some(result) = shared.gateway.poll(p) {
            conn.pending = None;
            conn.ready_result = Some(result);
            return PollAction::Dispatch;
        }
        return PollAction::Keep;
    }
    let mut probe = [0u8; 1];
    match conn.stream.peek(&mut probe) {
        Ok(0) => PollAction::Close,
        Ok(_) => PollAction::Dispatch,
        Err(ref e) if is_timeout(e) => {
            let quiet = now.saturating_duration_since(conn.last_activity);
            if !conn.buf.is_empty() || conn.served == 0 {
                // Mid-request (or never sent anything): the read timeout
                // is the stall deadline, answered with a 408.
                match shared.config.read_timeout {
                    Some(limit) if quiet > limit => {
                        conn.stalled = true;
                        PollAction::Dispatch
                    }
                    _ => PollAction::Keep,
                }
            } else if quiet > shared.config.keep_alive_idle {
                PollAction::Close
            } else {
                PollAction::Keep
            }
        }
        Err(_) => PollAction::Close,
    }
}

fn run_poller(shared: &Shared, park_rx: &Receiver<Conn>) {
    let mut parked: Vec<Conn> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        while let Some(conn) = park_rx.try_recv() {
            parked.push(conn);
        }
        let now = Instant::now();
        let mut i = 0;
        while i < parked.len() {
            match poll_conn(&mut parked[i], shared, now) {
                PollAction::Keep => i += 1,
                PollAction::Dispatch => shared.ready.push(parked.swap_remove(i)),
                PollAction::Close => close_conn(parked.swap_remove(i), &shared.conns),
            }
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    for conn in parked.drain(..) {
        close_conn(conn, &shared.conns);
    }
}

fn run_http_worker(shared: &Shared) {
    while !shared.stop.load(Ordering::Relaxed) {
        let Some(mut conn) = shared.ready.pop_timeout(Duration::from_millis(25)) else {
            continue;
        };
        match serve_conn(&mut conn, shared) {
            Disposition::Park => {
                if let Err(e) = shared.park_tx.send(conn) {
                    close_conn(e.0, &shared.conns);
                }
            }
            Disposition::Requeue => shared.ready.push(conn),
            Disposition::Close => close_conn(conn, &shared.conns),
        }
    }
}

enum Disposition {
    /// Hand back to the poller (waiting for bytes or an inference).
    Park,
    /// More parsed-but-unserved bytes remain; requeue for fairness.
    Requeue,
    /// Connection is finished (error, EOF, or `Connection: close`).
    Close,
}

enum ReadState {
    Progress,
    WouldBlock,
    Closed,
}

fn read_some(conn: &mut Conn) -> ReadState {
    let mut tmp = [0u8; 4096];
    match conn.stream.read(&mut tmp) {
        Ok(0) => ReadState::Closed,
        Ok(n) => {
            conn.buf.extend_from_slice(&tmp[..n]);
            conn.last_activity = Instant::now();
            ReadState::Progress
        }
        Err(ref e) if is_timeout(e) => ReadState::WouldBlock,
        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => ReadState::Progress,
        Err(_) => ReadState::Closed,
    }
}

/// Serialize `resp` with the right `Connection` header and write it.
/// The socket is flipped to blocking for the write so the configured
/// write timeout applies, then back to nonblocking for parking.
fn write_response(
    conn: &mut Conn,
    resp: &Response,
    keep_alive: bool,
    shared: &Shared,
) -> std::io::Result<()> {
    shared
        .gateway
        .metrics()
        .counter("optimus_http_requests_total", &[("code", resp.code())])
        .inc();
    let payload = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        resp.status,
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        resp.body
    );
    conn.stream.set_nonblocking(false)?;
    let result = conn.stream.write_all(payload.as_bytes());
    let _ = conn.stream.set_nonblocking(true);
    result
}

/// Drive one checked-out connection: flush a finished inference reply,
/// then parse and serve pipelined requests until the socket runs dry,
/// an inference parks it, or the request budget yields it.
fn serve_conn(conn: &mut Conn, shared: &Shared) -> Disposition {
    if conn.stalled {
        let resp = Response::error("408 Request Timeout", "timed out mid-request");
        let _ = write_response(conn, &resp, false, shared);
        return Disposition::Close;
    }
    if let Some(result) = conn.ready_result.take() {
        let keep = conn.keep_alive_after_reply;
        let resp = render_infer_result(result);
        conn.served += 1;
        if write_response(conn, &resp, keep, shared).is_err() || !keep {
            return Disposition::Close;
        }
    }
    let limits = ParserLimits {
        max_header_bytes: shared.config.max_header_bytes,
        max_body_bytes: shared.config.max_body_bytes,
    };
    let mut budget = REQUEST_BUDGET;
    loop {
        match parse_request(&conn.buf, &limits) {
            ParseOutcome::Incomplete => match read_some(conn) {
                ReadState::Progress => continue,
                ReadState::WouldBlock => return Disposition::Park,
                ReadState::Closed => {
                    // EOF mid-request (e.g. body shorter than the declared
                    // content-length) still gets a JSON 400, not a silent
                    // drop; EOF between requests is a normal close.
                    if !conn.buf.is_empty() {
                        let resp = Response::error(
                            "400 Bad Request",
                            "connection closed before the request completed",
                        );
                        let _ = write_response(conn, &resp, false, shared);
                    }
                    return Disposition::Close;
                }
            },
            ParseOutcome::Error { status, message } => {
                // Framing is broken; answer and drop the connection.
                let _ = write_response(conn, &Response::error(status, message), false, shared);
                return Disposition::Close;
            }
            ParseOutcome::Request { request, consumed } => {
                conn.buf.drain(..consumed);
                if request.method == "POST" && request.path == "/infer" {
                    match submit_infer(&shared.gateway, &request.body) {
                        Ok(pending) => {
                            conn.pending = Some(pending);
                            conn.keep_alive_after_reply = request.keep_alive;
                            return Disposition::Park;
                        }
                        Err(resp) => {
                            conn.served += 1;
                            if write_response(conn, &resp, request.keep_alive, shared).is_err()
                                || !request.keep_alive
                            {
                                return Disposition::Close;
                            }
                        }
                    }
                } else {
                    let resp = route_get(&shared.gateway, &request.method, &request.path);
                    conn.served += 1;
                    if write_response(conn, &resp, request.keep_alive, shared).is_err()
                        || !request.keep_alive
                    {
                        return Disposition::Close;
                    }
                }
                budget -= 1;
                if budget == 0 {
                    return if conn.buf.is_empty() {
                        Disposition::Park
                    } else {
                        Disposition::Requeue
                    };
                }
            }
        }
    }
}

/// Overflow lane: connections past the pooled budget still get health
/// endpoints (one blocking `Connection: close` exchange each), so an
/// overloaded gateway remains observable; `/infer` is refused with 503.
fn run_ops_lane(shared: &Shared, ops_rx: &Receiver<TcpStream>) {
    loop {
        match ops_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(stream) => serve_ops_connection(stream, shared),
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn serve_ops_connection(stream: TcpStream, shared: &Shared) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let response = match read_one_request(stream) {
        Err(resp) => resp,
        Ok((method, path, _body)) => {
            if method == "POST" && path == "/infer" {
                Response::error(
                    "503 Service Unavailable",
                    "connection budget exhausted; inference admission is closed",
                )
            } else {
                route_get(&shared.gateway, &method, &path)
            }
        }
    };
    shared
        .gateway
        .metrics()
        .counter("optimus_http_requests_total", &[("code", response.code())])
        .inc();
    let _ = writer.write_all(render_close_response(&response).as_bytes());
}

// ---------------------------------------------------------------------
// Request routing shared by both front ends.
// ---------------------------------------------------------------------

fn serve_error_status(e: &ServeError) -> &'static str {
    match e {
        ServeError::Unavailable(_) | ServeError::Shutdown => "503 Service Unavailable",
        ServeError::Overloaded(_) => "429 Too Many Requests",
        _ => "422 Unprocessable Entity",
    }
}

/// Serve the read-only endpoints (and 404 anything else).
fn route_get(gateway: &Gateway, method: &str, path: &str) -> Response {
    match (method, path) {
        ("GET", "/models") => {
            let names = gateway.models();
            Response::json(
                "200 OK",
                serde_json::to_string(&names).expect("string array serializes"),
            )
        }
        ("GET", "/metrics") => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4",
            body: gateway.metrics().render_prometheus(),
        },
        ("GET", "/stats") => {
            Response::json("200 OK", gateway.metrics().snapshot_json().to_string())
        }
        ("GET", "/store") => Response::json("200 OK", store_response(gateway)),
        ("GET", "/healthz") => {
            let nodes = gateway.healthy_nodes();
            let fleet = gateway.fleet_size();
            Response::json(
                "200 OK",
                serde_json::json!({ "status": "ok", "fleet_nodes": fleet, "nodes": nodes })
                    .to_string(),
            )
        }
        _ => Response::error(
            "404 Not Found",
            "unknown endpoint (GET /models, /metrics, /stats, /store, /healthz; POST /infer)",
        ),
    }
}

/// Body of `GET /store`: fleet total plus per-node weight-store stats.
fn store_response(gateway: &Gateway) -> String {
    let Some(total) = gateway.store_stats() else {
        return "{\"enabled\":false}".to_string();
    };
    let nodes: Vec<String> = gateway
        .store_stats_by_node()
        .iter()
        .map(|(node, stats)| {
            format!(
                "{{\"node\":{node},\"stats\":{}}}",
                serde_json::to_string(stats).expect("store stats serialize")
            )
        })
        .collect();
    format!(
        "{{\"enabled\":true,\"total\":{},\"nodes\":[{}]}}",
        serde_json::to_string(&total).expect("store stats serialize"),
        nodes.join(",")
    )
}

/// Decode an `/infer` body into its model name and input tensor.
fn parse_infer_body(body: &[u8]) -> Result<(String, Tensor), (&'static str, String)> {
    let parsed: serde_json::Value = serde_json::from_slice(body)
        .map_err(|e| ("400 Bad Request", format!("malformed JSON: {e}")))?;
    let model = parsed["model"]
        .as_str()
        .ok_or(("400 Bad Request", "missing 'model'".to_string()))?;
    let shape: Vec<usize> = parsed["shape"]
        .as_array()
        .ok_or(("400 Bad Request", "missing 'shape'".to_string()))?
        .iter()
        .map(|v| v.as_u64().unwrap_or(0) as usize)
        .collect();
    let numel: usize = shape.iter().product();
    if numel == 0 || numel > 4_000_000 {
        return Err(("400 Bad Request", format!("bad tensor shape {shape:?}")));
    }
    let data: Vec<f32> = match parsed.get("data").and_then(|d| d.as_array()) {
        Some(values) => {
            if values.len() != numel {
                return Err((
                    "400 Bad Request",
                    format!("data length {} != shape numel {numel}", values.len()),
                ));
            }
            values
                .iter()
                .map(|v| v.as_f64().unwrap_or(0.0) as f32)
                .collect()
        }
        None => vec![0.0; numel],
    };
    Ok((model.to_string(), Tensor::new(shape, data)))
}

/// Parse and enqueue an `/infer` request without waiting for the reply.
fn submit_infer(gateway: &Gateway, body: &[u8]) -> Result<PendingInference, Response> {
    let (model, input) = match parse_infer_body(body) {
        Ok(parsed) => parsed,
        Err((status, msg)) => return Err(Response::error(status, &msg)),
    };
    gateway
        .submit(&model, input)
        .map_err(|e| Response::error(serve_error_status(&e), &e.to_string()))
}

fn render_infer_ok(resp: &InferenceResponse) -> String {
    let preview: Vec<f32> = resp.output.data().iter().copied().take(16).collect();
    serde_json::json!({
        "model": resp.model,
        "start": resp.start.as_label(),
        "wait_seconds": resp.wait_seconds,
        "startup_seconds": resp.startup_seconds,
        "compute_seconds": resp.compute_seconds,
        "node": resp.node,
        "transform_steps": resp.transform_steps,
        "batch_size": resp.batch_size,
        "output_shape": resp.output.shape().dims(),
        "output": preview,
    })
    .to_string()
}

fn render_infer_result(result: InferenceResult) -> Response {
    match result {
        Ok(resp) => Response::json("200 OK", render_infer_ok(&resp)),
        Err(e) => Response::error(serve_error_status(&e), &e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Legacy thread-per-connection front end (the load-generator baseline).
// ---------------------------------------------------------------------

fn spawn_legacy_acceptor(
    listener: TcpListener,
    gateway: Arc<Gateway>,
    config: HttpConfig,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_read_timeout(config.read_timeout);
                    let _ = stream.set_write_timeout(config.write_timeout);
                    let gw = gateway.clone();
                    workers.push(std::thread::spawn(move || handle_connection(stream, &gw)));
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        for w in workers {
            let _ = w.join();
        }
    })
}

fn render_close_response(response: &Response) -> String {
    format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.content_type,
        response.body.len(),
        response.body
    )
}

fn handle_connection(stream: TcpStream, gateway: &Gateway) {
    let peer = stream.try_clone();
    let Ok(mut writer) = peer else { return };
    let response = match read_one_request(stream) {
        Err(resp) => resp,
        Ok((method, path, body)) => {
            if method == "POST" && path == "/infer" {
                match parse_infer_body(&body) {
                    Err((status, msg)) => Response::error(status, &msg),
                    Ok((model, input)) => match gateway.infer(&model, input) {
                        Ok(resp) => Response::json("200 OK", render_infer_ok(&resp)),
                        Err(e) => Response::error(serve_error_status(&e), &e.to_string()),
                    },
                }
            } else {
                route_get(gateway, &method, &path)
            }
        }
    };
    gateway
        .metrics()
        .counter("optimus_http_requests_total", &[("code", response.code())])
        .inc();
    let _ = writer.write_all(render_close_response(&response).as_bytes());
}

/// Read one blocking `Connection: close` style request (request line,
/// headers, `Content-Length` body). Malformed or timed-out requests
/// produce an error response instead of a silently dropped connection.
fn read_one_request(stream: TcpStream) -> Result<(String, String, Vec<u8>), Response> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        Err(e) if is_timeout(&e) => {
            return Err(Response::error(
                "408 Request Timeout",
                "timed out reading request line",
            ))
        }
        Err(_) => {
            return Err(Response::error(
                "400 Bad Request",
                "empty or unreadable request line",
            ))
        }
        Ok(_) => {}
    }
    if request_line.trim().is_empty() {
        return Err(Response::error(
            "400 Bad Request",
            "empty or unreadable request line",
        ));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(Response::error("400 Bad Request", "malformed request line"));
    }
    // Headers (we only need Content-Length).
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line
                    .to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    content_length = v;
                }
            }
            Err(e) if is_timeout(&e) => {
                return Err(Response::error(
                    "408 Request Timeout",
                    "timed out reading headers",
                ))
            }
            Err(_) => return Err(Response::error("400 Bad Request", "unreadable headers")),
        }
    }
    let mut body = vec![0u8; content_length.min(16 * 1024 * 1024)];
    if content_length > 0 {
        match reader.read_exact(&mut body) {
            Err(e) if is_timeout(&e) => {
                return Err(Response::error(
                    "408 Request Timeout",
                    "timed out reading body",
                ))
            }
            Err(_) => {
                return Err(Response::error(
                    "400 Bad Request",
                    "body shorter than content-length",
                ))
            }
            Ok(()) => {}
        }
    }
    Ok((method, path, body))
}
