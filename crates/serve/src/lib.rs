//! # optimus-serve — a live, in-process serving engine
//!
//! Where `optimus-sim` *models* latency, this crate actually *runs* the
//! system, mirroring the paper's §7 prototype (gateway service + container
//! scheduler) with threads instead of Docker:
//!
//! - a [`Gateway`] accepts inference requests and routes them to worker
//!   nodes over crossbeam channels;
//! - each worker owns *live containers* that hold real
//!   [`optimus_model::ModelGraph`]s;
//! - on a miss, the worker consults the [`optimus_core::ModelRepository`]
//!   plan cache and — when the safeguard approves — **executes the
//!   meta-operator plan on the container's actual graph** via
//!   [`optimus_core::execute_plan`], verifying the result structurally;
//! - inference requests then run through the real forward-pass engine.
//!
//! Latencies reported in responses are measured wall-clock times of the
//! real work (planning lookups, graph transformation, inference). Model
//! "loading" in-process is a graph clone — the latency *model* for loading
//! lives in `optimus-profile`/`optimus-sim`; this crate demonstrates the
//! *mechanism* end to end.
//!
//! ```
//! use optimus_serve::{Gateway, GatewayConfig};
//! use optimus_model::tensor::Tensor;
//!
//! // Two tiny structurally-similar models.
//! let a = tiny_model("model-a", 4);
//! let b = tiny_model("model-b", 8);
//! let gateway = Gateway::builder(GatewayConfig::default())
//!     .register(a)
//!     .register(b)
//!     .spawn();
//!
//! let out = gateway.infer("model-a", Tensor::zeros([1, 3, 8, 8])).unwrap();
//! assert_eq!(out.output.shape().dims(), &[1, 4, 8, 8]);
//! gateway.shutdown();
//!
//! fn tiny_model(name: &str, ch: usize) -> optimus_model::ModelGraph {
//!     let mut bld = optimus_model::GraphBuilder::new(name);
//!     let i = bld.input([1, 3, 8, 8]);
//!     let _ = bld.conv2d_after(i, 3, ch, (3, 3), (1, 1), 1);
//!     bld.finish().unwrap()
//! }
//! ```

mod api;
mod gateway;
pub mod http;
pub mod parser;
mod predict;
mod worker;

pub use api::{
    DecodeResponse, GatewayConfig, InferenceResponse, ServeError, ServedStart, ServingConfig,
};
pub use gateway::{Gateway, GatewayBuilder, InferenceResult, PendingDecode, PendingInference};
pub use http::{FrontendMode, HttpConfig, HttpServer};

// Re-exported so serving deployments can configure and read the weight
// store without depending on `optimus-store` directly.
pub use optimus_store::{StoreConfig, StoreStats};

// Re-exported so callers can hand [`GatewayBuilder::metrics`] a hermetic
// registry without depending on `optimus-telemetry` directly.
pub use optimus_telemetry::MetricsRegistry;

// Re-exported so deployments can enable chaos testing without depending
// on `optimus-faults` directly.
pub use optimus_faults::{FaultSpec, RetryPolicy};

// Re-exported so deployments can enable arrival prediction (adaptive
// keep-alive + speculative transformation) without depending on
// `optimus-predict` directly.
pub use optimus_predict::{PredictConfig, SpeculationConfig};

// Re-exported so deployments can tune the token-level decode cost model
// ([`GatewayBuilder::llm_config`]) without depending on `optimus-llm`
// directly.
pub use optimus_llm::LlmConfig;
