//! Worker node: a thread owning live containers.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use optimus_core::{execute_plan, ModelRepository, TransformDecision};
use optimus_model::tensor::Tensor;
use optimus_model::{infer, ModelGraph, ModelId};
use optimus_store::{model_chunks, ChunkRef, NodeStore, StoreConfig, StoreStats, Tier};
use optimus_telemetry::{Counter, Gauge, MetricsRegistry, Phase, Span, TelemetrySink};
use parking_lot::Mutex;

use crate::api::{GatewayConfig, InferenceResponse, ServeError, ServedStart};

/// An inference request as delivered to a worker. Models are addressed by
/// their interned [`ModelId`] — the gateway resolves the client-facing
/// name exactly once; the worker's warm/donor matching is integer
/// comparison, not string comparison.
pub(crate) struct InferItem {
    pub model_id: ModelId,
    pub input: Tensor,
    /// When the gateway accepted the request (queue-wait measurement).
    pub enqueued: Instant,
    /// Injected transform failure (`optimus-faults`): the first attempted
    /// in-place transformation for this request aborts and the safeguard
    /// escalates to a cold start.
    pub fail_transform: bool,
    pub reply: Sender<Result<InferenceResponse, ServeError>>,
}

/// One unit of work for a worker thread: an inference, or an injected
/// fault event from the gateway's fault plan.
pub(crate) enum WorkItem {
    Infer(InferItem),
    /// Node crash: all live containers die and the weight store loses its
    /// volatile tiers ([`NodeStore::crash`]); durable disk state survives.
    Crash,
    /// Kill the least-recently-used container (OOM-killer analogue).
    Kill,
    /// Fleet scale-out shipped these chunks to the joining node ahead of
    /// traffic: place them at node memory ([`NodeStore::warm`]) so its
    /// first requests hit locally instead of fetching from the origin.
    Warm(Vec<ChunkRef>),
}

/// A live container: a real model graph plus usage timestamps.
struct LiveContainer {
    model: ModelGraph,
    model_id: ModelId,
    last_used: Instant,
}

/// Per-node weight-store accounting plus its telemetry handles.
///
/// The live engine measures real wall-clock, so the store never injects
/// latency here; it tracks which chunks each container lifecycle event
/// would move between tiers and exports residency/dedup metrics.
pub(crate) struct WorkerStore {
    node_id: usize,
    store: NodeStore,
    chunk_bytes: u64,
    /// Chunk lists are deterministic per registered model: compute once,
    /// keyed by interned id.
    model_chunks: HashMap<ModelId, Vec<ChunkRef>>,
    /// Resident-byte gauges for the three local tiers, warmest first:
    /// container, node memory, node disk.
    resident: [Gauge; 3],
    dedup: Gauge,
    hits: Counter,
    misses: Counter,
    reported_hits: u64,
    reported_misses: u64,
    shared: Arc<Mutex<HashMap<usize, StoreStats>>>,
}

impl WorkerStore {
    fn new(
        node_id: usize,
        config: StoreConfig,
        repo: &ModelRepository,
        metrics: &MetricsRegistry,
        shared: Arc<Mutex<HashMap<usize, StoreStats>>>,
    ) -> WorkerStore {
        let mut store = NodeStore::new(config);
        // Pin every cached plan's payload so LRU pressure cannot evict
        // the transformation working set (§4.4's cached plans stay hot).
        store.pin(&repo.plan_referenced_chunks(config.chunk_bytes));
        let node = node_id.to_string();
        let resident = [Tier::Container, Tier::NodeMemory, Tier::NodeDisk].map(|tier| {
            metrics.gauge(
                "optimus_store_resident_bytes",
                &[("node", &node), ("tier", tier.name())],
            )
        });
        WorkerStore {
            node_id,
            store,
            chunk_bytes: config.chunk_bytes,
            model_chunks: HashMap::new(),
            resident,
            dedup: metrics.gauge("optimus_store_dedup_ratio", &[("node", &node)]),
            hits: metrics.counter("optimus_store_chunk_hits_total", &[("node", &node)]),
            misses: metrics.counter("optimus_store_chunk_misses_total", &[("node", &node)]),
            reported_hits: 0,
            reported_misses: 0,
            shared,
        }
    }

    fn chunks_of(&mut self, repo: &ModelRepository, id: ModelId) -> Vec<ChunkRef> {
        if let Some(chunks) = self.model_chunks.get(&id) {
            return chunks.clone();
        }
        let chunks = repo
            .model_name_of(id)
            .and_then(|name| repo.model(&name))
            .map(|m| model_chunks(&m, self.chunk_bytes))
            .unwrap_or_default();
        self.model_chunks.insert(id, chunks.clone());
        chunks
    }

    /// A cold start admits the full model.
    fn admit_model(&mut self, repo: &ModelRepository, id: ModelId) {
        let chunks = self.chunks_of(repo, id);
        self.store.admit(&chunks);
    }

    /// A transformation fetches only the cached plan's payload delta; the
    /// rest of the destination is synthesized in place from the donor.
    fn transform(&mut self, repo: &ModelRepository, src: ModelId, dst: ModelId) {
        match repo.plan_chunks_by_id(src, dst, self.chunk_bytes) {
            Some(pc) => {
                self.store.admit(&pc.fetched);
                self.store.produce(&pc.reused);
            }
            // No cached plan chunks (shouldn't happen when a plan was just
            // applied): account a full admission.
            None => self.admit_model(repo, dst),
        }
        let src_chunks = self.chunks_of(repo, src);
        self.store.release(&src_chunks);
    }

    /// Container eviction demotes its chunks instead of forgetting them.
    fn release_model(&mut self, repo: &ModelRepository, id: ModelId) {
        let chunks = self.chunks_of(repo, id);
        self.store.release(&chunks);
    }

    /// Node crash: volatile tiers are lost wholesale (refcounts zeroed,
    /// container/memory-resident chunks forgotten, pinned chunks demoted
    /// to remote placeholders); disk state survives the reboot.
    fn crash(&mut self) {
        self.store.crash();
    }

    /// A scale-out shipped `chunks` to this node: place them at node
    /// memory without touching hit/miss accounting (the transfer is
    /// proactive fleet traffic, not a request-driven fetch).
    fn warm(&mut self, chunks: &[ChunkRef]) {
        self.store.warm(chunks);
    }

    /// Push current stats into the metrics registry and the shared
    /// per-node snapshot map read by `Gateway::store_stats`.
    fn publish(&mut self) {
        let stats = self.store.stats();
        self.resident[0].set(stats.container_bytes as f64);
        self.resident[1].set(stats.memory_bytes as f64);
        self.resident[2].set(stats.disk_bytes as f64);
        self.dedup.set(stats.dedup_ratio);
        self.hits.add(stats.hits - self.reported_hits);
        self.misses.add(stats.misses - self.reported_misses);
        self.reported_hits = stats.hits;
        self.reported_misses = stats.misses;
        self.shared.lock().insert(self.node_id, stats);
    }
}

/// Counters a worker bumps when the resilience machinery engages.
struct FaultCounters {
    /// Transformations that failed (injected or real) and escalated to a
    /// cold start instead of surfacing an error to the client.
    escalations: Counter,
    /// Transform executions that blew their cost-model budget
    /// ([`ModelRepository::note_transform_seconds`] demoted the pair).
    overruns: Counter,
    /// Containers destroyed by injected crash/kill events.
    evictions: Counter,
}

/// Worker main loop: owns its containers; processes items until the
/// channel closes. Every served request is measured by a telemetry
/// [`Span`] and exported through `sink`; an `optimus_containers` gauge
/// tracks pool occupancy and, when the store is enabled, per-tier
/// residency gauges plus chunk hit/miss counters track the weight store.
/// `Crash`/`Kill` items from the gateway's fault plan destroy container
/// state (and volatile store tiers) in between requests.
pub(crate) fn run_worker(
    node_id: usize,
    config: GatewayConfig,
    repo: Arc<ModelRepository>,
    rx: Receiver<WorkItem>,
    sink: Arc<dyn TelemetrySink>,
    metrics: Arc<MetricsRegistry>,
    store_stats: Arc<Mutex<HashMap<usize, StoreStats>>>,
) {
    let node = node_id.to_string();
    let containers_gauge = metrics.gauge("optimus_containers", &[("node", &node)]);
    let counters = FaultCounters {
        escalations: metrics.counter("optimus_safeguard_escalations_total", &[("node", &node)]),
        overruns: metrics.counter("optimus_transform_overruns_total", &[("node", &node)]),
        evictions: metrics.counter("optimus_fault_evictions_total", &[("node", &node)]),
    };
    let mut store = config
        .store
        .map(|sc| WorkerStore::new(node_id, sc, &repo, &metrics, store_stats));
    // Publish the empty-store baseline so `/store` reports every node
    // from the first request onward.
    if let Some(ws) = store.as_mut() {
        ws.publish();
    }
    let mut containers: Vec<LiveContainer> = Vec::new();
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Crash => {
                counters.evictions.add(containers.len() as u64);
                containers.clear();
                if let Some(ws) = store.as_mut() {
                    ws.crash();
                    ws.publish();
                }
                containers_gauge.set(0.0);
            }
            WorkItem::Warm(chunks) => {
                if let Some(ws) = store.as_mut() {
                    ws.warm(&chunks);
                    ws.publish();
                }
            }
            WorkItem::Kill => {
                if let Some(victim) = containers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.last_used)
                    .map(|(i, _)| i)
                {
                    let dead = containers.swap_remove(victim);
                    counters.evictions.inc();
                    if let Some(ws) = store.as_mut() {
                        ws.release_model(&repo, dead.model_id);
                        ws.publish();
                    }
                }
                containers_gauge.set(containers.len() as f64);
            }
            WorkItem::Infer(item) => {
                let wait = item.enqueued.elapsed().as_secs_f64();
                // Telemetry labels resolve the interned id back to its
                // name once per request, here at the edge.
                let name = repo
                    .model_name_of(item.model_id)
                    .unwrap_or_else(|| format!("model#{}", item.model_id.0));
                let mut span = Span::begin(name.clone(), node_id);
                span.add(Phase::Wait, wait);
                let result = serve(
                    node_id,
                    &config,
                    &repo,
                    &mut containers,
                    store.as_mut(),
                    &item,
                    &name,
                    wait,
                    &mut span,
                    &counters,
                );
                if result.is_ok() {
                    sink.record(&span.finish());
                }
                containers_gauge.set(containers.len() as f64);
                if let Some(ws) = store.as_mut() {
                    ws.publish();
                }
                // The client may have given up; a dead reply channel is fine.
                let _ = item.reply.send(result);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve(
    node_id: usize,
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    mut store: Option<&mut WorkerStore>,
    item: &InferItem,
    name: &str,
    wait_seconds: f64,
    span: &mut Span,
    counters: &FaultCounters,
) -> Result<InferenceResponse, ServeError> {
    let now = Instant::now();
    // Keep-alive eviction: expired containers release their chunks, which
    // demotes them to node memory rather than forgetting them.
    let mut expired = Vec::new();
    containers.retain(|c| {
        let keep = now.duration_since(c.last_used).as_secs_f64() <= config.keep_alive;
        if !keep {
            expired.push(c.model_id);
        }
        keep
    });
    if let Some(ws) = store.as_deref_mut() {
        for &id in &expired {
            ws.release_model(repo, id);
        }
    }

    let obtained = obtain_container(config, repo, containers, store, item, name, counters)?;
    span.set_kind(obtained.start.into());
    span.add(Phase::Load, obtained.startup_seconds);
    span.set_transform_steps(obtained.transform_steps);
    if let Some(hit) = obtained.plan_cache_hit {
        span.set_plan_cache_hit(hit);
    }
    let slot = obtained.slot;
    let t0 = Instant::now();
    let output = infer::run(&containers[slot].model, item.input.clone())
        .map_err(|e| ServeError::Inference(e.to_string()))?;
    let compute_seconds = t0.elapsed().as_secs_f64();
    span.add(Phase::Compute, compute_seconds);
    containers[slot].last_used = Instant::now();
    Ok(InferenceResponse {
        model: name.to_string(),
        output,
        start: obtained.start,
        wait_seconds,
        startup_seconds: obtained.startup_seconds,
        compute_seconds,
        node: node_id,
        transform_steps: obtained.transform_steps,
    })
}

/// How a container was obtained for one request.
struct Obtained {
    /// Index into the worker's container pool.
    slot: usize,
    start: ServedStart,
    /// Wall-clock spent transforming or instantiating (0 for warm).
    startup_seconds: f64,
    /// Meta-operator steps executed (0 unless transformed).
    transform_steps: usize,
    /// `Some(true)` when a cached plan was applied, `Some(false)` when
    /// donors existed but every decision fell back to loading, `None`
    /// when no donor was consulted (warm hit or empty node).
    plan_cache_hit: Option<bool>,
}

/// Get a container holding the model, preferring warm, then
/// transformation of an idle donor, then cold instantiation.
///
/// Safeguard under failure: when a transformation aborts — injected via
/// [`InferItem::fail_transform`] or a real [`execute_plan`] error — the
/// corrupt donor is destroyed (its chunks released) and the request
/// escalates to a cold start instead of erroring back to the client.
fn obtain_container(
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    mut store: Option<&mut WorkerStore>,
    item: &InferItem,
    name: &str,
    counters: &FaultCounters,
) -> Result<Obtained, ServeError> {
    let model_id = item.model_id;
    // Warm hit: integer comparison on interned ids.
    if let Some(i) = containers.iter().position(|c| c.model_id == model_id) {
        return Ok(Obtained {
            slot: i,
            start: ServedStart::Warm,
            startup_seconds: 0.0,
            transform_steps: 0,
            plan_cache_hit: None,
        });
    }
    let target = repo
        .model(name)
        .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
    let now = Instant::now();
    // Idle donors, longest-idle first (§4.2).
    let mut donors: Vec<usize> = containers
        .iter()
        .enumerate()
        .filter(|(_, c)| now.duration_since(c.last_used).as_secs_f64() >= config.idle_threshold)
        .map(|(i, _)| i)
        .collect();
    donors.sort_by(|&a, &b| containers[a].last_used.cmp(&containers[b].last_used));
    let consulted_donors = !donors.is_empty();
    for i in donors {
        let src_id = containers[i].model_id;
        match repo.decide_by_id(src_id, model_id) {
            Some(TransformDecision::Transform(plan)) => {
                if item.fail_transform {
                    // Injected transform failure: the donor is corrupt
                    // mid-plan. Destroy it, release its chunks, escalate
                    // to a cold start (§6.3's safeguard under failure).
                    containers.swap_remove(i);
                    counters.escalations.inc();
                    if let Some(ws) = store.as_deref_mut() {
                        ws.release_model(repo, src_id);
                    }
                    break;
                }
                let t0 = Instant::now();
                match execute_plan(&mut containers[i].model, &plan, &target) {
                    Ok(report) => {
                        // Cached plans reference the op-id space of the
                        // *registered* graphs (see `execute_plan`'s
                        // contract). The transformed graph is verified
                        // structurally identical to the target, so
                        // canonicalise its id space by adopting the
                        // registered graph — this keeps future cached
                        // plans applicable to this container.
                        containers[i].model = (*target).clone();
                        containers[i].model_id = model_id;
                        let startup = t0.elapsed().as_secs_f64();
                        containers[i].last_used = Instant::now();
                        if let Some(ws) = store.as_deref_mut() {
                            // Admit the plan's fetched payload (only the
                            // delta crosses a tier), synthesize the reused
                            // remainder in place, release the donor's
                            // chunks.
                            ws.transform(repo, src_id, model_id);
                        }
                        if repo.note_transform_seconds(src_id, model_id, startup) {
                            counters.overruns.inc();
                        }
                        return Ok(Obtained {
                            slot: i,
                            start: ServedStart::Transformed,
                            startup_seconds: startup,
                            transform_steps: report.steps_applied,
                            plan_cache_hit: Some(true),
                        });
                    }
                    Err(_) => {
                        // The plan failed partway, leaving the donor in an
                        // undefined state: destroy it and escalate to cold.
                        containers.swap_remove(i);
                        counters.escalations.inc();
                        if let Some(ws) = store.as_deref_mut() {
                            ws.release_model(repo, src_id);
                        }
                        break;
                    }
                }
            }
            // Safeguard picked loading, or the pair is unknown: try the
            // next donor — a cold start may still be cheaper overall.
            _ => continue,
        }
    }
    // Cold start: instantiate the model; evict LRU if at capacity.
    let t0 = Instant::now();
    if containers.len() >= config.capacity_per_node {
        if let Some(victim) = containers
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(i, _)| i)
        {
            let evicted = containers.swap_remove(victim);
            if let Some(ws) = store.as_deref_mut() {
                ws.release_model(repo, evicted.model_id);
            }
        }
    }
    containers.push(LiveContainer {
        model: (*target).clone(),
        model_id,
        last_used: Instant::now(),
    });
    if let Some(ws) = store {
        ws.admit_model(repo, model_id);
    }
    let startup = t0.elapsed().as_secs_f64();
    repo.note_load_seconds(model_id, startup);
    Ok(Obtained {
        slot: containers.len() - 1,
        start: ServedStart::Cold,
        startup_seconds: startup,
        transform_steps: 0,
        plan_cache_hit: if consulted_donors { Some(false) } else { None },
    })
}
