//! Worker node: a thread owning live containers.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use optimus_core::{execute_plan, ModelRepository, TransformDecision};
use optimus_model::tensor::Tensor;
use optimus_model::{infer, ModelGraph};
use optimus_telemetry::{Gauge, Phase, Span, TelemetrySink};

use crate::api::{GatewayConfig, InferenceResponse, ServeError, ServedStart};

/// A request as delivered to a worker.
pub(crate) struct WorkItem {
    pub model: String,
    pub input: Tensor,
    /// When the gateway accepted the request (queue-wait measurement).
    pub enqueued: Instant,
    pub reply: Sender<Result<InferenceResponse, ServeError>>,
}

/// A live container: a real model graph plus usage timestamps.
struct LiveContainer {
    model: ModelGraph,
    last_used: Instant,
}

/// Worker main loop: owns its containers; processes items until the
/// channel closes. Every served request is measured by a telemetry
/// [`Span`] and exported through `sink`; `containers_gauge` tracks pool
/// occupancy.
pub(crate) fn run_worker(
    node_id: usize,
    config: GatewayConfig,
    repo: Arc<ModelRepository>,
    rx: Receiver<WorkItem>,
    sink: Arc<dyn TelemetrySink>,
    containers_gauge: Gauge,
) {
    let mut containers: Vec<LiveContainer> = Vec::new();
    while let Ok(item) = rx.recv() {
        let wait = item.enqueued.elapsed().as_secs_f64();
        let mut span = Span::begin(item.model.clone(), node_id);
        span.add(Phase::Wait, wait);
        let result = serve(
            node_id,
            &config,
            &repo,
            &mut containers,
            &item,
            wait,
            &mut span,
        );
        if result.is_ok() {
            sink.record(&span.finish());
        }
        containers_gauge.set(containers.len() as f64);
        // The client may have given up; a dead reply channel is fine.
        let _ = item.reply.send(result);
    }
}

fn serve(
    node_id: usize,
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    item: &WorkItem,
    wait_seconds: f64,
    span: &mut Span,
) -> Result<InferenceResponse, ServeError> {
    let now = Instant::now();
    // Keep-alive eviction.
    containers.retain(|c| now.duration_since(c.last_used).as_secs_f64() <= config.keep_alive);

    let obtained = obtain_container(config, repo, containers, &item.model)?;
    span.set_kind(obtained.start.into());
    span.add(Phase::Load, obtained.startup_seconds);
    span.set_transform_steps(obtained.transform_steps);
    if let Some(hit) = obtained.plan_cache_hit {
        span.set_plan_cache_hit(hit);
    }
    let slot = obtained.slot;
    let t0 = Instant::now();
    let output = infer::run(&containers[slot].model, item.input.clone())
        .map_err(|e| ServeError::Inference(e.to_string()))?;
    let compute_seconds = t0.elapsed().as_secs_f64();
    span.add(Phase::Compute, compute_seconds);
    containers[slot].last_used = Instant::now();
    Ok(InferenceResponse {
        model: item.model.clone(),
        output,
        start: obtained.start,
        wait_seconds,
        startup_seconds: obtained.startup_seconds,
        compute_seconds,
        node: node_id,
        transform_steps: obtained.transform_steps,
    })
}

/// How a container was obtained for one request.
struct Obtained {
    /// Index into the worker's container pool.
    slot: usize,
    start: ServedStart,
    /// Wall-clock spent transforming or instantiating (0 for warm).
    startup_seconds: f64,
    /// Meta-operator steps executed (0 unless transformed).
    transform_steps: usize,
    /// `Some(true)` when a cached plan was applied, `Some(false)` when
    /// donors existed but every decision fell back to loading, `None`
    /// when no donor was consulted (warm hit or empty node).
    plan_cache_hit: Option<bool>,
}

/// Get a container holding `model`, preferring warm, then transformation
/// of an idle donor, then cold instantiation.
fn obtain_container(
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    model: &str,
) -> Result<Obtained, ServeError> {
    // Warm hit.
    if let Some(i) = containers.iter().position(|c| c.model.name() == model) {
        return Ok(Obtained {
            slot: i,
            start: ServedStart::Warm,
            startup_seconds: 0.0,
            transform_steps: 0,
            plan_cache_hit: None,
        });
    }
    let target = repo
        .model(model)
        .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
    let now = Instant::now();
    // Idle donors, longest-idle first (§4.2).
    let mut donors: Vec<usize> = containers
        .iter()
        .enumerate()
        .filter(|(_, c)| now.duration_since(c.last_used).as_secs_f64() >= config.idle_threshold)
        .map(|(i, _)| i)
        .collect();
    donors.sort_by(|&a, &b| containers[a].last_used.cmp(&containers[b].last_used));
    let consulted_donors = !donors.is_empty();
    for i in donors {
        let src_name = containers[i].model.name().to_string();
        match repo.decide(&src_name, model) {
            Some(TransformDecision::Transform(plan)) => {
                let t0 = Instant::now();
                let report = execute_plan(&mut containers[i].model, &plan, &target)
                    .map_err(|e| ServeError::Inference(format!("transform failed: {e}")))?;
                // Cached plans reference the op-id space of the *registered*
                // graphs (see `execute_plan`'s contract). The transformed
                // graph is verified structurally identical to the target, so
                // canonicalise its id space by adopting the registered graph
                // — this keeps future cached plans applicable to this
                // container.
                containers[i].model = (*target).clone();
                let startup = t0.elapsed().as_secs_f64();
                containers[i].last_used = Instant::now();
                return Ok(Obtained {
                    slot: i,
                    start: ServedStart::Transformed,
                    startup_seconds: startup,
                    transform_steps: report.steps_applied,
                    plan_cache_hit: Some(true),
                });
            }
            // Safeguard picked loading, or the pair is unknown: try the
            // next donor — a cold start may still be cheaper overall.
            _ => continue,
        }
    }
    // Cold start: instantiate the model; evict LRU if at capacity.
    let t0 = Instant::now();
    if containers.len() >= config.capacity_per_node {
        if let Some(victim) = containers
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(i, _)| i)
        {
            containers.swap_remove(victim);
        }
    }
    containers.push(LiveContainer {
        model: (*target).clone(),
        last_used: Instant::now(),
    });
    let startup = t0.elapsed().as_secs_f64();
    Ok(Obtained {
        slot: containers.len() - 1,
        start: ServedStart::Cold,
        startup_seconds: startup,
        transform_steps: 0,
        plan_cache_hit: if consulted_donors { Some(false) } else { None },
    })
}
