//! Worker node: a thread owning live containers.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use optimus_core::{execute_plan, ModelRepository, TransformDecision};
use optimus_model::tensor::Tensor;
use optimus_model::{infer, ModelGraph};

use crate::api::{GatewayConfig, InferenceResponse, ServeError, ServedStart};

/// A request as delivered to a worker.
pub(crate) struct WorkItem {
    pub model: String,
    pub input: Tensor,
    pub reply: Sender<Result<InferenceResponse, ServeError>>,
}

/// A live container: a real model graph plus usage timestamps.
struct LiveContainer {
    model: ModelGraph,
    last_used: Instant,
}

/// Worker main loop: owns its containers; processes items until the
/// channel closes.
pub(crate) fn run_worker(
    node_id: usize,
    config: GatewayConfig,
    repo: Arc<ModelRepository>,
    rx: Receiver<WorkItem>,
) {
    let mut containers: Vec<LiveContainer> = Vec::new();
    while let Ok(item) = rx.recv() {
        let result = serve(node_id, &config, &repo, &mut containers, &item);
        // The client may have given up; a dead reply channel is fine.
        let _ = item.reply.send(result);
    }
}

fn serve(
    node_id: usize,
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    item: &WorkItem,
) -> Result<InferenceResponse, ServeError> {
    let now = Instant::now();
    // Keep-alive eviction.
    containers.retain(|c| now.duration_since(c.last_used).as_secs_f64() <= config.keep_alive);

    let (slot, start, startup_seconds, transform_steps) =
        obtain_container(config, repo, containers, &item.model)?;
    let t0 = Instant::now();
    let output = infer::run(&containers[slot].model, item.input.clone())
        .map_err(|e| ServeError::Inference(e.to_string()))?;
    let compute_seconds = t0.elapsed().as_secs_f64();
    containers[slot].last_used = Instant::now();
    Ok(InferenceResponse {
        model: item.model.clone(),
        output,
        start,
        startup_seconds,
        compute_seconds,
        node: node_id,
        transform_steps,
    })
}

/// Get a container holding `model`, preferring warm, then transformation
/// of an idle donor, then cold instantiation. Returns
/// `(index, start kind, startup seconds, transform steps)`.
fn obtain_container(
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    model: &str,
) -> Result<(usize, ServedStart, f64, usize), ServeError> {
    // Warm hit.
    if let Some(i) = containers.iter().position(|c| c.model.name() == model) {
        return Ok((i, ServedStart::Warm, 0.0, 0));
    }
    let target = repo
        .model(model)
        .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
    let now = Instant::now();
    // Idle donors, longest-idle first (§4.2).
    let mut donors: Vec<usize> = containers
        .iter()
        .enumerate()
        .filter(|(_, c)| now.duration_since(c.last_used).as_secs_f64() >= config.idle_threshold)
        .map(|(i, _)| i)
        .collect();
    donors.sort_by(|&a, &b| containers[a].last_used.cmp(&containers[b].last_used));
    for i in donors {
        let src_name = containers[i].model.name().to_string();
        match repo.decide(&src_name, model) {
            Some(TransformDecision::Transform(plan)) => {
                let t0 = Instant::now();
                let report = execute_plan(&mut containers[i].model, &plan, &target)
                    .map_err(|e| ServeError::Inference(format!("transform failed: {e}")))?;
                // Cached plans reference the op-id space of the *registered*
                // graphs (see `execute_plan`'s contract). The transformed
                // graph is verified structurally identical to the target, so
                // canonicalise its id space by adopting the registered graph
                // — this keeps future cached plans applicable to this
                // container.
                containers[i].model = (*target).clone();
                let startup = t0.elapsed().as_secs_f64();
                containers[i].last_used = Instant::now();
                return Ok((i, ServedStart::Transformed, startup, report.steps_applied));
            }
            // Safeguard picked loading, or the pair is unknown: try the
            // next donor — a cold start may still be cheaper overall.
            _ => continue,
        }
    }
    // Cold start: instantiate the model; evict LRU if at capacity.
    let t0 = Instant::now();
    if containers.len() >= config.capacity_per_node {
        if let Some(victim) = containers
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(i, _)| i)
        {
            containers.swap_remove(victim);
        }
    }
    containers.push(LiveContainer {
        model: (*target).clone(),
        last_used: Instant::now(),
    });
    let startup = t0.elapsed().as_secs_f64();
    Ok((containers.len() - 1, ServedStart::Cold, startup, 0))
}
