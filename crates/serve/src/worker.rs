//! Worker node: a thread owning live containers.
//!
//! Work arrives on two channels. The *inference* channel is bounded
//! ([`crate::ServingConfig::queue_depth`]) — the gateway's admission
//! control rejects with a `429` instead of growing it — and is drained in
//! per-model batches: after the first request the worker waits up to
//! `max_batch_wait_us` for the batch to fill, then serves each model's
//! group with one container acquisition (warm match, donor scan,
//! transformation or cold start, store accounting) amortised across the
//! group. Each request still runs its own forward pass, so responses are
//! byte-identical whether or not they were batched. The *control*
//! channel (crashes, kills, warm transfers) is unbounded and checked
//! before every batch so fleet events are never dropped or stuck behind
//! queued inference work.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use optimus_core::{execute_plan, ModelRepository, TransformDecision};
use optimus_model::tensor::Tensor;
use optimus_model::{infer, InternKey, ModelGraph, ModelId};
use optimus_predict::SpecCandidate;
use optimus_store::{model_chunks, ChunkRef, NodeStore, StoreConfig, StoreStats, Tier};
use optimus_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, Phase, Span, TelemetrySink};
use parking_lot::Mutex;

use crate::api::{GatewayConfig, InferenceResponse, ServeError, ServedStart};
use crate::predict::PredictShared;

/// An inference request as delivered to a worker. Models are addressed by
/// their interned [`ModelId`] — the gateway resolves the client-facing
/// name exactly once; the worker's warm/donor matching is integer
/// comparison, not string comparison.
pub(crate) struct InferItem {
    pub model_id: ModelId,
    pub input: Tensor,
    /// When the gateway accepted the request (queue-wait measurement).
    pub enqueued: Instant,
    /// Injected transform failure (`optimus-faults`): the first attempted
    /// in-place transformation for this request aborts and the safeguard
    /// escalates to a cold start.
    pub fail_transform: bool,
    pub reply: Sender<Result<InferenceResponse, ServeError>>,
}

/// A fleet/fault event for a worker thread, delivered on the unbounded
/// control channel so it can never be rejected by admission control.
pub(crate) enum ControlItem {
    /// Node crash: all live containers die and the weight store loses its
    /// volatile tiers ([`NodeStore::crash`]); durable disk state survives.
    Crash,
    /// Kill the least-recently-used container (OOM-killer analogue).
    Kill,
    /// Fleet scale-out shipped these chunks to the joining node ahead of
    /// traffic: place them at node memory ([`NodeStore::warm`]) so its
    /// first requests hit locally instead of fetching from the origin.
    Warm(Vec<ChunkRef>),
}

/// A live container: a real model graph plus usage timestamps.
struct LiveContainer {
    model: ModelGraph,
    model_id: ModelId,
    last_used: Instant,
    /// The container was produced by a speculative transform and has not
    /// served a request since: its first warm hit is a prediction hit
    /// (flag cleared); dying with the flag set is a misprediction.
    /// Always `false` with prediction off.
    speculated: bool,
}

/// Per-node weight-store accounting plus its telemetry handles.
///
/// The live engine measures real wall-clock, so the store never injects
/// latency here; it tracks which chunks each container lifecycle event
/// would move between tiers and exports residency/dedup metrics.
pub(crate) struct WorkerStore {
    node_id: usize,
    store: NodeStore,
    chunk_bytes: u64,
    /// Chunk lists are deterministic per registered model: compute once,
    /// keyed by interned id.
    model_chunks: HashMap<ModelId, Vec<ChunkRef>>,
    /// Resident-byte gauges for the three local tiers, warmest first:
    /// container, node memory, node disk.
    resident: [Gauge; 3],
    dedup: Gauge,
    hits: Counter,
    misses: Counter,
    reported_hits: u64,
    reported_misses: u64,
    shared: Arc<Mutex<HashMap<usize, StoreStats>>>,
}

impl WorkerStore {
    fn new(
        node_id: usize,
        config: StoreConfig,
        repo: &ModelRepository,
        metrics: &MetricsRegistry,
        shared: Arc<Mutex<HashMap<usize, StoreStats>>>,
    ) -> WorkerStore {
        let mut store = NodeStore::new(config);
        // Pin every cached plan's payload so LRU pressure cannot evict
        // the transformation working set (§4.4's cached plans stay hot).
        store.pin(&repo.plan_referenced_chunks(config.chunk_bytes));
        let node = node_id.to_string();
        let resident = [Tier::Container, Tier::NodeMemory, Tier::NodeDisk].map(|tier| {
            metrics.gauge(
                "optimus_store_resident_bytes",
                &[("node", &node), ("tier", tier.name())],
            )
        });
        WorkerStore {
            node_id,
            store,
            chunk_bytes: config.chunk_bytes,
            model_chunks: HashMap::new(),
            resident,
            dedup: metrics.gauge("optimus_store_dedup_ratio", &[("node", &node)]),
            hits: metrics.counter("optimus_store_chunk_hits_total", &[("node", &node)]),
            misses: metrics.counter("optimus_store_chunk_misses_total", &[("node", &node)]),
            reported_hits: 0,
            reported_misses: 0,
            shared,
        }
    }

    fn chunks_of(&mut self, repo: &ModelRepository, id: ModelId) -> Vec<ChunkRef> {
        if let Some(chunks) = self.model_chunks.get(&id) {
            return chunks.clone();
        }
        let chunks = repo
            .model_name_of(id)
            .and_then(|name| repo.model(&name))
            .map(|m| model_chunks(&m, self.chunk_bytes))
            .unwrap_or_default();
        self.model_chunks.insert(id, chunks.clone());
        chunks
    }

    /// A cold start admits the full model.
    fn admit_model(&mut self, repo: &ModelRepository, id: ModelId) {
        let chunks = self.chunks_of(repo, id);
        self.store.admit(&chunks);
    }

    /// A transformation fetches only the cached plan's payload delta; the
    /// rest of the destination is synthesized in place from the donor.
    fn transform(&mut self, repo: &ModelRepository, src: ModelId, dst: ModelId) {
        match repo.plan_chunks_by_id(src, dst, self.chunk_bytes) {
            Some(pc) => {
                self.store.admit(&pc.fetched);
                self.store.produce(&pc.reused);
            }
            // No cached plan chunks (shouldn't happen when a plan was just
            // applied): account a full admission.
            None => self.admit_model(repo, dst),
        }
        let src_chunks = self.chunks_of(repo, src);
        self.store.release(&src_chunks);
    }

    /// Container eviction demotes its chunks instead of forgetting them.
    fn release_model(&mut self, repo: &ModelRepository, id: ModelId) {
        let chunks = self.chunks_of(repo, id);
        self.store.release(&chunks);
    }

    /// Node crash: volatile tiers are lost wholesale (refcounts zeroed,
    /// container/memory-resident chunks forgotten, pinned chunks demoted
    /// to remote placeholders); disk state survives the reboot.
    fn crash(&mut self) {
        self.store.crash();
    }

    /// A scale-out shipped `chunks` to this node: place them at node
    /// memory without touching hit/miss accounting (the transfer is
    /// proactive fleet traffic, not a request-driven fetch).
    fn warm(&mut self, chunks: &[ChunkRef]) {
        self.store.warm(chunks);
    }

    /// Push current stats into the metrics registry and the shared
    /// per-node snapshot map read by `Gateway::store_stats`.
    fn publish(&mut self) {
        let stats = self.store.stats();
        self.resident[0].set(stats.container_bytes as f64);
        self.resident[1].set(stats.memory_bytes as f64);
        self.resident[2].set(stats.disk_bytes as f64);
        self.dedup.set(stats.dedup_ratio);
        self.hits.add(stats.hits - self.reported_hits);
        self.misses.add(stats.misses - self.reported_misses);
        self.reported_hits = stats.hits;
        self.reported_misses = stats.misses;
        self.shared.lock().insert(self.node_id, stats);
    }
}

/// Counters a worker bumps when the resilience machinery engages.
struct FaultCounters {
    /// Transformations that failed (injected or real) and escalated to a
    /// cold start instead of surfacing an error to the client.
    escalations: Counter,
    /// Transform executions that blew their cost-model budget
    /// ([`ModelRepository::note_transform_seconds`] demoted the pair).
    overruns: Counter,
    /// Containers destroyed by injected crash/kill events.
    evictions: Counter,
}

/// Everything a worker turn needs besides the containers themselves.
struct WorkerState {
    node_id: usize,
    config: GatewayConfig,
    repo: Arc<ModelRepository>,
    sink: Arc<dyn TelemetrySink>,
    containers_gauge: Gauge,
    /// Live depth of this node's bounded admission queue
    /// (`optimus_serve_queue_depth`): the gateway adds on enqueue, the
    /// worker subtracts on dequeue.
    depth_gauge: Gauge,
    /// Size of every same-model group served (`optimus_serve_batch_size`).
    batch_hist: Histogram,
    counters: FaultCounters,
    store: Option<WorkerStore>,
    /// Arrival predictor shared with the gateway (`None`: prediction
    /// off): adaptive keep-alive windows + speculation outcome counters.
    predict: Option<Arc<PredictShared>>,
    /// Node per model (by `ModelId::index()`): which models this node
    /// would serve, hence which it may speculate on.
    placement: Arc<Vec<usize>>,
}

impl WorkerState {
    /// The keep-alive window for one container: the predictor's learned
    /// per-model window, or the global config value with prediction off.
    fn keep_alive_window(&self, id: ModelId) -> f64 {
        match self.predict.as_ref() {
            Some(ps) => ps.window(id.index()),
            None => self.config.keep_alive,
        }
    }

    /// Count a container dying with its speculation unconsumed.
    fn note_dead_speculation(&self, speculated: bool) {
        note_dead_spec(self.predict.as_deref(), speculated);
    }

    fn handle_control(&mut self, item: ControlItem, containers: &mut Vec<LiveContainer>) {
        match item {
            ControlItem::Crash => {
                self.counters.evictions.add(containers.len() as u64);
                for c in containers.iter() {
                    self.note_dead_speculation(c.speculated);
                }
                containers.clear();
                if let Some(ws) = self.store.as_mut() {
                    ws.crash();
                    ws.publish();
                }
                self.containers_gauge.set(0.0);
            }
            ControlItem::Warm(chunks) => {
                if let Some(ws) = self.store.as_mut() {
                    ws.warm(&chunks);
                    ws.publish();
                }
            }
            ControlItem::Kill => {
                if let Some(victim) = containers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.last_used)
                    .map(|(i, _)| i)
                {
                    let dead = containers.swap_remove(victim);
                    self.counters.evictions.inc();
                    self.note_dead_speculation(dead.speculated);
                    if let Some(ws) = self.store.as_mut() {
                        ws.release_model(&self.repo, dead.model_id);
                        ws.publish();
                    }
                }
                self.containers_gauge.set(containers.len() as f64);
            }
        }
    }
}

/// Worker main loop: owns its containers; batches the bounded inference
/// queue per model until it closes. Every served request is measured by a
/// telemetry [`Span`] and exported through `sink`; an
/// `optimus_containers` gauge tracks pool occupancy,
/// `optimus_serve_queue_depth`/`optimus_serve_batch_size` track admission
/// and batching, and, when the store is enabled, per-tier residency
/// gauges plus chunk hit/miss counters track the weight store.
/// `Crash`/`Kill` control items from the gateway's fault plan destroy
/// container state (and volatile store tiers) in between batches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker(
    node_id: usize,
    config: GatewayConfig,
    repo: Arc<ModelRepository>,
    infer_rx: Receiver<InferItem>,
    ctrl_rx: Receiver<ControlItem>,
    sink: Arc<dyn TelemetrySink>,
    metrics: Arc<MetricsRegistry>,
    store_stats: Arc<Mutex<HashMap<usize, StoreStats>>>,
    predict: Option<Arc<PredictShared>>,
    placement: Arc<Vec<usize>>,
) {
    let node = node_id.to_string();
    let mut state = WorkerState {
        node_id,
        config,
        repo: repo.clone(),
        sink,
        containers_gauge: metrics.gauge("optimus_containers", &[("node", &node)]),
        depth_gauge: metrics.gauge("optimus_serve_queue_depth", &[("node", &node)]),
        batch_hist: metrics.histogram_with_bounds(
            "optimus_serve_batch_size",
            &[("node", &node)],
            || vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
        ),
        counters: FaultCounters {
            escalations: metrics.counter("optimus_safeguard_escalations_total", &[("node", &node)]),
            overruns: metrics.counter("optimus_transform_overruns_total", &[("node", &node)]),
            evictions: metrics.counter("optimus_fault_evictions_total", &[("node", &node)]),
        },
        store: config
            .store
            .map(|sc| WorkerStore::new(node_id, sc, &repo, &metrics, store_stats)),
        predict,
        placement,
    };
    // Publish the empty-store baseline so `/store` reports every node
    // from the first request onward.
    if let Some(ws) = state.store.as_mut() {
        ws.publish();
    }
    let mut containers: Vec<LiveContainer> = Vec::new();
    let max_batch = config.serving.max_batch.max(1);
    let window = Duration::from_micros(config.serving.max_batch_wait_us);
    loop {
        // Control events do not wait behind queued inference work.
        while let Some(ev) = ctrl_rx.try_recv() {
            state.handle_control(ev, &mut containers);
        }
        // Idle tick: wake periodically so control events (and shutdown)
        // are noticed even when no requests arrive. With prediction on,
        // an idle tick also runs maintenance: adaptive keep-alive sweeps
        // and — because the inference queue is empty right now — any due
        // speculative transforms, so speculation never delays a real
        // request.
        let first = match infer_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => {
                if state.predict.is_some() {
                    idle_maintenance(&mut state, &mut containers);
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut batch = vec![first];
        if max_batch > 1 {
            let deadline = Instant::now() + window;
            while batch.len() < max_batch {
                // Drain what is already queued, then wait out the window.
                if let Some(item) = infer_rx.try_recv() {
                    batch.push(item);
                    continue;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match infer_rx.recv_timeout(deadline - now) {
                    Ok(item) => batch.push(item),
                    Err(_) => break,
                }
            }
        }
        state.depth_gauge.add(-(batch.len() as f64));
        // A fault event drawn alongside a request in this batch must land
        // before the batch is served (single-channel FIFO equivalence).
        while let Some(ev) = ctrl_rx.try_recv() {
            state.handle_control(ev, &mut containers);
        }
        // Partition into per-model groups, preserving arrival order;
        // different models arriving in one window are never co-batched.
        let mut groups: Vec<(ModelId, Vec<InferItem>)> = Vec::new();
        for item in batch {
            match groups.iter_mut().find(|(id, _)| *id == item.model_id) {
                Some((_, g)) => g.push(item),
                None => groups.push((item.model_id, vec![item])),
            }
        }
        for (model_id, group) in groups {
            serve_group(&mut state, &mut containers, model_id, group);
        }
    }
    // Late control events (e.g. a crash racing a drain) are dropped with
    // the node.
}

/// Serve one same-model group: acquire the container once, then run each
/// request's own forward pass. The first request pays (and reports) the
/// acquisition — cold, transformed or warm — and the rest are warm hits
/// on the container it produced, exactly as if they had arrived
/// sequentially.
fn serve_group(
    state: &mut WorkerState,
    containers: &mut Vec<LiveContainer>,
    model_id: ModelId,
    group: Vec<InferItem>,
) {
    let batch_size = group.len();
    state.batch_hist.observe(batch_size as f64);
    // Telemetry labels resolve the interned id back to its name once per
    // group, here at the edge.
    let name = state
        .repo
        .model_name_of(model_id)
        .unwrap_or_else(|| format!("model#{}", model_id.0));
    // Keep-alive eviction: expired containers release their chunks, which
    // demotes them to node memory rather than forgetting them.
    sweep_expired(state, containers);
    let mut acquired: Option<Obtained> = None;
    for item in group {
        let wait = item.enqueued.elapsed().as_secs_f64();
        let mut span = Span::begin(name.clone(), state.node_id);
        span.add(Phase::Wait, wait);
        let obtained = match acquired.take() {
            // Followers hit the container the group leader acquired.
            Some(prev) => Ok(Obtained {
                slot: prev.slot,
                start: ServedStart::Warm,
                startup_seconds: 0.0,
                transform_steps: 0,
                plan_cache_hit: None,
            }),
            None => obtain_container(
                &state.config,
                &state.repo,
                containers,
                state.store.as_mut(),
                &item,
                &name,
                &state.counters,
                state.predict.as_deref(),
            ),
        };
        let result = obtained.and_then(|obtained| {
            span.set_kind(obtained.start.into());
            span.add(Phase::Load, obtained.startup_seconds);
            span.set_transform_steps(obtained.transform_steps);
            if let Some(hit) = obtained.plan_cache_hit {
                span.set_plan_cache_hit(hit);
            }
            let slot = obtained.slot;
            let t0 = Instant::now();
            let output = infer::run(&containers[slot].model, item.input.clone())
                .map_err(|e| ServeError::Inference(e.to_string()))?;
            let compute_seconds = t0.elapsed().as_secs_f64();
            span.add(Phase::Compute, compute_seconds);
            containers[slot].last_used = Instant::now();
            let response = InferenceResponse {
                model: name.clone(),
                output,
                start: obtained.start,
                wait_seconds: wait,
                startup_seconds: obtained.startup_seconds,
                compute_seconds,
                node: state.node_id,
                transform_steps: obtained.transform_steps,
                batch_size,
            };
            acquired = Some(obtained);
            Ok(response)
        });
        if result.is_ok() {
            state.sink.record(&span.finish());
        }
        // The client may have given up; a dead reply channel is fine.
        let _ = item.reply.send(result);
    }
    state.containers_gauge.set(containers.len() as f64);
    if let Some(ws) = state.store.as_mut() {
        ws.publish();
    }
}

/// Count a container dying with its speculation unconsumed (no-op with
/// prediction off or an unspeculated container).
fn note_dead_spec(predict: Option<&PredictShared>, speculated: bool) {
    if speculated {
        if let Some(ps) = predict {
            ps.spec_mispredictions.inc();
        }
    }
}

/// Keep-alive sweep: evict containers idle past their window (the
/// predictor's per-model window when prediction is on, the global
/// `keep_alive` otherwise). Expired chunks are released (demoted, not
/// forgotten); a speculated container expiring unconsumed counts as a
/// misprediction.
fn sweep_expired(state: &mut WorkerState, containers: &mut Vec<LiveContainer>) {
    let now = Instant::now();
    let mut expired = Vec::new();
    containers.retain(|c| {
        let keep =
            now.duration_since(c.last_used).as_secs_f64() <= state.keep_alive_window(c.model_id);
        if !keep {
            expired.push((c.model_id, c.speculated));
        }
        keep
    });
    for &(id, speculated) in &expired {
        state.note_dead_speculation(speculated);
        if let Some(ws) = state.store.as_mut() {
            ws.release_model(&state.repo, id);
        }
    }
}

/// Idle-tick maintenance with prediction on: sweep adaptive keep-alive
/// windows, then execute any due speculative transforms. Runs only when
/// the inference queue has been empty for a full tick, so speculation
/// work never preempts a real request.
fn idle_maintenance(state: &mut WorkerState, containers: &mut Vec<LiveContainer>) {
    let before = containers.len();
    sweep_expired(state, containers);
    if containers.len() != before {
        state.containers_gauge.set(containers.len() as f64);
        if let Some(ws) = state.store.as_mut() {
            ws.publish();
        }
    }
    let Some(ps) = state.predict.clone() else {
        return;
    };
    if ps.speculation().is_none() {
        return;
    }
    // Models placed on this node, not currently warm here, whose forecast
    // arrival band is due — accepted only when an idle donor is actually
    // available right now. Rejected candidates stay armed, so a later
    // tick (or a model's own node) can still claim them.
    let now = Instant::now();
    let have_donor = containers.iter().any(|c| {
        !c.speculated
            && now.duration_since(c.last_used).as_secs_f64() >= state.config.idle_threshold
    });
    let due = ps.due(|idx| {
        have_donor
            && state.placement.get(idx) == Some(&state.node_id)
            && !containers.iter().any(|c| c.model_id.index() == idx)
    });
    for idx in due {
        speculate_one(state, containers, &ps, ModelId::from_index(idx));
    }
}

/// Try to convert one idle donor into `dst` ahead of its predicted
/// arrival. Mirrors the reactive transform path (donor scan, cached
/// plan, store accounting) but is admitted by the [`SpecCandidate`]
/// cost gate: the plan's estimated cost must undercut `dst`'s scratch
/// load, so even a misprediction wastes less than one cold start.
fn speculate_one(
    state: &mut WorkerState,
    containers: &mut Vec<LiveContainer>,
    ps: &PredictShared,
    dst: ModelId,
) {
    let Some(spec) = ps.speculation() else {
        return;
    };
    let target_info = state.repo.model_name_of(dst).and_then(|name| {
        let cold = state.repo.load_cost(&name)?;
        let target = state.repo.model(&name)?;
        Some((cold, target))
    });
    let (Some((cold_cost, target)), Some(confidence)) = (target_info, ps.confidence(dst.index()))
    else {
        ps.spec_skipped.inc();
        return;
    };
    // Idle donors, longest-idle first — the same order the reactive
    // path scans (§4.2). Containers already speculated for another model
    // are reserved, not cannibalized.
    let now = Instant::now();
    let mut donors: Vec<usize> = containers
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            !c.speculated
                && now.duration_since(c.last_used).as_secs_f64() >= state.config.idle_threshold
        })
        .map(|(i, _)| i)
        .collect();
    donors.sort_by(|&a, &b| containers[a].last_used.cmp(&containers[b].last_used));
    for i in donors {
        let src_id = containers[i].model_id;
        let Some(TransformDecision::Transform(plan)) = state.repo.decide_by_id(src_id, dst) else {
            continue;
        };
        let candidate = SpecCandidate {
            spec_cost: plan.cost.total(),
            cold_cost,
            confidence,
        };
        if !candidate.admit(spec.aggressiveness) {
            ps.spec_skipped.inc();
            return;
        }
        // Repurposing a donor that was itself speculated consumes that
        // earlier (wrong) guess.
        state.note_dead_speculation(containers[i].speculated);
        containers[i].speculated = false;
        let t0 = Instant::now();
        match execute_plan(&mut containers[i].model, &plan, &target) {
            Ok(_) => {
                containers[i].model = (*target).clone();
                containers[i].model_id = dst;
                containers[i].speculated = true;
                // A fresh keep-alive lease, like any newly provisioned
                // container: the guess must survive until the predicted
                // arrival. A wrong guess is reserved (never donated) and
                // dies at the keep-alive sweep as a misprediction.
                containers[i].last_used = Instant::now();
                let seconds = t0.elapsed().as_secs_f64();
                if let Some(ws) = state.store.as_mut() {
                    ws.transform(&state.repo, src_id, dst);
                    ws.publish();
                }
                if state.repo.note_transform_seconds(src_id, dst, seconds) {
                    state.counters.overruns.inc();
                }
                ps.speculations.inc();
            }
            Err(_) => {
                // The plan failed partway: the donor is in an undefined
                // state, destroy it (same safeguard as the reactive
                // path). No cold-start escalation — nobody is waiting.
                let dead = containers.swap_remove(i);
                state.counters.escalations.inc();
                state.note_dead_speculation(dead.speculated);
                if let Some(ws) = state.store.as_mut() {
                    ws.release_model(&state.repo, src_id);
                    ws.publish();
                }
                state.containers_gauge.set(containers.len() as f64);
                ps.spec_skipped.inc();
            }
        }
        return;
    }
    // No idle donor with an applicable plan.
    ps.spec_skipped.inc();
}

/// How a container was obtained for one request.
struct Obtained {
    /// Index into the worker's container pool.
    slot: usize,
    start: ServedStart,
    /// Wall-clock spent transforming or instantiating (0 for warm).
    startup_seconds: f64,
    /// Meta-operator steps executed (0 unless transformed).
    transform_steps: usize,
    /// `Some(true)` when a cached plan was applied, `Some(false)` when
    /// donors existed but every decision fell back to loading, `None`
    /// when no donor was consulted (warm hit or empty node).
    plan_cache_hit: Option<bool>,
}

/// Get a container holding the model, preferring warm, then
/// transformation of an idle donor, then cold instantiation.
///
/// Safeguard under failure: when a transformation aborts — injected via
/// [`InferItem::fail_transform`] or a real [`execute_plan`] error — the
/// corrupt donor is destroyed (its chunks released) and the request
/// escalates to a cold start instead of erroring back to the client.
#[allow(clippy::too_many_arguments)]
fn obtain_container(
    config: &GatewayConfig,
    repo: &ModelRepository,
    containers: &mut Vec<LiveContainer>,
    mut store: Option<&mut WorkerStore>,
    item: &InferItem,
    name: &str,
    counters: &FaultCounters,
    predict: Option<&PredictShared>,
) -> Result<Obtained, ServeError> {
    let model_id = item.model_id;
    // Warm hit: integer comparison on interned ids. A speculated
    // container serving its first request is a prediction hit — this is
    // the cold start speculation avoided.
    if let Some(i) = containers.iter().position(|c| c.model_id == model_id) {
        if containers[i].speculated {
            containers[i].speculated = false;
            if let Some(ps) = predict {
                ps.spec_hits.inc();
            }
        }
        return Ok(Obtained {
            slot: i,
            start: ServedStart::Warm,
            startup_seconds: 0.0,
            transform_steps: 0,
            plan_cache_hit: None,
        });
    }
    let target = repo
        .model(name)
        .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
    let now = Instant::now();
    // Idle donors, longest-idle first (§4.2). Speculated containers are
    // reserved for their predicted arrival and skipped — they can still
    // be evicted under capacity pressure, so real work never starves.
    let mut donors: Vec<usize> = containers
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            !c.speculated && now.duration_since(c.last_used).as_secs_f64() >= config.idle_threshold
        })
        .map(|(i, _)| i)
        .collect();
    donors.sort_by(|&a, &b| containers[a].last_used.cmp(&containers[b].last_used));
    let consulted_donors = !donors.is_empty();
    for i in donors {
        let src_id = containers[i].model_id;
        match repo.decide_by_id(src_id, model_id) {
            Some(TransformDecision::Transform(plan)) => {
                if item.fail_transform {
                    // Injected transform failure: the donor is corrupt
                    // mid-plan. Destroy it, release its chunks, escalate
                    // to a cold start (§6.3's safeguard under failure).
                    let dead = containers.swap_remove(i);
                    note_dead_spec(predict, dead.speculated);
                    counters.escalations.inc();
                    if let Some(ws) = store.as_deref_mut() {
                        ws.release_model(repo, src_id);
                    }
                    break;
                }
                let t0 = Instant::now();
                // Repurposing a speculated donor consumes that earlier
                // (wrong) guess.
                note_dead_spec(predict, containers[i].speculated);
                containers[i].speculated = false;
                match execute_plan(&mut containers[i].model, &plan, &target) {
                    Ok(report) => {
                        // Cached plans reference the op-id space of the
                        // *registered* graphs (see `execute_plan`'s
                        // contract). The transformed graph is verified
                        // structurally identical to the target, so
                        // canonicalise its id space by adopting the
                        // registered graph — this keeps future cached
                        // plans applicable to this container.
                        containers[i].model = (*target).clone();
                        containers[i].model_id = model_id;
                        let startup = t0.elapsed().as_secs_f64();
                        containers[i].last_used = Instant::now();
                        if let Some(ws) = store.as_deref_mut() {
                            // Admit the plan's fetched payload (only the
                            // delta crosses a tier), synthesize the reused
                            // remainder in place, release the donor's
                            // chunks.
                            ws.transform(repo, src_id, model_id);
                        }
                        if repo.note_transform_seconds(src_id, model_id, startup) {
                            counters.overruns.inc();
                        }
                        return Ok(Obtained {
                            slot: i,
                            start: ServedStart::Transformed,
                            startup_seconds: startup,
                            transform_steps: report.steps_applied,
                            plan_cache_hit: Some(true),
                        });
                    }
                    Err(_) => {
                        // The plan failed partway, leaving the donor in an
                        // undefined state: destroy it and escalate to cold.
                        containers.swap_remove(i);
                        counters.escalations.inc();
                        // (Its speculation, if any, was already consumed
                        // above.)
                        if let Some(ws) = store.as_deref_mut() {
                            ws.release_model(repo, src_id);
                        }
                        break;
                    }
                }
            }
            // Safeguard picked loading, or the pair is unknown: try the
            // next donor — a cold start may still be cheaper overall.
            _ => continue,
        }
    }
    // Cold start: instantiate the model; evict LRU if at capacity.
    let t0 = Instant::now();
    if containers.len() >= config.capacity_per_node {
        if let Some(victim) = containers
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(i, _)| i)
        {
            let evicted = containers.swap_remove(victim);
            note_dead_spec(predict, evicted.speculated);
            if let Some(ws) = store.as_deref_mut() {
                ws.release_model(repo, evicted.model_id);
            }
        }
    }
    containers.push(LiveContainer {
        model: (*target).clone(),
        model_id,
        last_used: Instant::now(),
        speculated: false,
    });
    if let Some(ws) = store {
        ws.admit_model(repo, model_id);
    }
    let startup = t0.elapsed().as_secs_f64();
    repo.note_load_seconds(model_id, startup);
    Ok(Obtained {
        slot: containers.len() - 1,
        start: ServedStart::Cold,
        startup_seconds: startup,
        transform_steps: 0,
        plan_cache_hit: if consulted_donors { Some(false) } else { None },
    })
}
