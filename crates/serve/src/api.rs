//! Public request/response types of the serving engine.

use optimus_model::tensor::Tensor;

/// How the serving container was obtained (live analogue of the
/// simulator's start kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedStart {
    /// Container already held the model.
    Warm,
    /// A new container was created and the model instantiated.
    Cold,
    /// An idle container's model was transformed in place via the cached
    /// meta-operator plan.
    Transformed,
}

impl ServedStart {
    /// The label used in HTTP responses ("warm" / "cold" / "transformed").
    pub fn as_label(self) -> &'static str {
        match self {
            ServedStart::Warm => "warm",
            ServedStart::Cold => "cold",
            ServedStart::Transformed => "transformed",
        }
    }
}

impl From<ServedStart> for optimus_telemetry::StartKind {
    fn from(start: ServedStart) -> Self {
        match start {
            ServedStart::Warm => optimus_telemetry::StartKind::Warm,
            ServedStart::Cold => optimus_telemetry::StartKind::Cold,
            ServedStart::Transformed => optimus_telemetry::StartKind::Transform,
        }
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    /// Model that served the request.
    pub model: String,
    /// Output tensor of the forward pass.
    pub output: Tensor,
    /// How the container was obtained.
    pub start: ServedStart,
    /// Measured queueing delay between the gateway accepting the request
    /// and a worker picking it up, in seconds.
    pub wait_seconds: f64,
    /// Measured wall-clock spent obtaining the container (transformation
    /// or instantiation), in seconds.
    pub startup_seconds: f64,
    /// Measured wall-clock of the forward pass, in seconds.
    pub compute_seconds: f64,
    /// Id of the worker node that served the request.
    pub node: usize,
    /// Number of meta-operator steps executed (0 unless transformed).
    pub transform_steps: usize,
    /// Size of the same-model batch this request was served in (1 when it
    /// was not batched). Requests for different models are never
    /// co-batched, so this counts only requests that shared the container
    /// acquisition.
    pub batch_size: usize,
}

/// A completed decode loop (`Gateway::submit_decode` /
/// `Gateway::poll_decode`).
///
/// The live engine executes the *prefill* forward pass for real — it
/// rides the ordinary submit/poll machinery, so admission control,
/// routing, faults, retries, transformation and store accounting are all
/// identical to single-shot inference — and prices the remaining decode
/// iterations with the same [`optimus_llm::LlmConfig`] cost model the
/// simulator uses, at the batch size the prefill was actually served in.
#[derive(Debug, Clone)]
pub struct DecodeResponse {
    /// The measured prefill pass (first token). Its wait/startup/compute
    /// breakdown and start kind are exactly an [`InferenceResponse`]'s.
    pub prefill: InferenceResponse,
    /// Output tokens of this decode loop (deterministic per-request draw,
    /// [`optimus_llm::LlmConfig::decode_tokens`]).
    pub tokens: u64,
    /// Time-to-first-token: the measured wait + startup + prefill
    /// compute, in seconds.
    pub ttft_seconds: f64,
    /// Modeled wall-clock of the remaining `tokens - 1` decode
    /// iterations, in seconds.
    pub decode_seconds: f64,
}

impl DecodeResponse {
    /// TTFT plus the modeled decode tail: arrival → last token.
    pub fn total_seconds(&self) -> f64 {
        self.ttft_seconds + self.decode_seconds
    }
}

/// Serving errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The requested model is not registered.
    UnknownModel(String),
    /// The forward pass failed (shape mismatch with the supplied input).
    Inference(String),
    /// Every node that could serve the request is marked unhealthy (all
    /// retries exhausted); clients should back off and try again.
    Unavailable(String),
    /// The routed node's admission queue is full
    /// ([`ServingConfig::queue_depth`]); the request was rejected instead
    /// of queueing unboundedly. HTTP clients see a `429`.
    Overloaded(String),
    /// The gateway is shutting down.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(m) => write!(f, "unknown model '{m}'"),
            ServeError::Inference(e) => write!(f, "inference failed: {e}"),
            ServeError::Unavailable(e) => write!(f, "no healthy node: {e}"),
            ServeError::Overloaded(e) => write!(f, "admission queue full: {e}"),
            ServeError::Shutdown => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Admission control and per-model request batching at the worker nodes.
///
/// Every node's inference queue is *bounded*: when `queue_depth` requests
/// are already waiting, further submissions are rejected with
/// [`ServeError::Overloaded`] (HTTP `429`) instead of growing an
/// unbounded backlog — queueing delay stays bounded and overload is
/// visible to clients immediately. Workers drain their queue in batches:
/// after picking up a request they wait up to `max_batch_wait_us` for
/// more, then serve all requests for the *same model* as one group —
/// container acquisition, donor scan and store accounting are paid once
/// per group, while each request keeps its own forward pass so responses
/// are byte-identical whether or not they were batched. Requests for
/// different models arriving in the same window are served as separate
/// groups, never co-batched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Bounded per-node queue depth; `try_send` overflow is a `429`.
    pub queue_depth: usize,
    /// Largest batch a worker collects before serving (1 disables
    /// batching).
    pub max_batch: usize,
    /// How long a worker waits for the batch to fill after the first
    /// request arrives, in microseconds (0: drain only what is already
    /// queued).
    pub max_batch_wait_us: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            queue_depth: 256,
            max_batch: 8,
            max_batch_wait_us: 200,
        }
    }
}

impl ServingConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// When `queue_depth` or `max_batch` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_depth == 0 {
            return Err("queue_depth must be at least 1".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1 (1 disables batching)".into());
        }
        Ok(())
    }
}

/// Gateway configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Number of worker nodes (threads).
    pub nodes: usize,
    /// Maximum live containers per node.
    pub capacity_per_node: usize,
    /// Seconds without a request before a container becomes a
    /// transformation donor (§4.2; scaled down for in-process use).
    pub idle_threshold: f64,
    /// Seconds without use before a container is evicted.
    pub keep_alive: f64,
    /// Per-node content-addressed weight store (`optimus-store`). In the
    /// live engine the store is a *residency accountant*, not a latency
    /// injector: admissions and releases mirror the container lifecycle
    /// (cold start admits the model's chunks, transformation admits only
    /// the cached plan's payload, eviction demotes instead of forgetting)
    /// and the resulting tier occupancy, hit/miss counts and dedup ratio
    /// are exported at `GET /metrics` and `GET /store`. `None` disables
    /// the accounting entirely.
    pub store: Option<optimus_store::StoreConfig>,
    /// Deterministic fault injection (`optimus-faults`): seeded
    /// per-request draws for node crashes, container kills and transform
    /// failures, plus the resilience machinery they exercise (health-aware
    /// re-routing with bounded retries, safeguard escalation to cold
    /// start, store/state cleanup on container death). `None` (the
    /// default) disables the fault layer; a quiet spec (all rates zero)
    /// injects nothing.
    pub faults: Option<optimus_faults::FaultSpec>,
    /// Admission control (bounded queues + `429`) and per-model request
    /// batching at the workers.
    pub serving: ServingConfig,
    /// Online arrival prediction (`optimus-predict`): the gateway feeds
    /// every admitted request into a per-model inter-arrival predictor,
    /// workers apply its adaptive keep-alive windows in place of the
    /// global `keep_alive`, and — when speculation is configured — idle
    /// workers transform a donor container into a forecast model *ahead*
    /// of its predicted arrival, gated by the cost model so a
    /// misprediction never wastes more than the cold start it tried to
    /// avoid. Speculation runs only on idle ticks (an empty inference
    /// queue), never ahead of real requests. `None` (the default)
    /// disables the layer entirely; [`optimus_predict::PredictConfig::inert`]
    /// observes arrivals without changing behavior.
    pub predict: Option<optimus_predict::PredictConfig>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            nodes: 2,
            capacity_per_node: 4,
            idle_threshold: 0.05,
            keep_alive: 30.0,
            store: Some(optimus_store::StoreConfig::default()),
            faults: None,
            serving: ServingConfig::default(),
            predict: None,
        }
    }
}
