//! The gateway: request entry point and worker lifecycle management.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, TrySendError};
use optimus_balance::failover_node;
use optimus_core::{GroupPlanner, ModelRepository, PlanArtifact};
use optimus_faults::{FaultInjector, FaultPlan, RequestFaults, RetryPolicy};
use optimus_llm::LlmConfig;
use optimus_model::tensor::Tensor;
use optimus_model::{InternKey, ModelGraph, ModelId};
use optimus_predict::Predictor;
use optimus_profile::CostModel;
use optimus_store::{model_chunks, ChunkId, ChunkRef, StoreStats};
use optimus_telemetry::{Counter, FanoutSink, Gauge, MetricsRegistry, MetricsSink, TelemetrySink};
use parking_lot::{Mutex, RwLock};

use crate::api::{DecodeResponse, GatewayConfig, InferenceResponse, ServeError};
use crate::predict::PredictShared;
use crate::worker::{run_worker, ControlItem, InferItem};

/// Channels and gauges of one live worker node.
///
/// Inference traffic rides the *bounded* `infer` channel — a full queue
/// is an admission rejection ([`ServeError::Overloaded`], HTTP `429`),
/// never an unbounded backlog. Fleet and fault events (crash, kill, warm
/// transfer) ride the unbounded `ctrl` channel so they cannot be dropped
/// by admission control.
struct NodeHandle {
    infer: crossbeam::channel::Sender<InferItem>,
    ctrl: crossbeam::channel::Sender<ControlItem>,
    /// `optimus_serve_queue_depth{node=..}`: incremented on enqueue; the
    /// worker decrements as it drains batches.
    depth: Gauge,
}

/// Builder: register models, then [`GatewayBuilder::spawn`].
pub struct GatewayBuilder {
    config: GatewayConfig,
    repo: ModelRepository,
    cost: CostModel,
    names: Vec<String>,
    metrics: Arc<MetricsRegistry>,
    extra_sinks: Vec<Arc<dyn TelemetrySink>>,
    plan_cache_path: Option<PathBuf>,
    predict_state_path: Option<PathBuf>,
    llm: LlmConfig,
}

impl GatewayBuilder {
    /// Persist the plan cache at `path` as a content-addressed
    /// [`PlanArtifact`], and warm-load from it on startup:
    /// [`GatewayBuilder::register_all`] probes the artifact by `(src
    /// content hash, dst content hash)` before invoking the planner, so a
    /// restarted gateway registers its catalog in seconds instead of
    /// re-planning O(N²) pairs. Incompatible artifacts (format version,
    /// cost-model calibration) are ignored and the catalog is re-planned
    /// cold; the file is rewritten after every bulk registration.
    /// Warm-load wall-clock lands in `optimus_plan_cache_load_seconds`,
    /// per-pair outcomes in `optimus_plan_cache_warm_total{result=...}`.
    pub fn plan_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.plan_cache_path = Some(path.into());
        self
    }

    /// Persist `optimus-predict` state at `path`: the predictor snapshot
    /// (learned inter-arrival histograms and adaptive keep-alive state)
    /// is written on gateway shutdown and restored on the next spawn, so
    /// windows learned over hours of traffic survive a restart instead
    /// of re-warming from the global default. Snapshots carry their
    /// `PredictConfig`; one taken under different knobs or a different
    /// catalog size is ignored and prediction starts cold. No-op unless
    /// [`GatewayConfig::predict`] is set.
    pub fn predict_state_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.predict_state_path = Some(path.into());
        self
    }

    /// Override the token-level decode cost model used by
    /// [`Gateway::submit_decode`] (iteration pricing, output-length
    /// distribution). The default [`LlmConfig`] matches the simulator's.
    ///
    /// # Panics
    ///
    /// When the config fails [`LlmConfig::validate`].
    pub fn llm_config(mut self, config: LlmConfig) -> Self {
        config.validate().expect("llm config must be valid");
        self.llm = config;
        self
    }

    /// The on-disk artifact at `plan_cache_path`, if present and
    /// compatible.
    fn load_plan_artifact(&self) -> Option<PlanArtifact> {
        let path = self.plan_cache_path.as_deref()?;
        let json = std::fs::read_to_string(path).ok()?;
        PlanArtifact::from_json(&json).ok()
    }

    /// Rewrite the plan-cache file from the repository's current plan
    /// cache. Entries already on disk that this process has not
    /// (re-)planned yet are kept ([`PlanArtifact::merge_from`]) —
    /// incremental registrations must not erase plans whose partner
    /// model simply has not been registered *yet*. Garbage collection
    /// against the catalog runs only with `gc` set, i.e. from
    /// [`GatewayBuilder::spawn`] once the catalog is final: entries
    /// whose (src, dst) hashes no longer appear in the registered
    /// catalog are dropped ([`PlanArtifact::gc`]), so the file cannot
    /// grow monotonically across deployments that rotate their
    /// catalogs. Best-effort: a full disk must not stop serving, and
    /// write-then-rename keeps a crash mid-write from truncating the
    /// old artifact.
    fn persist_plan_artifact(&self, gc: bool) {
        let disk = self.load_plan_artifact();
        self.persist_plan_artifact_with(disk.as_ref(), gc);
    }

    /// [`GatewayBuilder::persist_plan_artifact`] with the on-disk
    /// artifact already in hand — register paths load it once and reuse
    /// the same copy for both plan probing and the merge-on-write,
    /// instead of re-reading the (potentially O(catalog²)-entry) file
    /// from disk a second time per registration.
    fn persist_plan_artifact_with(&self, disk: Option<&PlanArtifact>, gc: bool) {
        let Some(path) = self.plan_cache_path.as_deref() else {
            return;
        };
        let mut artifact = self.repo.export_plan_artifact();
        if let Some(disk) = disk {
            artifact.merge_from(disk);
        }
        if gc {
            let dropped = artifact.gc(&self.repo.catalog_hashes());
            if dropped > 0 {
                self.metrics
                    .counter("optimus_plan_cache_gc_entries_total", &[])
                    .add(dropped as u64);
            }
        }
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, artifact.to_json()).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }

    /// Register a model; plans against previously registered models are
    /// computed and cached immediately (§4.4 Module 3). With
    /// [`GatewayBuilder::plan_cache_path`] set, the persisted artifact is
    /// probed for each (src, dst) pair before invoking the planner and
    /// rewritten afterwards — single-model registrations persist exactly
    /// like [`GatewayBuilder::register_all`], so a catalog grown one
    /// model at a time also survives restarts.
    pub fn register(mut self, model: ModelGraph) -> Self {
        self.names.push(model.name().to_string());
        let disk = self.load_plan_artifact();
        match &disk {
            Some(artifact) => {
                let t0 = Instant::now();
                self.repo
                    .register_with_artifact(model, &self.cost, artifact);
                self.metrics
                    .histogram("optimus_plan_cache_load_seconds", &[])
                    .observe(t0.elapsed().as_secs_f64());
            }
            None => self.repo.register(model, &self.cost),
        }
        self.persist_plan_artifact_with(disk.as_ref(), false);
        self
    }

    /// Register a whole catalog at once, fanning the offline pairwise
    /// planning sweep across a worker pool sized to the machine
    /// ([`ModelRepository::register_all`]). Produces exactly the same plan
    /// cache as chained [`GatewayBuilder::register`] calls, but the
    /// full-catalog warmup scales with available cores and the repository
    /// lock is held only to snapshot and install.
    pub fn register_all(mut self, models: Vec<ModelGraph>) -> Self {
        self.names
            .extend(models.iter().map(|m| m.name().to_string()));
        let disk = self.load_plan_artifact();
        match &disk {
            Some(artifact) => {
                let t0 = Instant::now();
                self.repo
                    .register_all_with_artifact(models, &self.cost, artifact);
                self.metrics
                    .histogram("optimus_plan_cache_load_seconds", &[])
                    .observe(t0.elapsed().as_secs_f64());
            }
            None => self.repo.register_all(models, &self.cost),
        }
        self.persist_plan_artifact_with(disk.as_ref(), false);
        self
    }

    /// Record all telemetry (request counters, phase histograms, plan-cache
    /// counters) into `registry` instead of the process-wide
    /// [`optimus_telemetry::global`] registry. The gateway's `/metrics`
    /// and `/stats` endpoints render this registry. Call before
    /// [`GatewayBuilder::register`] so planning latency recorded during
    /// registration lands in the same registry.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.repo.set_metrics_registry(&registry);
        self.metrics = registry;
        self
    }

    /// Additionally send every finished request trace to `sink` (e.g. an
    /// [`optimus_telemetry::JsonlSink`] for per-request trace lines).
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.extra_sinks.push(sink);
        self
    }

    /// Override the repository's runtime overrun policy
    /// ([`ModelRepository::with_overrun_policy`]): a plan whose measured
    /// execution exceeds `factor ×` the destination's observed
    /// scratch-load wall-clock `max_overruns` consecutive times is
    /// demoted to scratch loading. The in-process engine "loads" a model
    /// by cloning its graph — microseconds, where the latency *model*
    /// charges a disk fetch — so the default guard (3×, 2 strikes) can
    /// demote every plan; deployments that want the safeguard to judge
    /// the modeled cost only should widen the factor here. Call before
    /// [`GatewayBuilder::register`].
    pub fn overrun_policy(mut self, factor: f64, max_overruns: u32) -> Self {
        self.repo = self.repo.with_overrun_policy(factor, max_overruns);
        self
    }

    /// Start the worker threads and return the gateway handle.
    ///
    /// Functions are placed onto nodes round-robin in registration order;
    /// a production deployment would use `optimus-balance` here, which is
    /// exercised by the simulator instead. The routing table is a dense
    /// vector indexed by interned [`optimus_model::ModelId`] — the
    /// client-facing name is resolved to an id exactly once per request.
    pub fn spawn(self) -> Gateway {
        self.repo.set_metrics_registry(&self.metrics);
        // The catalog is final now: drop persisted plans whose endpoints
        // are no longer registered (counted in
        // `optimus_plan_cache_gc_entries_total`).
        self.persist_plan_artifact(true);
        let mut sinks: Vec<Arc<dyn TelemetrySink>> =
            vec![Arc::new(MetricsSink::new(self.metrics.clone()))];
        sinks.extend(self.extra_sinks);
        let sink: Arc<dyn TelemetrySink> = Arc::new(FanoutSink::new(sinks));
        let repo = Arc::new(self.repo);
        let store_stats: Arc<Mutex<HashMap<usize, StoreStats>>> =
            Arc::new(Mutex::new(HashMap::new()));
        // Dense id-indexed routing table (round-robin in registration
        // order, later registrations of the same name win — the same
        // placement the old name-keyed map produced). Computed before the
        // workers spawn so they can check which models are theirs when
        // deciding what to speculate on.
        let mut placement = vec![0usize; repo.model_count()];
        for (i, name) in self.names.iter().enumerate() {
            if let Some(id) = repo.model_id(name) {
                placement[id.index()] = i % self.config.nodes;
            }
        }
        let placement = Arc::new(placement);
        let predict = self.config.predict.map(|pc| {
            pc.validate().expect("predict config must be valid");
            let names: Vec<String> = (0..repo.model_count())
                .map(|i| {
                    repo.model_name_of(ModelId::from_index(i))
                        .unwrap_or_else(|| format!("model#{i}"))
                })
                .collect();
            // Restore the previous process's predictor snapshot, if one
            // was persisted and still matches: a snapshot taken under
            // different knobs or a different catalog size is ignored and
            // prediction starts cold.
            let restored = self
                .predict_state_path
                .as_deref()
                .and_then(|p| std::fs::read_to_string(p).ok())
                .and_then(|json| serde_json::from_str::<Predictor>(&json).ok())
                .filter(|p| p.config() == &pc && p.functions() == names.len());
            Arc::new(PredictShared::new(
                pc,
                self.config.keep_alive,
                &names,
                &self.metrics,
                restored,
            ))
        });
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for node_id in 0..self.config.nodes {
            let (node, handle) = spawn_node(
                node_id,
                self.config,
                repo.clone(),
                sink.clone(),
                self.metrics.clone(),
                store_stats.clone(),
                predict.clone(),
                placement.clone(),
            );
            handles.push(handle);
            senders.push(node);
        }
        let injector = self.config.faults.map(|spec| {
            spec.validate().expect("fault spec must be valid");
            FaultInjector::new(&FaultPlan::from_spec(spec))
        });
        let retry = self.config.faults.map(|s| s.retry).unwrap_or_default();
        let recovery = Duration::from_secs_f64(
            self.config
                .faults
                .map(|s| s.recovery_seconds)
                .unwrap_or(30.0)
                .max(0.0),
        );
        let now = Instant::now();
        let node_healthy = (0..self.config.nodes)
            .map(|n| {
                let g = self
                    .metrics
                    .gauge("optimus_node_healthy", &[("node", &n.to_string())]);
                g.set(1.0);
                g
            })
            .collect();
        let fleet_nodes = self.metrics.gauge("optimus_fleet_nodes", &[]);
        fleet_nodes.set(self.config.nodes as f64);
        Gateway {
            config: self.config,
            workers: RwLock::new(senders.into_iter().map(Some).collect()),
            handles: Mutex::new(handles),
            placement,
            repo,
            injector,
            retry,
            recovery,
            seq: AtomicU64::new(0),
            down_until: Mutex::new(vec![now; self.config.nodes]),
            node_healthy: Mutex::new(node_healthy),
            injected_crashes: self
                .metrics
                .counter("optimus_faults_injected_total", &[("kind", "node_crash")]),
            injected_kills: self.metrics.counter(
                "optimus_faults_injected_total",
                &[("kind", "container_kill")],
            ),
            injected_transform_failures: self.metrics.counter(
                "optimus_faults_injected_total",
                &[("kind", "transform_failure")],
            ),
            reroutes: self.metrics.counter("optimus_reroutes_total", &[]),
            retries: self.metrics.counter("optimus_fault_retries_total", &[]),
            rejected: self.metrics.counter("optimus_serve_rejected_total", &[]),
            fleet_nodes,
            scale_outs: self
                .metrics
                .counter("optimus_fleet_scale_events_total", &[("direction", "out")]),
            scale_ins: self
                .metrics
                .counter("optimus_fleet_scale_events_total", &[("direction", "in")]),
            multicast_peer_bytes: self
                .metrics
                .counter("optimus_fleet_multicast_bytes_total", &[("source", "peer")]),
            multicast_remote_bytes: self.metrics.counter(
                "optimus_fleet_multicast_bytes_total",
                &[("source", "remote")],
            ),
            metrics: self.metrics,
            sink,
            store_stats,
            predict,
            predict_state_path: self.predict_state_path,
            llm: self.llm,
            decode_seq: AtomicU64::new(0),
        }
    }
}

/// Spawn one worker node: its bounded inference queue, unbounded control
/// channel, queue-depth gauge and thread.
#[allow(clippy::too_many_arguments)]
fn spawn_node(
    node_id: usize,
    config: GatewayConfig,
    repo: Arc<ModelRepository>,
    sink: Arc<dyn TelemetrySink>,
    metrics: Arc<MetricsRegistry>,
    stats: Arc<Mutex<HashMap<usize, StoreStats>>>,
    predict: Option<Arc<PredictShared>>,
    placement: Arc<Vec<usize>>,
) -> (NodeHandle, JoinHandle<()>) {
    let (infer_tx, infer_rx) = bounded::<InferItem>(config.serving.queue_depth);
    let (ctrl_tx, ctrl_rx) = unbounded::<ControlItem>();
    let depth = metrics.gauge(
        "optimus_serve_queue_depth",
        &[("node", &node_id.to_string())],
    );
    let handle = std::thread::spawn(move || {
        run_worker(
            node_id, config, repo, infer_rx, ctrl_rx, sink, metrics, stats, predict, placement,
        )
    });
    (
        NodeHandle {
            infer: infer_tx,
            ctrl: ctrl_tx,
            depth,
        },
        handle,
    )
}

/// Handle to a running serving engine.
///
/// Cloning requests through the gateway is thread-safe; `shutdown` (or
/// drop) stops the workers.
pub struct Gateway {
    config: GatewayConfig,
    /// Worker node handles by node id; a drained slot is `None` (its
    /// worker exits once the queue empties) and is never routed to again.
    /// Slots are append-only so node ids stay stable across the fleet's
    /// life.
    workers: RwLock<Vec<Option<NodeHandle>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Node per model, indexed by `ModelId::index()` (shared with the
    /// workers, which consult it when choosing speculation targets).
    placement: Arc<Vec<usize>>,
    repo: Arc<ModelRepository>,
    /// Seeded per-request fault draws (`None`: faults disabled).
    injector: Option<FaultInjector>,
    retry: RetryPolicy,
    /// How long a crashed node stays unhealthy.
    recovery: Duration,
    /// Monotone request counter — the deterministic fault-draw index.
    seq: AtomicU64,
    /// Per-node health: the instant until which the node is down.
    down_until: Mutex<Vec<Instant>>,
    node_healthy: Mutex<Vec<Gauge>>,
    injected_crashes: Counter,
    injected_kills: Counter,
    injected_transform_failures: Counter,
    reroutes: Counter,
    retries: Counter,
    /// Requests rejected by admission control
    /// (`optimus_serve_rejected_total`): the routed node's bounded queue
    /// was full.
    rejected: Counter,
    /// Live node count (`optimus_fleet_nodes`).
    fleet_nodes: Gauge,
    scale_outs: Counter,
    scale_ins: Counter,
    multicast_peer_bytes: Counter,
    multicast_remote_bytes: Counter,
    metrics: Arc<MetricsRegistry>,
    sink: Arc<dyn TelemetrySink>,
    /// Latest weight-store snapshot per node, published by workers after
    /// every request (empty when the store is disabled).
    store_stats: Arc<Mutex<HashMap<usize, StoreStats>>>,
    /// Arrival predictor shared with the workers (`None`: prediction
    /// off). The gateway feeds it every admitted request.
    predict: Option<Arc<PredictShared>>,
    /// Where the predictor snapshot is persisted on shutdown (`None`:
    /// state is not persisted).
    predict_state_path: Option<PathBuf>,
    /// Token-level decode cost model applied by
    /// [`Gateway::submit_decode`].
    llm: LlmConfig,
    /// Monotone decode counter — the deterministic output-length draw
    /// index ([`LlmConfig::decode_tokens`]), separate from `seq` so
    /// decode traffic does not perturb fault draws.
    decode_seq: AtomicU64,
}

impl Gateway {
    /// Start building a gateway with the given configuration. Plans are
    /// computed with the linear-time group planner. Telemetry lands in the
    /// process-wide registry unless [`GatewayBuilder::metrics`] overrides
    /// it.
    pub fn builder(config: GatewayConfig) -> GatewayBuilder {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.capacity_per_node > 0, "need container capacity");
        config
            .serving
            .validate()
            .expect("serving config must be valid");
        GatewayBuilder {
            config,
            repo: ModelRepository::new(Box::new(GroupPlanner)),
            cost: CostModel::default(),
            names: Vec::new(),
            metrics: optimus_telemetry::global(),
            extra_sinks: Vec::new(),
            plan_cache_path: None,
            predict_state_path: None,
            llm: LlmConfig::default(),
        }
    }

    /// Run one inference synchronously.
    ///
    /// With faults enabled, the request first pays its deterministic
    /// fault draw: an injected node crash marks the home node unhealthy
    /// (wiping its containers and volatile store tiers), routing then
    /// fails over to a healthy node, and a node dying mid-request is
    /// retried with exponential backoff up to the spec's retry budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for unregistered models,
    /// [`ServeError::Inference`] when the input does not fit the model,
    /// [`ServeError::Unavailable`] when every node is unhealthy and all
    /// retries are exhausted, [`ServeError::Shutdown`] when the engine is
    /// stopping.
    pub fn infer(&self, model: &str, input: Tensor) -> Result<InferenceResponse, ServeError> {
        let (model_id, fx) = self.admit(model)?;
        let max_attempts = self.retry.max_attempts.max(1);
        let mut last_err = ServeError::Unavailable("no attempt made".to_string());
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.retries.inc();
                let backoff = self.retry.backoff_before(attempt);
                if backoff > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(backoff));
                }
            }
            match self.enqueue_once(
                model_id,
                &input,
                fx.transform_failure && attempt == 0,
                fx.container_kill && attempt == 0,
            ) {
                // Admission rejection is immediate: the client must back
                // off, retrying the same full queue helps nobody.
                Err(e @ ServeError::Overloaded(_)) => return Err(e),
                Err(ServeError::Shutdown) => return Err(ServeError::Shutdown),
                Err(e) => last_err = e,
                Ok((node, reply_rx)) => match reply_rx.recv() {
                    Ok(result) => return result,
                    // The worker died mid-request: mark the node down and
                    // try a different one after backing off.
                    Err(_) => {
                        self.mark_down(node);
                        last_err = ServeError::Unavailable(format!("node {node} did not reply"));
                    }
                },
            }
        }
        Err(last_err)
    }

    /// Resolve the model, draw this request's deterministic faults and
    /// apply the gateway-side ones (crash marks the home node down).
    fn admit(&self, model: &str) -> Result<(ModelId, RequestFaults), ServeError> {
        let model_id = self
            .repo
            .model_id(model)
            .filter(|id| id.index() < self.placement.len())
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        if let Some(ps) = &self.predict {
            ps.observe(model_id.index());
        }
        let fx = match &self.injector {
            Some(inj) => inj.for_request(self.seq.fetch_add(1, Ordering::Relaxed)),
            None => RequestFaults::none(),
        };
        if fx.node_crash {
            let home = self.placement[model_id.index()];
            self.injected_crashes.inc();
            self.mark_down(home);
            if let Some(Some(h)) = self.workers.read().get(home) {
                let _ = h.ctrl.send(ControlItem::Crash);
            }
        }
        if fx.transform_failure {
            self.injected_transform_failures.inc();
        }
        Ok((model_id, fx))
    }

    /// Route one attempt and enqueue it on the routed node's bounded
    /// queue. Returns the node id and the reply channel.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unavailable`] when every node is down,
    /// [`ServeError::Overloaded`] when the routed node's queue is full
    /// (counted in `optimus_serve_rejected_total`),
    /// [`ServeError::Shutdown`] when the engine is stopping.
    fn enqueue_once(
        &self,
        model_id: ModelId,
        input: &Tensor,
        fail_transform: bool,
        kill: bool,
    ) -> Result<(usize, Receiver<Result<InferenceResponse, ServeError>>), ServeError> {
        let home = self.placement[model_id.index()];
        let workers = self.workers.read();
        // Down or drained nodes are skipped; `workers` is read-locked so
        // the fleet cannot change shape mid-decision.
        let healthy: Vec<bool> = {
            let now = Instant::now();
            let down = self.down_until.lock();
            (0..workers.len())
                .map(|n| workers[n].is_some() && down[n] <= now)
                .collect()
        };
        // Degraded routing falls over to the lowest-indexed healthy node;
        // queue pressure on the home node is an admission rejection, not
        // a reroute, so placement locality is preserved.
        let Some(node) = failover_node(home, workers.len(), |n| healthy[n], |_| 0.0) else {
            return Err(ServeError::Unavailable(format!(
                "all {} nodes are marked down",
                workers.len()
            )));
        };
        if node != home {
            self.reroutes.inc();
        }
        let handle = workers[node].as_ref().expect("routed node is live");
        if kill {
            self.injected_kills.inc();
            let _ = handle.ctrl.send(ControlItem::Kill);
        }
        let (reply_tx, reply_rx) = bounded(1);
        let item = InferItem {
            model_id,
            input: input.clone(),
            enqueued: Instant::now(),
            fail_transform,
            reply: reply_tx,
        };
        match handle.infer.try_send(item) {
            Ok(()) => {
                handle.depth.add(1.0);
                Ok((node, reply_rx))
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.inc();
                Err(ServeError::Overloaded(format!(
                    "node {node} queue is at its {}-request bound",
                    self.config.serving.queue_depth
                )))
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Submit a request without blocking on its completion: the inference
    /// is enqueued exactly like [`Gateway::infer`] (same fault draws, same
    /// routing, same admission control) but the caller gets a
    /// [`PendingInference`] to poll instead of the finished response — the
    /// HTTP front end parks the connection on it so serving threads never
    /// block on a worker queue.
    ///
    /// # Errors
    ///
    /// The same errors as [`Gateway::infer`]; [`ServeError::Overloaded`]
    /// and [`ServeError::UnknownModel`] surface immediately.
    pub fn submit(&self, model: &str, input: Tensor) -> Result<PendingInference, ServeError> {
        let (model_id, fx) = self.admit(model)?;
        let (node, rx) =
            self.enqueue_once(model_id, &input, fx.transform_failure, fx.container_kill)?;
        Ok(PendingInference {
            model_id,
            input,
            attempt: 0,
            state: PendingState::Waiting { node, rx },
        })
    }

    /// Drive a [`PendingInference`] forward without blocking. Returns
    /// `Some(result)` once the request finished (successfully or not);
    /// `None` while it is still queued, executing, or backing off before
    /// a retry. A worker that dies mid-request is marked down and the
    /// request is re-routed with the same bounded retry budget as
    /// [`Gateway::infer`], but the backoff is waited out across `poll`
    /// calls instead of sleeping.
    pub fn poll(&self, pending: &mut PendingInference) -> Option<InferenceResult> {
        let max_attempts = self.retry.max_attempts.max(1);
        loop {
            match &mut pending.state {
                PendingState::Waiting { node, rx } => match rx.recv_timeout(Duration::ZERO) {
                    Ok(result) => return Some(result),
                    Err(RecvTimeoutError::Timeout) => return None,
                    Err(RecvTimeoutError::Disconnected) => {
                        let node = *node;
                        self.mark_down(node);
                        pending.attempt += 1;
                        if pending.attempt >= max_attempts {
                            return Some(Err(ServeError::Unavailable(format!(
                                "node {node} did not reply"
                            ))));
                        }
                        self.retries.inc();
                        let backoff = self.retry.backoff_before(pending.attempt).max(0.0);
                        pending.state = PendingState::Backoff {
                            until: Instant::now() + Duration::from_secs_f64(backoff),
                        };
                    }
                },
                PendingState::Backoff { until } => {
                    if Instant::now() < *until {
                        return None;
                    }
                    match self.enqueue_once(pending.model_id, &pending.input, false, false) {
                        Ok((node, rx)) => pending.state = PendingState::Waiting { node, rx },
                        Err(e @ ServeError::Overloaded(_)) | Err(e @ ServeError::Shutdown) => {
                            return Some(Err(e))
                        }
                        Err(e) => {
                            pending.attempt += 1;
                            if pending.attempt >= max_attempts {
                                return Some(Err(e));
                            }
                            self.retries.inc();
                            let backoff = self.retry.backoff_before(pending.attempt).max(0.0);
                            pending.state = PendingState::Backoff {
                                until: Instant::now() + Duration::from_secs_f64(backoff),
                            };
                        }
                    }
                }
            }
        }
    }

    /// Submit a decode loop: token-level LLM serving behind the existing
    /// submit/poll machinery. The request is admitted, routed and served
    /// exactly like [`Gateway::submit`] — the real forward pass it runs
    /// is the loop's *prefill* — while the output length is drawn
    /// deterministically from the [`LlmConfig`]
    /// ([`GatewayBuilder::llm_config`]) and the decode tail is priced by
    /// the same iteration cost model the simulator uses. Poll the result
    /// with [`Gateway::poll_decode`].
    ///
    /// # Errors
    ///
    /// The same errors as [`Gateway::submit`].
    pub fn submit_decode(&self, model: &str, input: Tensor) -> Result<PendingDecode, ServeError> {
        let model_bytes = self
            .repo
            .model(model)
            .map(|m| m.byte_size() as u64)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let inner = self.submit(model, input)?;
        // Draw the output length only once the submit has been accepted:
        // a transient rejection (e.g. queue-full) must not consume a
        // sequence number, or it would shift every later request's
        // deterministic length draw and break run-to-run reproducibility.
        let tokens = self
            .llm
            .decode_tokens(self.decode_seq.fetch_add(1, Ordering::Relaxed));
        Ok(PendingDecode {
            inner,
            tokens,
            model_bytes,
        })
    }

    /// Drive a [`PendingDecode`] forward without blocking, with the same
    /// retry semantics as [`Gateway::poll`]. Once the prefill finishes,
    /// the decode tail is priced at the batch size the prefill was
    /// actually served in (a same-model batch shares each iteration's
    /// weight sweep, capped at the config's `max_batch`).
    pub fn poll_decode(
        &self,
        pending: &mut PendingDecode,
    ) -> Option<Result<DecodeResponse, ServeError>> {
        let result = self.poll(&mut pending.inner)?;
        Some(result.map(|prefill| {
            let batch = prefill.batch_size.clamp(1, self.llm.max_batch);
            let ttft = prefill.wait_seconds + prefill.startup_seconds + prefill.compute_seconds;
            let decode_iters = pending.tokens.saturating_sub(1);
            let decode_seconds =
                decode_iters as f64 * self.llm.iter_seconds(pending.model_bytes, batch, 0);
            DecodeResponse {
                prefill,
                tokens: pending.tokens as u64,
                ttft_seconds: ttft,
                decode_seconds,
            }
        }))
    }

    fn mark_down(&self, node: usize) {
        self.down_until.lock()[node] = Instant::now() + self.recovery;
        self.node_healthy.lock()[node].set(0.0);
    }

    /// Current per-node health (true = accepting requests). Crashed nodes
    /// recover after the fault spec's `recovery_seconds`; drained nodes
    /// stay false. The `optimus_node_healthy` gauges are refreshed as a
    /// side effect.
    pub fn healthy_nodes(&self) -> Vec<bool> {
        let now = Instant::now();
        let workers = self.workers.read();
        let down = self.down_until.lock();
        let gauges = self.node_healthy.lock();
        down.iter()
            .enumerate()
            .map(|(n, &until)| {
                let healthy = until <= now && workers[n].is_some();
                gauges[n].set(if healthy { 1.0 } else { 0.0 });
                healthy
            })
            .collect()
    }

    /// Number of live (non-drained) worker nodes.
    pub fn fleet_size(&self) -> usize {
        self.workers.read().iter().filter(|w| w.is_some()).count()
    }

    /// Elastically add a worker node to the serving fleet and return its
    /// id. The node spawns with an empty container pool; when the weight
    /// store is enabled, the registered catalog's chunk set is shipped to
    /// it ahead of traffic (peer-sourced when live nodes hold replicas,
    /// an origin fetch for a fresh fleet — mirroring the simulator's
    /// multicast model), counted in
    /// `optimus_fleet_multicast_bytes_total`. The node joins the
    /// failover ring immediately.
    pub fn register_node(&self) -> usize {
        let mut workers = self.workers.write();
        let node_id = workers.len();
        let (node, handle) = spawn_node(
            node_id,
            self.config,
            self.repo.clone(),
            self.sink.clone(),
            self.metrics.clone(),
            self.store_stats.clone(),
            self.predict.clone(),
            self.placement.clone(),
        );
        self.handles.lock().push(handle);
        if let Some(sc) = self.config.store {
            // Warm transfer: the full registered chunk set, deduplicated
            // by content id so shared tensors ship once.
            let mut seen: std::collections::HashSet<ChunkId> = std::collections::HashSet::new();
            let mut chunks: Vec<ChunkRef> = Vec::new();
            for name in self.repo.model_names() {
                if let Some(m) = self.repo.model(&name) {
                    for c in model_chunks(&m, sc.chunk_bytes) {
                        if seen.insert(c.id) {
                            chunks.push(c);
                        }
                    }
                }
            }
            // The persisted plan cache rides the same warm transfer: the
            // joiner receives the artifact's content-addressed chunks
            // alongside the catalog's weights, so it can serve its first
            // transform without re-planning.
            let artifact = self.repo.export_plan_artifact();
            if !artifact.is_empty() {
                for c in artifact.chunks(sc.chunk_bytes) {
                    if seen.insert(c.id) {
                        chunks.push(c);
                    }
                }
            }
            let bytes: u64 = chunks.iter().map(|c| c.bytes).sum();
            if workers.iter().any(|w| w.is_some()) {
                self.multicast_peer_bytes.add(bytes);
            } else {
                self.multicast_remote_bytes.add(bytes);
            }
            let _ = node.ctrl.send(ControlItem::Warm(chunks));
        }
        workers.push(Some(node));
        {
            let mut down = self.down_until.lock();
            down.push(Instant::now());
            let g = self
                .metrics
                .gauge("optimus_node_healthy", &[("node", &node_id.to_string())]);
            g.set(1.0);
            self.node_healthy.lock().push(g);
        }
        self.scale_outs.inc();
        self.fleet_nodes
            .set(workers.iter().filter(|w| w.is_some()).count() as f64);
        node_id
    }

    /// Drain an elastically added node: routing stops immediately and its
    /// worker thread exits once queued work completes. The initial fleet
    /// (ids below the configured node count) is the scaling floor and
    /// cannot be drained. Returns whether the node was live.
    pub fn drain_node(&self, node: usize) -> bool {
        if node < self.config.nodes {
            return false;
        }
        let mut workers = self.workers.write();
        let Some(slot) = workers.get_mut(node) else {
            return false;
        };
        if slot.take().is_none() {
            return false;
        }
        self.node_healthy.lock()[node].set(0.0);
        self.scale_ins.inc();
        self.fleet_nodes
            .set(workers.iter().filter(|w| w.is_some()).count() as f64);
        true
    }

    /// Registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        self.repo.model_names()
    }

    /// Number of models whose forecast arrival band intersects the next
    /// `horizon_seconds` — the predictive demand signal an external
    /// autoscaler can add to observed queue pressure before calling
    /// [`Gateway::register_node`]. Always 0 with prediction off.
    pub fn predicted_demand(&self, horizon_seconds: f64) -> usize {
        self.predict
            .as_ref()
            .map_or(0, |ps| ps.predicted_demand(horizon_seconds))
    }

    /// The keep-alive window currently applied to `model`'s containers:
    /// the configured global `keep_alive` until adaptive keep-alive has
    /// enough history (or when prediction is off).
    pub fn keep_alive_for(&self, model: &str) -> Option<f64> {
        let id = self.repo.model_id(model)?;
        Some(match &self.predict {
            Some(ps) => ps.window(id.index()),
            None => self.config.keep_alive,
        })
    }

    /// The registry backing this gateway's telemetry (and its `/metrics`
    /// endpoint).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Per-node weight-store snapshots, sorted by node id. Empty when
    /// [`GatewayConfig::store`] is `None`.
    pub fn store_stats_by_node(&self) -> Vec<(usize, StoreStats)> {
        let mut v: Vec<(usize, StoreStats)> = self
            .store_stats
            .lock()
            .iter()
            .map(|(node, stats)| (*node, *stats))
            .collect();
        v.sort_by_key(|(node, _)| *node);
        v
    }

    /// Fleet-wide weight-store statistics (all nodes merged), or `None`
    /// when the store is disabled.
    pub fn store_stats(&self) -> Option<StoreStats> {
        let per_node = self.store_stats.lock();
        if per_node.is_empty() {
            return None;
        }
        let mut total = StoreStats::default();
        for stats in per_node.values() {
            total.merge(stats);
        }
        Some(total)
    }

    /// Stop the workers and wait for them to finish outstanding requests.
    pub fn shutdown(self) {
        drop(self); // Drop closes the channels and joins the workers.
    }
}

/// The outcome of one inference: the response, or a serving error.
pub type InferenceResult = Result<InferenceResponse, ServeError>;

/// An in-flight request created by [`Gateway::submit`] and driven by
/// [`Gateway::poll`]. Holds the reply channel of the attempt currently
/// enqueued (or the instant a retry backoff expires) plus everything
/// needed to re-enqueue on another node if the serving worker dies.
pub struct PendingInference {
    model_id: ModelId,
    input: Tensor,
    /// Attempts consumed so far (bounded by the retry policy).
    attempt: u32,
    state: PendingState,
}

enum PendingState {
    /// Enqueued on `node`; the worker replies on `rx`.
    Waiting {
        node: usize,
        rx: Receiver<InferenceResult>,
    },
    /// Waiting out a retry backoff without blocking the caller.
    Backoff { until: Instant },
}

/// An in-flight decode loop created by [`Gateway::submit_decode`] and
/// driven by [`Gateway::poll_decode`]: the prefill rides an ordinary
/// [`PendingInference`], plus the already-drawn output length and the
/// model size the decode tail is priced from.
pub struct PendingDecode {
    inner: PendingInference,
    /// Output tokens drawn for this loop at submission.
    tokens: usize,
    /// Registered model weight bytes (each decode iteration streams them
    /// once).
    model_bytes: u64,
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.workers.write().clear(); // closes the channels
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
        self.sink.flush();
        // Persist the predictor snapshot after the workers have joined,
        // so it includes every admitted request. Best-effort, with the
        // same write-then-rename discipline as the plan cache.
        if let (Some(path), Some(ps)) = (self.predict_state_path.as_deref(), &self.predict) {
            let json = ps.export_json();
            if !json.is_empty() {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                let tmp = path.with_extension("tmp");
                if std::fs::write(&tmp, json).is_ok() {
                    let _ = std::fs::rename(&tmp, path);
                }
            }
        }
    }
}
