//! The gateway: request entry point and worker lifecycle management.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Sender};
use optimus_core::{GroupPlanner, ModelRepository};
use optimus_model::tensor::Tensor;
use optimus_model::ModelGraph;
use optimus_profile::CostModel;
use optimus_store::StoreStats;
use optimus_telemetry::{FanoutSink, MetricsRegistry, MetricsSink, TelemetrySink};
use parking_lot::Mutex;

use crate::api::{GatewayConfig, InferenceResponse, ServeError};
use crate::worker::{run_worker, WorkItem};

/// Builder: register models, then [`GatewayBuilder::spawn`].
pub struct GatewayBuilder {
    config: GatewayConfig,
    repo: ModelRepository,
    cost: CostModel,
    names: Vec<String>,
    metrics: Arc<MetricsRegistry>,
    extra_sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl GatewayBuilder {
    /// Register a model; plans against previously registered models are
    /// computed and cached immediately (§4.4 Module 3).
    pub fn register(self, model: ModelGraph) -> Self {
        let mut names = self.names;
        names.push(model.name().to_string());
        self.repo.register(model, &self.cost);
        GatewayBuilder { names, ..self }
    }

    /// Register a whole catalog at once, fanning the offline pairwise
    /// planning sweep across a worker pool sized to the machine
    /// ([`ModelRepository::register_all`]). Produces exactly the same plan
    /// cache as chained [`GatewayBuilder::register`] calls, but the
    /// full-catalog warmup scales with available cores and the repository
    /// lock is held only to snapshot and install.
    pub fn register_all(self, models: Vec<ModelGraph>) -> Self {
        let mut names = self.names;
        names.extend(models.iter().map(|m| m.name().to_string()));
        self.repo.register_all(models, &self.cost);
        GatewayBuilder { names, ..self }
    }

    /// Record all telemetry (request counters, phase histograms, plan-cache
    /// counters) into `registry` instead of the process-wide
    /// [`optimus_telemetry::global`] registry. The gateway's `/metrics`
    /// and `/stats` endpoints render this registry. Call before
    /// [`GatewayBuilder::register`] so planning latency recorded during
    /// registration lands in the same registry.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.repo.set_metrics_registry(&registry);
        self.metrics = registry;
        self
    }

    /// Additionally send every finished request trace to `sink` (e.g. an
    /// [`optimus_telemetry::JsonlSink`] for per-request trace lines).
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.extra_sinks.push(sink);
        self
    }

    /// Start the worker threads and return the gateway handle.
    ///
    /// Functions are placed onto nodes round-robin in registration order;
    /// a production deployment would use `optimus-balance` here, which is
    /// exercised by the simulator instead.
    pub fn spawn(self) -> Gateway {
        self.repo.set_metrics_registry(&self.metrics);
        let mut sinks: Vec<Arc<dyn TelemetrySink>> =
            vec![Arc::new(MetricsSink::new(self.metrics.clone()))];
        sinks.extend(self.extra_sinks);
        let sink: Arc<dyn TelemetrySink> = Arc::new(FanoutSink::new(sinks));
        let repo = Arc::new(self.repo);
        let store_stats: Arc<Mutex<HashMap<usize, StoreStats>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for node_id in 0..self.config.nodes {
            let (tx, rx) = unbounded::<WorkItem>();
            let repo = repo.clone();
            let config = self.config;
            let sink = sink.clone();
            let metrics = self.metrics.clone();
            let stats = store_stats.clone();
            handles.push(std::thread::spawn(move || {
                run_worker(node_id, config, repo, rx, sink, metrics, stats)
            }));
            senders.push(tx);
        }
        let placement = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i % self.config.nodes))
            .collect();
        Gateway {
            senders,
            handles,
            placement,
            metrics: self.metrics,
            sink,
            store_stats,
        }
    }
}

/// Handle to a running serving engine.
///
/// Cloning requests through the gateway is thread-safe; `shutdown` (or
/// drop) stops the workers.
pub struct Gateway {
    senders: Vec<Sender<WorkItem>>,
    handles: Vec<JoinHandle<()>>,
    placement: HashMap<String, usize>,
    metrics: Arc<MetricsRegistry>,
    sink: Arc<dyn TelemetrySink>,
    /// Latest weight-store snapshot per node, published by workers after
    /// every request (empty when the store is disabled).
    store_stats: Arc<Mutex<HashMap<usize, StoreStats>>>,
}

impl Gateway {
    /// Start building a gateway with the given configuration. Plans are
    /// computed with the linear-time group planner. Telemetry lands in the
    /// process-wide registry unless [`GatewayBuilder::metrics`] overrides
    /// it.
    pub fn builder(config: GatewayConfig) -> GatewayBuilder {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.capacity_per_node > 0, "need container capacity");
        GatewayBuilder {
            config,
            repo: ModelRepository::new(Box::new(GroupPlanner)),
            cost: CostModel::default(),
            names: Vec::new(),
            metrics: optimus_telemetry::global(),
            extra_sinks: Vec::new(),
        }
    }

    /// Run one inference synchronously.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for unregistered models,
    /// [`ServeError::Inference`] when the input does not fit the model,
    /// [`ServeError::Shutdown`] when the engine is stopping.
    pub fn infer(&self, model: &str, input: Tensor) -> Result<InferenceResponse, ServeError> {
        let node = *self
            .placement
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let (reply_tx, reply_rx) = bounded(1);
        let item = WorkItem {
            model: model.to_string(),
            input,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        self.senders[node]
            .send(item)
            .map_err(|_| ServeError::Shutdown)?;
        reply_rx.recv().map_err(|_| ServeError::Shutdown)?
    }

    /// Registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut v: Vec<String> = self.placement.keys().cloned().collect();
        v.sort();
        v
    }

    /// The registry backing this gateway's telemetry (and its `/metrics`
    /// endpoint).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Per-node weight-store snapshots, sorted by node id. Empty when
    /// [`GatewayConfig::store`] is `None`.
    pub fn store_stats_by_node(&self) -> Vec<(usize, StoreStats)> {
        let mut v: Vec<(usize, StoreStats)> = self
            .store_stats
            .lock()
            .iter()
            .map(|(node, stats)| (*node, *stats))
            .collect();
        v.sort_by_key(|(node, _)| *node);
        v
    }

    /// Fleet-wide weight-store statistics (all nodes merged), or `None`
    /// when the store is disabled.
    pub fn store_stats(&self) -> Option<StoreStats> {
        let per_node = self.store_stats.lock();
        if per_node.is_empty() {
            return None;
        }
        let mut total = StoreStats::default();
        for stats in per_node.values() {
            total.merge(stats);
        }
        Some(total)
    }

    /// Stop the workers and wait for them to finish outstanding requests.
    pub fn shutdown(mut self) {
        self.senders.clear(); // closes the channels
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.sink.flush();
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.sink.flush();
    }
}
