//! Live arrival prediction shared between the gateway and its workers.
//!
//! The gateway feeds every admitted request into an
//! [`optimus_predict::Predictor`] on a virtual clock (seconds since
//! spawn). Workers read the resulting per-model keep-alive windows
//! lock-free on every eviction sweep, and — on idle ticks, with
//! speculation configured — ask the predictor which forecast arrivals
//! are due so they can transform an idle donor ahead of time. Outcomes
//! are exported as the `optimus_predict_*` metric families on
//! `/metrics` and `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use optimus_predict::{PredictConfig, Predictor, SpeculationConfig};
use optimus_telemetry::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;

/// Predictor state shared by the gateway (writer) and workers (readers
/// and speculation actuators).
pub(crate) struct PredictShared {
    config: PredictConfig,
    /// The fixed window adaptive keep-alive falls back to below
    /// `min_history` (the gateway's `keep_alive`).
    default_keep_alive: f64,
    /// Virtual clock origin; the predictor sees seconds since spawn.
    epoch: Instant,
    predictor: Mutex<Predictor>,
    /// Current keep-alive window per model, stored as `f64` bits so
    /// workers read it without taking the predictor lock.
    windows: Vec<AtomicU64>,
    /// `optimus_predict_keep_alive_seconds{model=..}` mirrors `windows`.
    window_gauges: Vec<Gauge>,
    pub observed: Counter,
    pub speculations: Counter,
    pub spec_hits: Counter,
    pub spec_mispredictions: Counter,
    pub spec_skipped: Counter,
}

impl PredictShared {
    /// `model_names` is dense by interned id index; the catalog is fixed
    /// once the gateway spawns. `restored` seeds the predictor with a
    /// snapshot from a previous process (see
    /// `GatewayBuilder::predict_state_path`): learned inter-arrival
    /// histograms apply immediately, so the adaptive keep-alive windows
    /// computed from them do too — the caller must have checked the
    /// snapshot against the current config and catalog size.
    pub fn new(
        config: PredictConfig,
        default_keep_alive: f64,
        model_names: &[String],
        metrics: &MetricsRegistry,
        restored: Option<Predictor>,
    ) -> Self {
        let predictor = restored.unwrap_or_else(|| Predictor::new(config, model_names.len()));
        let windows: Vec<AtomicU64> = model_names
            .iter()
            .enumerate()
            .map(|(idx, _)| AtomicU64::new(predictor.keep_alive(idx, default_keep_alive).to_bits()))
            .collect();
        let window_gauges: Vec<Gauge> = model_names
            .iter()
            .map(|name| metrics.gauge("optimus_predict_keep_alive_seconds", &[("model", name)]))
            .collect();
        for (g, w) in window_gauges.iter().zip(&windows) {
            g.set(f64::from_bits(w.load(Ordering::Relaxed)));
        }
        PredictShared {
            config,
            default_keep_alive,
            epoch: Instant::now(),
            predictor: Mutex::new(predictor),
            windows,
            window_gauges,
            observed: metrics.counter("optimus_predict_observed_total", &[]),
            speculations: metrics.counter("optimus_predict_speculations_total", &[]),
            spec_hits: metrics.counter("optimus_predict_spec_hits_total", &[]),
            spec_mispredictions: metrics.counter("optimus_predict_spec_mispredictions_total", &[]),
            spec_skipped: metrics.counter("optimus_predict_spec_skipped_total", &[]),
        }
    }

    /// Seconds since the gateway spawned — the predictor's clock.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Record an admitted arrival for the model at dense index `idx` and
    /// refresh its keep-alive window.
    pub fn observe(&self, idx: usize) {
        let now = self.now();
        let window = {
            let mut p = self.predictor.lock();
            p.observe(idx, now);
            p.keep_alive(idx, self.default_keep_alive)
        };
        if let Some(w) = self.windows.get(idx) {
            w.store(window.to_bits(), Ordering::Relaxed);
            self.window_gauges[idx].set(window);
        }
        self.observed.inc();
    }

    /// The keep-alive window currently applied to `idx`'s containers
    /// (the gateway default until history accrues or when adaptive
    /// keep-alive is off).
    pub fn window(&self, idx: usize) -> f64 {
        self.windows.get(idx).map_or(self.default_keep_alive, |w| {
            f64::from_bits(w.load(Ordering::Relaxed))
        })
    }

    /// The speculation knobs, `None` when speculation is off.
    pub fn speculation(&self) -> Option<SpeculationConfig> {
        self.config.speculation
    }

    /// Forecast confidence for `idx`, `None` below `min_history`.
    pub fn confidence(&self, idx: usize) -> Option<f64> {
        self.predictor.lock().forecast(idx).map(|f| f.confidence)
    }

    /// Models whose predicted arrival band is due now, filtered by
    /// `accept` (placement + warm state); each fires at most once per
    /// observed arrival, and rejected candidates stay armed for other
    /// nodes.
    pub fn due(&self, accept: impl FnMut(usize) -> bool) -> Vec<usize> {
        let now = self.now();
        let mut out = Vec::new();
        self.predictor
            .lock()
            .due_speculations(now, accept, &mut out);
        out
    }

    /// Number of models whose forecast band intersects
    /// `[now, now + horizon]` — the predictive demand signal exposed to
    /// autoscalers via `Gateway::predicted_demand`.
    pub fn predicted_demand(&self, horizon: f64) -> usize {
        self.predictor
            .lock()
            .predicted_arrivals(self.now(), horizon)
    }

    /// Serialize the current predictor state for persistence. The
    /// snapshot carries its own `PredictConfig`, so a future process can
    /// reject it if the knobs changed. Last-arrival instants are in this
    /// process's virtual clock; on restore they read as "long ago", which
    /// only delays the first speculation — the learned histograms (the
    /// expensive part) carry over intact.
    pub fn export_json(&self) -> String {
        serde_json::to_string(&*self.predictor.lock()).unwrap_or_default()
    }
}
