//! Incremental HTTP/1.1 request parser for the pooled front end.
//!
//! Operates on a connection's accumulated byte buffer: bytes arrive
//! fragmented arbitrarily across `read()` calls (a request line split
//! mid-token, a header split mid-name, a body trickling in), and the
//! parser either produces one complete request with the number of bytes
//! it consumed, asks for more bytes, or rejects the connection with a
//! definite protocol error. It is pure — it never blocks and never
//! reads — which makes it property-testable over every split of a
//! request stream ([`parse_request`] on a prefix can only return
//! [`ParseOutcome::Incomplete`] or the same outcome as the full buffer).
//!
//! Hard limits are enforced *before* buffering unboundedly: headers
//! larger than [`ParserLimits::max_header_bytes`] are rejected with
//! `431` even when the terminating blank line never arrives, and a
//! `Content-Length` above [`ParserLimits::max_body_bytes`] is rejected
//! with `413` from the header alone, before any body byte is read.

/// Byte budgets enforced during parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserLimits {
    /// Largest allowed request head (request line + headers + blank
    /// line); beyond this the request is rejected with `431`.
    pub max_header_bytes: usize,
    /// Largest allowed `Content-Length`; beyond this the request is
    /// rejected with `413` without waiting for the body.
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// One fully received request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path.
    pub path: String,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection persists after this exchange: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Result of attempting to parse one request from the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer holds a prefix of a valid request; read more bytes.
    Incomplete,
    /// One complete request; the first `consumed` bytes of the buffer
    /// belong to it (drain them before parsing the next pipelined
    /// request).
    Request {
        request: ParsedRequest,
        consumed: usize,
    },
    /// Protocol violation; respond with `status` and close the
    /// connection (request framing can no longer be trusted).
    Error {
        status: &'static str,
        message: &'static str,
    },
}

fn proto_error(status: &'static str, message: &'static str) -> ParseOutcome {
    ParseOutcome::Error { status, message }
}

/// Split the head (request line + header lines) off the buffer. Lines
/// end at `\n` with an optional preceding `\r`, so both CRLF and bare-LF
/// clients parse; the head ends at the first empty line. Returns the
/// header lines and the body start offset, or `None` when the blank
/// line has not arrived yet.
fn split_head(buf: &[u8]) -> Option<(Vec<&[u8]>, usize)> {
    let mut lines = Vec::new();
    let mut start = 0usize;
    for (i, &b) in buf.iter().enumerate() {
        if b == b'\n' {
            let mut line = &buf[start..i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.is_empty() {
                return Some((lines, i + 1));
            }
            lines.push(line);
            start = i + 1;
        }
    }
    None
}

/// Try to parse one request from the front of `buf`.
///
/// The parse is incremental-safe: for any split of a byte stream, the
/// outcome on a prefix is either `Incomplete` or identical to the
/// outcome on the full stream — partial reads can never change what a
/// request means, only delay it.
pub fn parse_request(buf: &[u8], limits: &ParserLimits) -> ParseOutcome {
    let Some((lines, body_start)) = split_head(buf) else {
        if buf.len() > limits.max_header_bytes {
            return proto_error(
                "431 Request Header Fields Too Large",
                "request head exceeds the configured limit",
            );
        }
        return ParseOutcome::Incomplete;
    };
    if body_start > limits.max_header_bytes {
        return proto_error(
            "431 Request Header Fields Too Large",
            "request head exceeds the configured limit",
        );
    }
    let Some(request_line) = lines.first() else {
        return proto_error("400 Bad Request", "empty request line");
    };
    let Ok(request_line) = std::str::from_utf8(request_line) else {
        return proto_error("400 Bad Request", "request line is not valid UTF-8");
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() {
        return proto_error("400 Bad Request", "malformed request line");
    }
    // A missing version is tolerated (curl-piped-to-netcat style) and
    // treated as HTTP/1.1.
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut keep_alive = !version.eq_ignore_ascii_case("HTTP/1.0");

    let mut content_length: Option<usize> = None;
    for line in &lines[1..] {
        let Ok(line) = std::str::from_utf8(line) else {
            return proto_error("400 Bad Request", "header line is not valid UTF-8");
        };
        let Some((name, value)) = line.split_once(':') else {
            return proto_error("400 Bad Request", "header line without a colon");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let Ok(v) = value.parse::<usize>() else {
                    return proto_error("400 Bad Request", "unparseable content-length");
                };
                // Duplicate Content-Length headers with conflicting
                // values are a request-smuggling vector; reject them.
                if content_length.is_some_and(|prev| prev != v) {
                    return proto_error("400 Bad Request", "conflicting content-length headers");
                }
                content_length = Some(v);
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.split(',').any(|t| t.trim() == "close") {
                    keep_alive = false;
                } else if v.split(',').any(|t| t.trim() == "keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return proto_error(
                    "501 Not Implemented",
                    "transfer-encoding is not supported; use content-length",
                );
            }
            _ => {}
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        // Decided from the header alone: the oversized body is never
        // buffered.
        return proto_error(
            "413 Content Too Large",
            "content-length exceeds the configured body limit",
        );
    }
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return ParseOutcome::Incomplete;
    }
    ParseOutcome::Request {
        request: ParsedRequest {
            method: method.to_string(),
            path: path.to_string(),
            body: buf[body_start..consumed].to_vec(),
            keep_alive,
        },
        consumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> ParserLimits {
        ParserLimits {
            max_header_bytes: 256,
            max_body_bytes: 64,
        }
    }

    fn whole(buf: &[u8]) -> ParseOutcome {
        parse_request(buf, &limits())
    }

    #[test]
    fn parses_a_complete_post() {
        let raw = b"POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        match whole(raw) {
            ParseOutcome::Request { request, consumed } => {
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/infer");
                assert_eq!(request.body, b"abcd");
                assert!(request.keep_alive);
                assert_eq!(consumed, raw.len());
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let close = b"GET /models HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseOutcome::Request { request, .. } = whole(close) else {
            panic!("close request must parse")
        };
        assert!(!request.keep_alive);
        let old = b"GET /models HTTP/1.0\r\n\r\n";
        let ParseOutcome::Request { request, .. } = whole(old) else {
            panic!("HTTP/1.0 request must parse")
        };
        assert!(!request.keep_alive);
        let revived = b"GET /models HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let ParseOutcome::Request { request, .. } = whole(revived) else {
            panic!("keep-alive HTTP/1.0 request must parse")
        };
        assert!(request.keep_alive);
    }

    #[test]
    fn bare_lf_line_endings_parse() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        assert!(matches!(whole(raw), ParseOutcome::Request { .. }));
    }

    #[test]
    fn oversized_head_is_431_even_without_terminator() {
        let raw = vec![b'A'; 300];
        assert!(matches!(
            whole(&raw),
            ParseOutcome::Error { status, .. } if status.starts_with("431")
        ));
    }

    #[test]
    fn oversized_body_is_413_from_the_header_alone() {
        let raw = b"POST /infer HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
        assert!(matches!(
            whole(raw),
            ParseOutcome::Error { status, .. } if status.starts_with("413")
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let raw = b"POST /infer HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcd";
        assert!(matches!(
            whole(raw),
            ParseOutcome::Error { status, .. } if status.starts_with("400")
        ));
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let raw = b"POST /infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            whole(raw),
            ParseOutcome::Error { status, .. } if status.starts_with("501")
        ));
    }

    #[test]
    fn every_split_point_is_incomplete_then_identical() {
        // The incremental-safety contract: for every prefix of a valid
        // request, the parser returns Incomplete (never a different
        // request, never an error), and the full buffer parses to the
        // same request as the unfragmented stream. This is the
        // fuzz-style sweep over fragmented reads — a request split
        // mid-header must not be misparsed.
        let raw: &[u8] =
            b"POST /infer HTTP/1.1\r\nHost: a\r\nContent-Length: 11\r\n\r\nhello world";
        let ParseOutcome::Request {
            request: expected, ..
        } = whole(raw)
        else {
            panic!("canonical request must parse")
        };
        for split in 0..raw.len() {
            match whole(&raw[..split]) {
                ParseOutcome::Incomplete => {}
                other => panic!("prefix of {split} bytes must be Incomplete, got {other:?}"),
            }
        }
        let ParseOutcome::Request { request, consumed } = whole(raw) else {
            panic!("full buffer must parse")
        };
        assert_eq!(request, expected);
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_request() {
        let first = b"GET /models HTTP/1.1\r\n\r\n".to_vec();
        let mut buf = first.clone();
        buf.extend_from_slice(b"POST /infer HTTP/1.1\r\nContent-Length: 2\r\n\r\nok");
        let ParseOutcome::Request { request, consumed } = whole(&buf) else {
            panic!("first pipelined request must parse")
        };
        assert_eq!(request.path, "/models");
        assert_eq!(consumed, first.len());
        let rest = &buf[consumed..];
        let ParseOutcome::Request { request, consumed } = whole(rest) else {
            panic!("second pipelined request must parse")
        };
        assert_eq!(request.path, "/infer");
        assert_eq!(request.body, b"ok");
        assert_eq!(consumed, rest.len());
    }

    #[test]
    fn deterministic_multi_fragment_replay_matches_whole_parse() {
        // Seeded LCG split replay: rebuild the stream from random-sized
        // fragments and assert the parse flips from Incomplete to the
        // canonical request exactly when the last byte lands.
        let raw: &[u8] =
            b"POST /infer HTTP/1.1\r\nHost: frag\r\nContent-Length: 16\r\n\r\n0123456789abcdef";
        let ParseOutcome::Request {
            request: expected, ..
        } = whole(raw)
        else {
            panic!("canonical request must parse")
        };
        let mut seed = 0x2545F4914F6CDD1Du64;
        for _trial in 0..64 {
            let mut buf: Vec<u8> = Vec::new();
            let mut offset = 0usize;
            while offset < raw.len() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let take = 1 + (seed >> 33) as usize % 7;
                let end = (offset + take).min(raw.len());
                buf.extend_from_slice(&raw[offset..end]);
                offset = end;
                match whole(&buf) {
                    ParseOutcome::Incomplete => assert!(offset < raw.len()),
                    ParseOutcome::Request { request, consumed } => {
                        assert_eq!(offset, raw.len(), "must complete only on the last byte");
                        assert_eq!(request, expected);
                        assert_eq!(consumed, raw.len());
                    }
                    ParseOutcome::Error { status, .. } => {
                        panic!("fragmented valid request parsed as error {status}")
                    }
                }
            }
        }
    }
}
