//! # optimus-store — content-addressed, tiered weight storage
//!
//! The paper's premise is that model state already resident on a node is
//! cheaper to reuse than to fetch and load from scratch, yet a flat
//! per-model `load_cost` scalar cannot say *which bytes* are already
//! there. This crate models model state at the granularity of fixed-size
//! **weight chunks**, content-addressed by the deterministic
//! [`WeightSpec::fingerprint`](optimus_model::WeightSpec::fingerprint)
//! hash, so that:
//!
//! - identical tensors stored by different models (or duplicated between
//!   the catalog and cached transformation-plan payloads) occupy the
//!   store **once** — the dedup the §7 repository layout ("models …
//!   stored with the models in JSON format") gets for free from content
//!   addressing;
//! - a node knows the **residency tier** of every chunk — [`Tier::Remote`]
//!   → [`Tier::NodeDisk`] → [`Tier::NodeMemory`] → [`Tier::Container`] —
//!   and prices a model load by the bytes actually missing at each tier
//!   (per-tier bandwidth + latency, [`TierParams`]), instead of always
//!   charging a from-scratch fetch;
//! - keep-alive expiry *demotes* a container's chunks to node memory
//!   rather than dropping them, so the next cold start of the same (or an
//!   overlapping) model pays memory bandwidth, not the remote fetch;
//! - chunks referenced by cached transformation plans can be **pinned**
//!   so LRU eviction never pushes the transformation working set off the
//!   node.
//!
//! [`NodeStore`] is the per-node state machine (admit / release / pin /
//! LRU demotion); [`chunk`] provides the content-addressed chunking of
//! specs, weight sets and whole model graphs; [`ChunkSet`] is the
//! catalog-level dedup accountant used by the `exp_store` experiment.

mod chunk;
mod node;
mod tier;

pub use chunk::{
    blob_chunks, chunk_spec, model_chunks, weights_chunks, ChunkId, ChunkIndex, ChunkRef, ChunkSet,
    DEFAULT_CHUNK_BYTES,
};
pub use node::{FetchCost, NodeStore, StoreStats};
pub use tier::{StoreConfig, Tier, TierParams};
