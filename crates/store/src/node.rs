//! Per-node store state: reference-counted chunk residency with tiered
//! LRU demotion.
//!
//! Lifecycle of a chunk on one node:
//!
//! 1. **admit** — a container starts holding a model: every chunk the
//!    model needs is promoted to [`Tier::Container`] (reference counted);
//!    the returned [`FetchCost`] prices the bytes by the tier they were
//!    found at (missing chunks transport from [`Tier::Remote`]).
//! 2. **release** — the container is evicted or repurposed: references
//!    drop, and chunks nobody references any more are *demoted* to
//!    [`Tier::NodeMemory`] instead of being dropped — the keep-alive
//!    expiry semantics the tentpole asks for.
//! 3. **LRU demotion** — when node memory overflows its budget, the
//!    least-recently-touched unpinned chunks demote to [`Tier::NodeDisk`];
//!    when the disk cache overflows, they are forgotten back to
//!    [`Tier::Remote`]. Pinned chunks (cached-plan working set) are
//!    exempt.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::chunk::{ChunkId, ChunkRef};
use crate::tier::{StoreConfig, Tier};

struct ChunkEntry {
    bytes: u64,
    tier: Tier,
    /// Live containers referencing this chunk (only meaningful at
    /// [`Tier::Container`]).
    refs: u32,
    /// Pinned chunks are never demoted or forgotten by capacity pressure.
    pinned: bool,
    /// Logical LRU clock value of the last touch.
    touch: u64,
}

/// Byte breakdown of one admit/estimate by the tier the chunks were found
/// at, plus the resulting transport latency.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FetchCost {
    /// Bytes already mapped in a live container (free).
    pub container_bytes: u64,
    /// Bytes copied from node memory.
    pub memory_bytes: u64,
    /// Bytes read from the node's disk cache.
    pub disk_bytes: u64,
    /// Bytes fetched from the remote repository.
    pub remote_bytes: u64,
    /// Total transport latency in seconds.
    pub seconds: f64,
}

impl FetchCost {
    /// Bytes that were not already in a live container.
    pub fn missing_bytes(&self) -> u64 {
        self.memory_bytes + self.disk_bytes + self.remote_bytes
    }
}

/// Point-in-time store statistics (also the `/metrics` source).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Bytes resident at [`Tier::Container`].
    pub container_bytes: u64,
    /// Bytes resident at [`Tier::NodeMemory`].
    pub memory_bytes: u64,
    /// Bytes resident at [`Tier::NodeDisk`].
    pub disk_bytes: u64,
    /// Resident chunk entries (any local tier).
    pub chunks: u64,
    /// Pinned entries.
    pub pinned: u64,
    /// Admit lookups that found the chunk resident on the node.
    pub hits: u64,
    /// Admit lookups that had to fetch from the remote repository.
    pub misses: u64,
    /// Cumulative logical bytes admitted (every reference counts).
    pub admitted_bytes: u64,
    /// Cumulative bytes actually transported from the remote repository.
    pub fetched_bytes: u64,
    /// Current Σ max(refs, 1)·bytes over resident chunks — what the node
    /// would hold without content addressing.
    pub referenced_bytes: u64,
    /// Current Σ bytes over resident chunks (each chunk once).
    pub unique_bytes: u64,
    /// `referenced_bytes / unique_bytes`; 1.0 when empty.
    pub dedup_ratio: f64,
}

impl StoreStats {
    /// Sum per-node stats into a fleet aggregate; the dedup ratio is
    /// recomputed from the summed byte counters.
    pub fn merge(&mut self, other: &StoreStats) {
        self.container_bytes += other.container_bytes;
        self.memory_bytes += other.memory_bytes;
        self.disk_bytes += other.disk_bytes;
        self.chunks += other.chunks;
        self.pinned += other.pinned;
        self.hits += other.hits;
        self.misses += other.misses;
        self.admitted_bytes += other.admitted_bytes;
        self.fetched_bytes += other.fetched_bytes;
        self.referenced_bytes += other.referenced_bytes;
        self.unique_bytes += other.unique_bytes;
        self.dedup_ratio = if self.unique_bytes == 0 {
            1.0
        } else {
            self.referenced_bytes as f64 / self.unique_bytes as f64
        };
    }
}

/// The per-node content-addressed chunk store.
pub struct NodeStore {
    config: StoreConfig,
    chunks: HashMap<ChunkId, ChunkEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    admitted_bytes: u64,
    fetched_bytes: u64,
}

impl NodeStore {
    /// An empty store under `config`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration violates the tier ordering invariant
    /// ([`StoreConfig::validate`]).
    pub fn new(config: StoreConfig) -> Self {
        config.validate().expect("store config must be valid");
        NodeStore {
            config,
            chunks: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            admitted_bytes: 0,
            fetched_bytes: 0,
        }
    }

    /// The configuration this store runs under.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Deduplicate a chunk list by id, keeping first occurrences: a
    /// container holding the same content twice still references (and
    /// transports) it once.
    fn uniq(chunks: &[ChunkRef]) -> Vec<ChunkRef> {
        let mut seen = HashSet::with_capacity(chunks.len());
        chunks
            .iter()
            .copied()
            .filter(|c| seen.insert(c.id))
            .collect()
    }

    fn cost_of(&self, container: u64, memory: u64, disk: u64, remote: u64) -> FetchCost {
        FetchCost {
            container_bytes: container,
            memory_bytes: memory,
            disk_bytes: disk,
            remote_bytes: remote,
            seconds: self.config.transport_seconds(Tier::NodeMemory, memory)
                + self.config.transport_seconds(Tier::NodeDisk, disk)
                + self.config.transport_seconds(Tier::Remote, remote),
        }
    }

    /// Read-only estimate of what admitting `chunks` would cost right now.
    pub fn estimate(&self, chunks: &[ChunkRef]) -> FetchCost {
        let (mut con, mut mem, mut disk, mut rem) = (0u64, 0u64, 0u64, 0u64);
        for c in Self::uniq(chunks) {
            match self.chunks.get(&c.id).map(|e| e.tier) {
                Some(Tier::Container) => con += c.bytes,
                Some(Tier::NodeMemory) => mem += c.bytes,
                Some(Tier::NodeDisk) => disk += c.bytes,
                Some(Tier::Remote) | None => rem += c.bytes,
            }
        }
        self.cost_of(con, mem, disk, rem)
    }

    /// A container starts holding `chunks`: promote them to
    /// [`Tier::Container`], add one reference each, and return the
    /// transport cost by source tier.
    pub fn admit(&mut self, chunks: &[ChunkRef]) -> FetchCost {
        let (mut con, mut mem, mut disk, mut rem) = (0u64, 0u64, 0u64, 0u64);
        for c in Self::uniq(chunks) {
            self.clock += 1;
            self.admitted_bytes += c.bytes;
            match self.chunks.get_mut(&c.id) {
                Some(e) if e.tier != Tier::Remote => {
                    self.hits += 1;
                    match e.tier {
                        Tier::Container => con += c.bytes,
                        Tier::NodeMemory => mem += c.bytes,
                        Tier::NodeDisk => disk += c.bytes,
                        Tier::Remote => unreachable!("guarded above"),
                    }
                    e.tier = Tier::Container;
                    e.refs += 1;
                    e.touch = self.clock;
                }
                Some(e) => {
                    // Known (pinned placeholder) but not resident.
                    self.misses += 1;
                    rem += c.bytes;
                    e.tier = Tier::Container;
                    e.refs += 1;
                    e.touch = self.clock;
                }
                None => {
                    self.misses += 1;
                    rem += c.bytes;
                    self.chunks.insert(
                        c.id,
                        ChunkEntry {
                            bytes: c.bytes,
                            tier: Tier::Container,
                            refs: 1,
                            pinned: false,
                            touch: self.clock,
                        },
                    );
                }
            }
        }
        self.fetched_bytes += rem;
        self.enforce_capacity();
        self.cost_of(con, mem, disk, rem)
    }

    /// A transformation synthesized `chunks` inside a live container
    /// (reshaped/reduced weights computed from source content already in
    /// place): register them at [`Tier::Container`] with a reference each,
    /// free of transport. Not an admission — the hit/miss and fetch
    /// counters are untouched, because no lookup against the tiers
    /// happened; the bytes were *written*, not read.
    pub fn produce(&mut self, chunks: &[ChunkRef]) {
        for c in Self::uniq(chunks) {
            self.clock += 1;
            let clock = self.clock;
            self.chunks
                .entry(c.id)
                .and_modify(|e| {
                    e.tier = Tier::Container;
                    e.refs += 1;
                    e.touch = clock;
                })
                .or_insert(ChunkEntry {
                    bytes: c.bytes,
                    tier: Tier::Container,
                    refs: 1,
                    pinned: false,
                    touch: clock,
                });
        }
        self.enforce_capacity();
    }

    /// A multicast (or prefetch) delivered `chunks` into the node's page
    /// cache: place them at [`Tier::NodeMemory`] with no references — the
    /// first container to admit them pays memory transport instead of the
    /// remote fetch. Chunks already resident at a warmer-or-equal tier are
    /// untouched (warming never demotes). Returns the bytes newly made
    /// resident. Like [`NodeStore::produce`], this is not an admission:
    /// the hit/miss and fetch counters track container loads only; the
    /// transfer itself is priced by the caller's multicast plan.
    pub fn warm(&mut self, chunks: &[ChunkRef]) -> u64 {
        let mut delivered = 0;
        for c in Self::uniq(chunks) {
            self.clock += 1;
            let clock = self.clock;
            match self.chunks.get_mut(&c.id) {
                Some(e) if e.tier >= Tier::NodeMemory => {}
                Some(e) => {
                    delivered += c.bytes;
                    e.tier = Tier::NodeMemory;
                    e.touch = clock;
                }
                None => {
                    delivered += c.bytes;
                    self.chunks.insert(
                        c.id,
                        ChunkEntry {
                            bytes: c.bytes,
                            tier: Tier::NodeMemory,
                            refs: 0,
                            pinned: false,
                            touch: clock,
                        },
                    );
                }
            }
        }
        self.enforce_capacity();
        delivered
    }

    /// A container stops holding `chunks` (eviction or repurposing): drop
    /// one reference each; chunks nobody references demote to
    /// [`Tier::NodeMemory`] — keep-alive expiry keeps the bytes warm.
    pub fn release(&mut self, chunks: &[ChunkRef]) {
        for c in Self::uniq(chunks) {
            if let Some(e) = self.chunks.get_mut(&c.id) {
                e.refs = e.refs.saturating_sub(1);
                if e.refs == 0 && e.tier == Tier::Container {
                    e.tier = Tier::NodeMemory;
                }
            }
        }
        self.enforce_capacity();
    }

    /// Pin `chunks`: capacity pressure will never demote or forget them.
    /// Unknown chunks are remembered as pinned [`Tier::Remote`]
    /// placeholders (pinning declares intent, it does not fetch).
    pub fn pin(&mut self, chunks: &[ChunkRef]) {
        for c in Self::uniq(chunks) {
            self.clock += 1;
            let clock = self.clock;
            self.chunks
                .entry(c.id)
                .and_modify(|e| e.pinned = true)
                .or_insert(ChunkEntry {
                    bytes: c.bytes,
                    tier: Tier::Remote,
                    refs: 0,
                    pinned: true,
                    touch: clock,
                });
        }
    }

    /// Unpin `chunks`, making them ordinary LRU citizens again.
    pub fn unpin(&mut self, chunks: &[ChunkRef]) {
        for c in Self::uniq(chunks) {
            if let Some(e) = self.chunks.get_mut(&c.id) {
                e.pinned = false;
            }
        }
        self.enforce_capacity();
    }

    /// The node loses power: every volatile tier is wiped. Containers are
    /// gone, so all references drop to zero; chunks resident at
    /// [`Tier::Container`] or [`Tier::NodeMemory`] are lost (pinned ones
    /// survive as [`Tier::Remote`] placeholders — the pin declares the
    /// plan working set, which recovery re-fetches). The disk cache and
    /// cumulative counters survive the crash. Returns the volatile bytes
    /// lost.
    pub fn crash(&mut self) -> u64 {
        let mut lost = 0;
        self.chunks.retain(|_, e| {
            e.refs = 0;
            match e.tier {
                Tier::Container | Tier::NodeMemory => {
                    lost += e.bytes;
                    if e.pinned {
                        e.tier = Tier::Remote;
                        true
                    } else {
                        false
                    }
                }
                Tier::NodeDisk | Tier::Remote => true,
            }
        });
        lost
    }

    /// Demote LRU overflow: node memory over budget spills to disk, disk
    /// over budget forgets back to remote. Pinned and referenced chunks
    /// are exempt, so the budgets are soft under pinning pressure.
    fn enforce_capacity(&mut self) {
        self.demote_tier(
            Tier::NodeMemory,
            Tier::NodeDisk,
            self.config.node_memory_bytes,
        );
        self.demote_tier(Tier::NodeDisk, Tier::Remote, self.config.node_disk_bytes);
    }

    fn demote_tier(&mut self, from: Tier, to: Tier, budget: u64) {
        let mut used: u64 = self
            .chunks
            .values()
            .filter(|e| e.tier == from)
            .map(|e| e.bytes)
            .sum();
        if used <= budget {
            return;
        }
        // Oldest-first among unpinned entries of the tier; ties break on
        // the id for determinism.
        let mut victims: Vec<(u64, ChunkId, u64)> = self
            .chunks
            .iter()
            .filter(|(_, e)| e.tier == from && !e.pinned)
            .map(|(id, e)| (e.touch, *id, e.bytes))
            .collect();
        victims.sort_unstable();
        for (_, id, bytes) in victims {
            if used <= budget {
                break;
            }
            used -= bytes;
            if to == Tier::Remote {
                let keep_placeholder = self.chunks.get(&id).is_some_and(|e| e.pinned);
                if !keep_placeholder {
                    self.chunks.remove(&id);
                }
            } else if let Some(e) = self.chunks.get_mut(&id) {
                e.tier = to;
            }
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            hits: self.hits,
            misses: self.misses,
            admitted_bytes: self.admitted_bytes,
            fetched_bytes: self.fetched_bytes,
            ..StoreStats::default()
        };
        for e in self.chunks.values() {
            match e.tier {
                Tier::Container => s.container_bytes += e.bytes,
                Tier::NodeMemory => s.memory_bytes += e.bytes,
                Tier::NodeDisk => s.disk_bytes += e.bytes,
                Tier::Remote => continue, // pinned placeholder, not resident
            }
            s.chunks += 1;
            if e.pinned {
                s.pinned += 1;
            }
            s.referenced_bytes += u64::from(e.refs.max(1)) * e.bytes;
            s.unique_bytes += e.bytes;
        }
        s.dedup_ratio = if s.unique_bytes == 0 {
            1.0
        } else {
            s.referenced_bytes as f64 / s.unique_bytes as f64
        };
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{model_chunks, weights_chunks};
    use optimus_model::{WeightSpec, Weights};

    fn chunks_of(seed: u64, numel: usize) -> Vec<ChunkRef> {
        weights_chunks(&Weights::new(vec![WeightSpec::seeded([numel], seed)]), 1024)
    }

    fn test_config() -> StoreConfig {
        StoreConfig {
            chunk_bytes: 1024,
            node_memory_bytes: 8 * 1024,
            node_disk_bytes: 16 * 1024,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn admit_prices_by_tier_and_warms_up() {
        let mut store = NodeStore::new(StoreConfig::default());
        let chunks = chunks_of(1, 4096); // 16 KiB
        let cold = store.admit(&chunks);
        assert_eq!(cold.remote_bytes, 16 * 1024);
        assert_eq!(cold.container_bytes, 0);
        // Second container of the same model: everything is already mapped.
        let shared = store.admit(&chunks);
        assert_eq!(shared.container_bytes, 16 * 1024);
        assert_eq!(shared.seconds, 0.0);
        // Both containers gone: chunks demote to node memory, and the next
        // admit pays memory transport — strictly cheaper than the cold one.
        store.release(&chunks);
        store.release(&chunks);
        let warm = store.admit(&chunks);
        assert_eq!(warm.memory_bytes, 16 * 1024);
        assert!(warm.seconds > 0.0 && warm.seconds < cold.seconds);
    }

    #[test]
    fn release_demotes_instead_of_dropping() {
        let mut store = NodeStore::new(StoreConfig::default());
        let chunks = chunks_of(2, 2048);
        store.admit(&chunks);
        store.release(&chunks);
        let s = store.stats();
        assert_eq!(s.container_bytes, 0);
        assert_eq!(s.memory_bytes, 8 * 1024);
        assert_eq!(s.chunks, 8);
    }

    #[test]
    fn shared_chunks_stay_in_container_until_last_release() {
        let mut store = NodeStore::new(StoreConfig::default());
        let chunks = chunks_of(3, 1024);
        store.admit(&chunks);
        store.admit(&chunks);
        store.release(&chunks);
        assert_eq!(store.stats().container_bytes, 4096, "one reference remains");
        store.release(&chunks);
        assert_eq!(store.stats().container_bytes, 0);
    }

    #[test]
    fn lru_overflow_demotes_memory_to_disk_then_forgets() {
        let mut store = NodeStore::new(test_config());
        // Three 4 KiB tensors through the container lifecycle: 12 KiB of
        // released state against an 8 KiB memory budget.
        let a = chunks_of(10, 1024);
        let b = chunks_of(11, 1024);
        let c = chunks_of(12, 1024);
        for w in [&a, &b, &c] {
            store.admit(w);
            store.release(w);
        }
        let s = store.stats();
        assert_eq!(s.memory_bytes + s.disk_bytes, 12 * 1024);
        assert_eq!(s.memory_bytes, 8 * 1024, "memory budget enforced");
        assert_eq!(s.disk_bytes, 4 * 1024, "oldest spilled to disk");
        // The oldest tensor (a) was demoted: re-admitting it reads disk.
        let back = store.admit(&a);
        assert_eq!(back.disk_bytes, 4 * 1024);
        assert_eq!(back.remote_bytes, 0);
    }

    #[test]
    fn disk_overflow_forgets_back_to_remote() {
        let mut config = test_config();
        config.node_memory_bytes = 0;
        config.node_disk_bytes = 4 * 1024;
        let mut store = NodeStore::new(config);
        let a = chunks_of(20, 1024);
        let b = chunks_of(21, 1024);
        store.admit(&a);
        store.release(&a); // memory budget 0 → straight to disk
        store.admit(&b);
        store.release(&b); // disk now over budget → a forgotten
        let again = store.estimate(&a);
        assert_eq!(again.remote_bytes, 4 * 1024, "a was evicted to remote");
        assert_eq!(store.estimate(&b).disk_bytes, 4 * 1024);
    }

    #[test]
    fn pinned_chunks_survive_capacity_pressure() {
        let mut config = test_config();
        config.node_memory_bytes = 4 * 1024;
        config.node_disk_bytes = 0;
        let mut store = NodeStore::new(config);
        let plan_set = chunks_of(30, 1024);
        store.pin(&plan_set);
        store.admit(&plan_set);
        store.release(&plan_set);
        // 4 KiB pinned in a 4 KiB budget; an unpinned tensor cycles through
        // and must be the one forgotten.
        let other = chunks_of(31, 1024);
        store.admit(&other);
        store.release(&other);
        assert_eq!(store.estimate(&plan_set).memory_bytes, 4 * 1024);
        assert_eq!(store.estimate(&other).remote_bytes, 4 * 1024);
        // Unpinning makes it evictable again.
        store.unpin(&plan_set);
        store.admit(&other);
        store.release(&other);
        assert_eq!(store.estimate(&plan_set).remote_bytes, 4 * 1024);
    }

    #[test]
    fn warm_places_chunks_in_node_memory_without_counting_admissions() {
        let mut store = NodeStore::new(StoreConfig::default());
        let chunks = chunks_of(70, 2048); // 8 KiB
        let delivered = store.warm(&chunks);
        assert_eq!(delivered, 8 * 1024);
        let s = store.stats();
        assert_eq!(s.memory_bytes, 8 * 1024);
        assert_eq!(s.hits + s.misses, 0, "warming is not an admission");
        assert_eq!(s.fetched_bytes, 0, "no origin fetch was charged");
        // The first container load after warming is a full memory hit.
        let cost = store.admit(&chunks);
        assert_eq!(cost.memory_bytes, 8 * 1024);
        assert_eq!(cost.remote_bytes, 0);
        // Re-warming resident chunks delivers nothing new and never
        // demotes container-resident state.
        assert_eq!(store.warm(&chunks), 0);
        assert_eq!(store.stats().container_bytes, 8 * 1024);
    }

    #[test]
    fn warm_respects_memory_budget() {
        let mut store = NodeStore::new(test_config()); // 8 KiB memory budget
        let big = chunks_of(71, 4096); // 16 KiB
        store.warm(&big);
        let s = store.stats();
        assert_eq!(s.memory_bytes, 8 * 1024, "LRU demotion still applies");
        assert_eq!(s.disk_bytes, 8 * 1024);
    }

    #[test]
    fn stats_track_dedup_and_hit_rate() {
        let mut store = NodeStore::new(StoreConfig::default());
        let chunks = chunks_of(40, 4096);
        store.admit(&chunks);
        store.admit(&chunks); // second container, same content
        let s = store.stats();
        assert_eq!(s.misses, 16, "first admit fetched 16 chunks");
        assert_eq!(s.hits, 16, "second admit hit all 16");
        assert_eq!(s.unique_bytes, 16 * 1024);
        assert_eq!(s.referenced_bytes, 32 * 1024);
        assert!((s.dedup_ratio - 2.0).abs() < 1e-12);
        assert_eq!(s.admitted_bytes, 32 * 1024);
        assert_eq!(
            s.fetched_bytes,
            16 * 1024,
            "content addressing halved the fetches"
        );
    }

    #[test]
    fn stats_merge_recomputes_ratio() {
        let mut store_a = NodeStore::new(StoreConfig::default());
        let mut store_b = NodeStore::new(StoreConfig::default());
        let chunks = chunks_of(50, 1024);
        store_a.admit(&chunks);
        store_a.admit(&chunks);
        store_b.admit(&chunks);
        let mut agg = store_a.stats();
        agg.merge(&store_b.stats());
        assert_eq!(agg.unique_bytes, 8 * 1024);
        assert!((agg.dedup_ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn real_models_share_zero_chunks_across_distinct_seeds() {
        // Catalog models carry unique seeds, so cross-model dedup on raw
        // catalogs is ≈1.0 — the >1.0 ratios come from plan payloads and
        // multi-container residency (exp_store demonstrates both).
        let mut store = NodeStore::new(StoreConfig::default());
        let a = model_chunks(&optimus_zoo::vgg::vgg11(), 4 * 1024 * 1024);
        let b = model_chunks(&optimus_zoo::vgg::vgg16(), 4 * 1024 * 1024);
        store.admit(&a);
        let second = store.admit(&b);
        assert_eq!(second.container_bytes, 0, "distinct seeds, no sharing");
        let s = store.stats();
        assert!((s.dedup_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crash_wipes_volatile_tiers_but_keeps_disk_and_pins() {
        let mut store = NodeStore::new(test_config());
        let live = chunks_of(60, 1024); // 4 KiB at Container
        let warm = chunks_of(61, 1024); // 4 KiB demoted to NodeMemory
        let cold = chunks_of(62, 4096); // 16 KiB, overflows memory to disk
        let pinned = chunks_of(63, 1024); // 4 KiB pinned plan payload
        store.admit(&live);
        store.admit(&warm);
        store.release(&warm);
        store.admit(&cold);
        store.release(&cold);
        store.pin(&pinned);
        store.admit(&pinned);
        store.release(&pinned);
        let before = store.stats();
        assert!(before.disk_bytes > 0, "setup must spill to disk");

        let lost = store.crash();
        let after = store.stats();
        assert_eq!(after.container_bytes, 0);
        assert_eq!(after.memory_bytes, 0);
        assert_eq!(
            after.disk_bytes, before.disk_bytes,
            "disk cache survives a crash"
        );
        assert_eq!(
            lost,
            before.container_bytes + before.memory_bytes,
            "lost bytes account for every volatile tier"
        );
        // Pinned chunks survive as remote placeholders: re-admitting them
        // fetches from remote but they are still marked pinned.
        let refetch = store.admit(&pinned);
        assert_eq!(refetch.remote_bytes, 4 * 1024);
        assert_eq!(store.stats().pinned, 4);
        // Disk-resident chunks are still a disk hit after the crash; only
        // the portion that was volatile at crash time re-fetches remotely.
        let disk_hit = store.admit(&cold);
        assert!(disk_hit.disk_bytes > 0);
        assert_eq!(disk_hit.disk_bytes + disk_hit.remote_bytes, 16 * 1024);
    }
}
