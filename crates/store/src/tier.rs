//! Residency tiers and their transport parameters.

use serde::{Deserialize, Serialize};

/// Where a chunk currently lives, coldest to warmest.
///
/// The ordering is meaningful: `Remote < NodeDisk < NodeMemory <
/// Container`, and transport cost is strictly decreasing along it under
/// any [`StoreConfig`] that passes [`StoreConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Only in the remote model repository (object store / registry).
    Remote,
    /// On the node's local disk cache.
    NodeDisk,
    /// In the node's page cache / shared memory segment.
    NodeMemory,
    /// Mapped into a live container's address space.
    Container,
}

impl Tier {
    /// All tiers, coldest first.
    pub const ALL: [Tier; 4] = [
        Tier::Remote,
        Tier::NodeDisk,
        Tier::NodeMemory,
        Tier::Container,
    ];

    /// Lower-case label (metrics and reports).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Remote => "remote",
            Tier::NodeDisk => "node_disk",
            Tier::NodeMemory => "node_memory",
            Tier::Container => "container",
        }
    }
}

/// Transport parameters of one tier: moving `B` bytes from this tier into
/// a container costs `B / bandwidth + latency` seconds (latency paid once
/// per fetch that touches the tier).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-fetch latency in seconds (request setup, seek, TTFB).
    pub latency_s: f64,
}

impl TierParams {
    /// Seconds to move `bytes` from this tier (0 for an empty fetch).
    pub fn transport_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            bytes as f64 / self.bandwidth_bytes_per_s + self.latency_s
        }
    }
}

/// Store configuration: chunk size, per-tier node capacities, and
/// per-tier transport parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
    /// Node-memory cache capacity in bytes (demoted container state lands
    /// here; LRU overflow demotes to disk). Soft for pinned chunks.
    pub node_memory_bytes: u64,
    /// Node-disk cache capacity in bytes (LRU overflow forgets chunks back
    /// to [`Tier::Remote`]). Soft for pinned chunks.
    pub node_disk_bytes: u64,
    /// Remote repository transport (object store over the network).
    pub remote: TierParams,
    /// Local-disk transport.
    pub disk: TierParams,
    /// Node-memory transport (shared-memory mapping / page-cache copy).
    pub memory: TierParams,
    /// Inter-node transport: one peer streaming chunks to another over
    /// the datacenter interconnect (the per-edge cost of a multicast
    /// transfer tree). Not a residency tier — chunks never *live* here —
    /// but it must dominate `remote`, otherwise fetching from the origin
    /// would beat peer-to-peer warming and the multicast premise breaks.
    pub interconnect: TierParams,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            chunk_bytes: crate::chunk::DEFAULT_CHUNK_BYTES,
            node_memory_bytes: 8 * 1024 * 1024 * 1024,
            node_disk_bytes: 64 * 1024 * 1024 * 1024,
            // S3-class remote, NVMe-class disk, memcpy-class memory: each
            // warmer tier is strictly faster at every transfer size.
            remote: TierParams {
                bandwidth_bytes_per_s: 100.0e6,
                latency_s: 0.05,
            },
            disk: TierParams {
                bandwidth_bytes_per_s: 1.0e9,
                latency_s: 0.002,
            },
            memory: TierParams {
                bandwidth_bytes_per_s: 10.0e9,
                latency_s: 0.0001,
            },
            // 25 GbE-class east-west link between nodes.
            interconnect: TierParams {
                bandwidth_bytes_per_s: 2.5e9,
                latency_s: 0.001,
            },
        }
    }
}

impl StoreConfig {
    /// Transport parameters of `tier`; `None` for [`Tier::Container`],
    /// which is free to read.
    pub fn tier_params(&self, tier: Tier) -> Option<TierParams> {
        match tier {
            Tier::Remote => Some(self.remote),
            Tier::NodeDisk => Some(self.disk),
            Tier::NodeMemory => Some(self.memory),
            Tier::Container => None,
        }
    }

    /// Seconds to move `bytes` from `tier` into a container.
    pub fn transport_seconds(&self, tier: Tier, bytes: u64) -> f64 {
        self.tier_params(tier)
            .map_or(0.0, |p| p.transport_seconds(bytes))
    }

    /// Check the tier ordering invariant: every transport has positive
    /// finite bandwidth and non-negative finite latency, each warmer tier
    /// has bandwidth ≥ and latency ≤ the colder one (so load latency
    /// decreases monotonically with warmer residency), and the inter-node
    /// interconnect dominates the remote origin (so peer-to-peer warming
    /// is never slower than fetching from the repository).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_bytes == 0 {
            return Err("chunk_bytes must be positive".into());
        }
        for (name, p) in [
            ("remote", self.remote),
            ("disk", self.disk),
            ("memory", self.memory),
            ("interconnect", self.interconnect),
        ] {
            if !(p.bandwidth_bytes_per_s.is_finite() && p.bandwidth_bytes_per_s > 0.0) {
                return Err(format!("{name} bandwidth must be positive and finite"));
            }
            if !(p.latency_s.is_finite() && p.latency_s >= 0.0) {
                return Err(format!("{name} latency must be non-negative and finite"));
            }
        }
        let chain = [
            ("remote", self.remote),
            ("disk", self.disk),
            ("memory", self.memory),
        ];
        for pair in chain.windows(2) {
            let (cold_name, cold) = pair[0];
            let (warm_name, warm) = pair[1];
            if warm.bandwidth_bytes_per_s < cold.bandwidth_bytes_per_s
                || warm.latency_s > cold.latency_s
            {
                return Err(format!(
                    "{warm_name} tier must dominate {cold_name} tier (bandwidth up, latency down)"
                ));
            }
        }
        if self.interconnect.bandwidth_bytes_per_s < self.remote.bandwidth_bytes_per_s
            || self.interconnect.latency_s > self.remote.latency_s
        {
            return Err(
                "interconnect must dominate remote tier (bandwidth up, latency down)".into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_monotone() {
        let c = StoreConfig::default();
        c.validate().unwrap();
        let bytes = 100 * 1024 * 1024;
        let mut prev = f64::INFINITY;
        for tier in Tier::ALL {
            let s = c.transport_seconds(tier, bytes);
            assert!(
                s < prev,
                "{} must be strictly cheaper than the colder tier",
                tier.name()
            );
            prev = s;
        }
        assert_eq!(c.transport_seconds(Tier::Container, bytes), 0.0);
        assert_eq!(c.transport_seconds(Tier::Remote, 0), 0.0);
    }

    #[test]
    fn invalid_orderings_are_rejected() {
        let mut c = StoreConfig::default();
        c.disk.bandwidth_bytes_per_s = 1.0; // slower than remote
        assert!(c.validate().is_err());
        let z = StoreConfig {
            chunk_bytes: 0,
            ..StoreConfig::default()
        };
        assert!(z.validate().is_err());
    }

    #[test]
    fn degenerate_transports_are_rejected() {
        let mut c = StoreConfig::default();
        c.remote.bandwidth_bytes_per_s = 0.0;
        assert!(c.validate().unwrap_err().contains("remote bandwidth"));
        let mut c = StoreConfig::default();
        c.interconnect.bandwidth_bytes_per_s = -1.0;
        assert!(c.validate().unwrap_err().contains("interconnect bandwidth"));
        let mut c = StoreConfig::default();
        c.memory.bandwidth_bytes_per_s = f64::INFINITY;
        assert!(c.validate().is_err());
        let mut c = StoreConfig::default();
        c.disk.latency_s = -0.5;
        assert!(c.validate().unwrap_err().contains("disk latency"));
        let mut c = StoreConfig::default();
        c.interconnect.latency_s = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn interconnect_must_dominate_remote() {
        let mut c = StoreConfig::default();
        c.interconnect.bandwidth_bytes_per_s = c.remote.bandwidth_bytes_per_s / 2.0;
        assert!(c.validate().unwrap_err().contains("interconnect"));
        let mut c = StoreConfig::default();
        c.interconnect.latency_s = c.remote.latency_s * 2.0;
        assert!(c.validate().unwrap_err().contains("interconnect"));
        // Equality is allowed: dominance is non-strict.
        let mut c = StoreConfig::default();
        c.interconnect = c.remote;
        c.validate().unwrap();
    }

    #[test]
    fn config_serializes() {
        let c = StoreConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: StoreConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn tier_names_are_stable_labels() {
        assert_eq!(Tier::Remote.name(), "remote");
        assert_eq!(Tier::Container.name(), "container");
        assert!(Tier::Remote < Tier::NodeDisk);
        assert!(Tier::NodeMemory < Tier::Container);
    }
}
