//! Content-addressed chunking of weight tensors.
//!
//! A tensor is split into fixed-size chunks; each chunk's identity is a
//! stable hash of the tensor's content fingerprint
//! ([`WeightSpec::fingerprint`]) mixed with the chunk index and length.
//! Equal specs therefore yield equal chunk ids — two models (or a model
//! and a cached plan payload) holding the same tensor reference the same
//! chunks, which is what makes catalog-level dedup and transformation
//! "fetch only the delta" fall out of plain set operations.

use std::collections::HashMap;
use std::marker::PhantomData;

use optimus_model::{InternKey, ModelGraph, WeightSpec, Weights};
use serde::{Deserialize, Serialize};

/// Default chunk size: 4 MiB, a common object-store part size.
pub const DEFAULT_CHUNK_BYTES: u64 = 4 * 1024 * 1024;

/// Content identity of one weight chunk.
///
/// Derived purely from tensor content (never host state), so ids are
/// stable across processes and across a serialize/deserialize round trip
/// of the owning model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId(pub u64);

/// A content-addressed reference to one chunk: identity plus size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRef {
    /// Content identity.
    pub id: ChunkId,
    /// Chunk length in bytes (only the final chunk of a tensor may be
    /// shorter than the configured chunk size).
    pub bytes: u64,
}

fn mix(acc: &mut u64, v: u64) {
    // Same FNV-1a-with-avalanche mixer as the model crate's content hash.
    *acc ^= v;
    *acc = acc.wrapping_mul(0x1000_0000_01B3);
    *acc ^= *acc >> 29;
}

fn chunk_id(fingerprint: u64, index: u64, len: u64) -> ChunkId {
    let mut acc = fingerprint;
    mix(&mut acc, 0x4348_4E4B); // "CHNK"
    mix(&mut acc, index);
    mix(&mut acc, len);
    ChunkId(acc)
}

/// Append the chunk references of one tensor to `out`.
///
/// A tensor of `B` bytes becomes `ceil(B / chunk_bytes)` chunks; chunk
/// `j`'s id mixes the spec fingerprint with `j` and the chunk length, so
/// different chunk-size configurations never alias.
pub fn chunk_spec(spec: &WeightSpec, chunk_bytes: u64, out: &mut Vec<ChunkRef>) {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let total = (spec.count() * 4) as u64;
    if total == 0 {
        return;
    }
    let fp = spec.fingerprint();
    let n = total.div_ceil(chunk_bytes);
    for j in 0..n {
        let len = chunk_bytes.min(total - j * chunk_bytes);
        out.push(ChunkRef {
            id: chunk_id(fp, j, len),
            bytes: len,
        });
    }
}

/// Chunk references of an opaque byte blob (e.g. a serialized plan
/// artifact), addressed by the blob's content fingerprint.
///
/// Blob chunk ids mix a distinct tag, so an artifact payload can never
/// alias a weight chunk even if their fingerprints collide.
pub fn blob_chunks(fingerprint: u64, total_bytes: u64, chunk_bytes: u64) -> Vec<ChunkRef> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let mut out = Vec::new();
    if total_bytes == 0 {
        return out;
    }
    let mut fp = fingerprint;
    mix(&mut fp, 0x424C_4F42); // "BLOB"
    let n = total_bytes.div_ceil(chunk_bytes);
    for j in 0..n {
        let len = chunk_bytes.min(total_bytes - j * chunk_bytes);
        out.push(ChunkRef {
            id: chunk_id(fp, j, len),
            bytes: len,
        });
    }
    out
}

/// Chunk references of a whole weight set, in tensor order.
pub fn weights_chunks(weights: &Weights, chunk_bytes: u64) -> Vec<ChunkRef> {
    let mut out = Vec::new();
    for t in &weights.tensors {
        chunk_spec(t, chunk_bytes, &mut out);
    }
    out
}

/// Chunk references of every weighted operation of a model, in the
/// graph's deterministic op order.
pub fn model_chunks(model: &ModelGraph, chunk_bytes: u64) -> Vec<ChunkRef> {
    let mut out = Vec::new();
    for (_, op) in model.ops() {
        if let Some(w) = &op.weights {
            for t in &w.tensors {
                chunk_spec(t, chunk_bytes, &mut out);
            }
        }
    }
    out
}

/// Per-model chunk lists keyed by a dense interned id
/// (`optimus_model::FunctionId` / `ModelId`).
///
/// The hot-path replacement for `HashMap<String, Vec<ChunkRef>>`: a store
/// admission/release looks its model's chunk list up by a `Vec` index
/// instead of hashing the function name on every container event.
#[derive(Debug, Clone)]
pub struct ChunkIndex<K> {
    lists: Vec<Option<Vec<ChunkRef>>>,
    _key: PhantomData<K>,
}

impl<K> Default for ChunkIndex<K> {
    fn default() -> Self {
        ChunkIndex {
            lists: Vec::new(),
            _key: PhantomData,
        }
    }
}

impl<K: InternKey> ChunkIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        ChunkIndex::default()
    }

    /// Store the chunk list of `id` (replacing any previous list).
    pub fn insert(&mut self, id: K, chunks: Vec<ChunkRef>) {
        if id.index() >= self.lists.len() {
            self.lists.resize_with(id.index() + 1, || None);
        }
        self.lists[id.index()] = Some(chunks);
    }

    /// The chunk list of `id`, if one was inserted.
    pub fn get(&self, id: K) -> Option<&[ChunkRef]> {
        self.lists.get(id.index())?.as_deref()
    }

    /// Number of ids with a stored chunk list.
    pub fn len(&self) -> usize {
        self.lists.iter().filter(|l| l.is_some()).count()
    }

    /// Whether no chunk lists are stored.
    pub fn is_empty(&self) -> bool {
        self.lists.iter().all(|l| l.is_none())
    }
}

/// Catalog-level dedup accountant: tracks the *logical* bytes referenced
/// (every chunk occurrence counts) against the *unique* bytes a
/// content-addressed store would hold.
#[derive(Debug, Clone, Default)]
pub struct ChunkSet {
    unique: HashMap<ChunkId, u64>,
    logical_bytes: u64,
    references: u64,
}

impl ChunkSet {
    /// An empty set.
    pub fn new() -> Self {
        ChunkSet::default()
    }

    /// Record one chunk reference.
    pub fn add(&mut self, chunk: ChunkRef) {
        self.logical_bytes += chunk.bytes;
        self.references += 1;
        self.unique.insert(chunk.id, chunk.bytes);
    }

    /// Record a batch of chunk references.
    pub fn extend(&mut self, chunks: &[ChunkRef]) {
        for &c in chunks {
            self.add(c);
        }
    }

    /// Total bytes referenced, counting duplicates.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Bytes a content-addressed store holds (each chunk once).
    pub fn unique_bytes(&self) -> u64 {
        self.unique.values().sum()
    }

    /// Number of distinct chunks.
    pub fn unique_count(&self) -> usize {
        self.unique.len()
    }

    /// Number of references recorded.
    pub fn references(&self) -> u64 {
        self.references
    }

    /// `logical / unique` bytes — 1.0 means no duplication, larger means
    /// content addressing saved storage and fetches.
    pub fn dedup_ratio(&self) -> f64 {
        let unique = self.unique_bytes();
        if unique == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / unique as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_share_chunk_ids() {
        let a = WeightSpec::seeded([64, 64, 3, 3], 7);
        let b = WeightSpec::seeded([64, 64, 3, 3], 7);
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        chunk_spec(&a, 4096, &mut ca);
        chunk_spec(&b, 4096, &mut cb);
        assert!(!ca.is_empty());
        assert_eq!(ca, cb);
        let c = WeightSpec::seeded([64, 64, 3, 3], 8);
        let mut cc = Vec::new();
        chunk_spec(&c, 4096, &mut cc);
        assert_eq!(cc.len(), ca.len());
        assert!(ca.iter().zip(&cc).all(|(x, y)| x.id != y.id));
    }

    #[test]
    fn chunk_sizes_cover_the_tensor() {
        // 64*64*3*3*4 = 147456 bytes over 4096-byte chunks: 36 full chunks.
        let spec = WeightSpec::seeded([64, 64, 3, 3], 1);
        let mut chunks = Vec::new();
        chunk_spec(&spec, 4096, &mut chunks);
        assert_eq!(
            chunks.iter().map(|c| c.bytes).sum::<u64>() as usize,
            spec.count() * 4
        );
        assert!(chunks.iter().all(|c| c.bytes <= 4096));
        // An uneven split produces one short tail chunk.
        let odd = WeightSpec::seeded([1000], 1); // 4000 bytes
        let mut oc = Vec::new();
        chunk_spec(&odd, 1024, &mut oc);
        assert_eq!(oc.len(), 4);
        assert_eq!(oc.last().unwrap().bytes, 4000 - 3 * 1024);
    }

    #[test]
    fn different_chunk_sizes_never_alias() {
        let spec = WeightSpec::seeded([256, 256], 3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        chunk_spec(&spec, 4096, &mut a);
        chunk_spec(&spec, 8192, &mut b);
        let ids: std::collections::HashSet<ChunkId> = a.iter().map(|c| c.id).collect();
        assert!(b.iter().all(|c| !ids.contains(&c.id)));
    }

    #[test]
    fn model_chunks_are_deterministic_and_sized() {
        let m = optimus_zoo::resnet::resnet18();
        let a = model_chunks(&m, DEFAULT_CHUNK_BYTES);
        let b = model_chunks(&m, DEFAULT_CHUNK_BYTES);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().map(|c| c.bytes).sum::<u64>(),
            m.byte_size() as u64,
            "chunks cover exactly the model's weight bytes"
        );
    }

    #[test]
    fn chunk_ids_survive_serialization_roundtrip() {
        // The content-addressing prerequisite: save/load preserves chunk
        // hashes, because ids derive from tensor content only.
        let m = optimus_zoo::mobilenet::mobilenet_v1(0.5, 0);
        let json = optimus_model::serialize::to_json(&m).unwrap();
        let back = optimus_model::serialize::from_json(&json).unwrap();
        assert_eq!(
            model_chunks(&m, DEFAULT_CHUNK_BYTES),
            model_chunks(&back, DEFAULT_CHUNK_BYTES)
        );
    }

    #[test]
    fn chunk_index_stores_by_dense_id() {
        use optimus_model::FunctionId;
        let mut idx: ChunkIndex<FunctionId> = ChunkIndex::new();
        assert!(idx.is_empty());
        let spec = WeightSpec::seeded([64, 64], 1);
        let mut chunks = Vec::new();
        chunk_spec(&spec, 4096, &mut chunks);
        idx.insert(FunctionId(2), chunks.clone());
        assert_eq!(idx.get(FunctionId(2)), Some(chunks.as_slice()));
        assert!(idx.get(FunctionId(0)).is_none());
        assert!(idx.get(FunctionId(9)).is_none());
        assert_eq!(idx.len(), 1);
        idx.insert(FunctionId(2), Vec::new());
        assert_eq!(idx.get(FunctionId(2)), Some(&[][..]), "insert replaces");
    }

    #[test]
    fn chunk_set_accounts_dedup() {
        let shared = WeightSpec::seeded([512, 512], 9);
        let solo = WeightSpec::seeded([512, 512], 10);
        let mut set = ChunkSet::new();
        let mut chunks = Vec::new();
        chunk_spec(&shared, 4096, &mut chunks);
        chunk_spec(&shared, 4096, &mut chunks); // second reference
        chunk_spec(&solo, 4096, &mut chunks);
        set.extend(&chunks);
        assert_eq!(set.logical_bytes(), 3 * 512 * 512 * 4);
        assert_eq!(set.unique_bytes(), 2 * 512 * 512 * 4);
        assert!((set.dedup_ratio() - 1.5).abs() < 1e-12);
        assert_eq!(ChunkSet::new().dedup_ratio(), 1.0);
    }
}
