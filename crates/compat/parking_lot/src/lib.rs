//! Offline stand-in for `parking_lot`.
//!
//! Non-poisoning [`Mutex`] and [`RwLock`] with parking_lot's guard-returning
//! API, implemented over `std::sync`. A poisoned std lock (a panic while
//! held) is recovered transparently, matching parking_lot's behaviour of
//! not propagating poison.

use std::sync::{self, PoisonError};

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_many_readers_one_writer() {
        let lock = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *l.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 400);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
