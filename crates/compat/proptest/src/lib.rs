//! Offline stand-in for `proptest`.
//!
//! Seeded random property testing covering the API subset this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config]`),
//! [`Strategy`] with `prop_map`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop::sample::Index`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the
//! offending deterministic seed instead) and no persistence files. Each
//! test function derives its seed from its own name, so runs are
//! reproducible without any state on disk.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { x: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case is a genuine failure.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw another case.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values");
    }
}

// --- ranges ---

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e - s) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + v as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64();
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                v.min((self.end as f64).next_down()) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as f64, *self.end() as f64);
                (s + rng.unit_f64() * (e - s)) as $t
            }
        }
    )*};
}

impl_float_strategy!(f64, f32);

// --- tuples of strategies ---

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- any::<T>() ---

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats across a wide magnitude range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * (2f64).powi(e)
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index {
            raw: rng.next_u64(),
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Constant strategy: always yields clones of `value`.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- collection / sample modules (under the `prop` namespace) ---

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy: `size` is a `usize` or `Range<usize>`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// Strategy drawing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty list");
        Select { options }
    }

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// Resolve against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            ((self.raw as u128 * len as u128) >> 64) as usize
        }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        sample, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` block runs
/// `cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(100),
                    "too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed on case {}: {}",
                            stringify!($name),
                            accepted + 1,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure reports the case, not a panic
/// mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject the current case (filtered input); another case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec(
                (prop::sample::select(vec![2usize, 4, 8]), any::<bool>()),
                1..5,
            ),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            let i = pick.index(v.len());
            prop_assert!(i < v.len());
            prop_assert!([2, 4, 8].contains(&v[i].0));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn map_transforms(len in prop::collection::vec(0.0f64..1.0, 3..6).prop_map(|v| v.len())) {
            prop_assert!((3..6).contains(&len));
        }
    }
}
