//! Offline stand-in for `serde_json`.
//!
//! Thin facade over the `serde` stand-in's [`Value`] tree: JSON text
//! rendering ([`to_string`], [`to_string_pretty`]), parsing ([`from_str`],
//! [`from_slice`]), and the [`json!`] literal macro. Floats render via
//! Rust's shortest round-trip formatting, so values survive a
//! serialize→parse cycle exactly (the `float_roundtrip` cargo feature is
//! accepted and always on).

pub use serde::Error;
pub use serde::Map;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_json())
}

/// Serialize `value` to human-indented JSON text.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_json_pretty())
}

/// Deserialize a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&Value::parse_json(s)?)
}

/// Deserialize a `T` from JSON bytes.
///
/// # Errors
///
/// Returns an [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from a JSON-like literal with embedded expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ----- array elements -----
    (@array $vec:ident) => {};
    (@array $vec:ident , $($rest:tt)*) => {
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident null $($rest:tt)*) => {
        $vec.push($crate::Value::Null);
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident true $($rest:tt)*) => {
        $vec.push($crate::Value::Bool(true));
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident false $($rest:tt)*) => {
        $vec.push($crate::Value::Bool(false));
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident [$($arr:tt)*] $($rest:tt)*) => {
        $vec.push($crate::json_internal!([$($arr)*]));
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident {$($map:tt)*} $($rest:tt)*) => {
        $vec.push($crate::json_internal!({$($map)*}));
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident $value:expr , $($rest:tt)*) => {
        $vec.push($crate::to_value(&$value));
        $crate::json_internal!(@array $vec $($rest)*);
    };
    (@array $vec:ident $value:expr) => {
        $vec.push($crate::to_value(&$value));
    };

    // ----- object members (string-literal keys) -----
    (@object $obj:ident) => {};
    (@object $obj:ident , $($rest:tt)*) => {
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : null $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : true $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Bool(true)));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : false $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Bool(false)));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : [$($arr:tt)*] $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json_internal!([$($arr)*])));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : {$($map:tt)*} $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json_internal!({$($map)*})));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_internal!(@object $obj $($rest)*);
    };
    (@object $obj:ident $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
    };

    // ----- values -----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(Vec::new())
    };
    ([ $($tt:tt)+ ]) => {{
        let mut elems: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@array elems $($tt)+);
        $crate::Value::Array(elems)
    }};
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut members: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object members $($tt)+);
        $crate::Value::Object($crate::Map::from(members))
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let name = "abc".to_string();
        let v = json!({
            "s": name,
            "n": 3usize,
            "f": 1.5,
            "nested": { "a": [1, 2, 3], "b": null, "ok": true },
            "arr": [1.0, "two", false],
        });
        assert_eq!(v["s"], "abc");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["nested"]["a"][2].as_u64(), Some(3));
        assert!(v["nested"]["b"].is_null());
        assert_eq!(v["arr"][1], "two");
    }

    #[test]
    fn text_roundtrip_preserves_floats_and_ints() {
        let v = json!({ "f": 0.1f64 + 0.2f64, "u": u64::MAX, "i": -42i64 });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": [1, 2], "b": { "c": "d" } });
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({ "s": "quote \" backslash \\ newline \n tab \t" });
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
    }
}
