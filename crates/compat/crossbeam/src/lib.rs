//! Offline stand-in for the `crossbeam` facade.
//!
//! Provides the `crossbeam::channel` subset this workspace uses
//! (`unbounded`, `bounded`, `Sender`, `Receiver`), implemented over
//! `std::sync::mpsc`. Semantics relevant here are preserved: cloneable
//! senders, blocking `recv`, and channel closure when every sender drops.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when sending on a channel with no live receiver.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when receiving on a channel with no live sender.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel; cloneable across threads.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking on a full bounded channel.
        ///
        /// # Errors
        ///
        /// Returns the message when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(41).unwrap();
            tx.send(1).unwrap();
        });
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        h.join().unwrap();
        assert_eq!(sum, 42);
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn bounded_capacity_one() {
        let (tx, rx) = channel::bounded::<&'static str>(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv().unwrap(), "reply");
        drop(rx);
        assert!(tx.send("nobody").is_err());
    }
}
