//! Offline stand-in for the `crossbeam` facade.
//!
//! Provides the `crossbeam::channel` subset this workspace uses
//! (`unbounded`, `bounded`, `Sender`, `Receiver`), implemented over
//! `std::sync::mpsc`, plus the `crossbeam::thread::scope` scoped-spawn
//! API over `std::thread::scope`. Semantics relevant here are preserved:
//! cloneable senders, blocking `recv`, channel closure when every sender
//! drops, and scoped threads that may borrow from the enclosing stack
//! frame and are joined before `scope` returns.

pub mod thread {
    //! Scoped threads, mirroring `crossbeam::thread`.
    //!
    //! `scope(|s| { s.spawn(|_| ...); ... })` spawns threads that can
    //! borrow non-`'static` data; every spawned thread is joined when the
    //! closure returns. Implemented over `std::thread::scope`; upstream's
    //! `Result`-wrapping signature is preserved (`Err` when a spawned
    //! thread panicked and the panic payload is not otherwise observed
    //! through `ScopedJoinHandle::join`).

    use std::any::Any;

    /// Handle to one scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// A scope in which borrowing threads can be spawned.
    pub struct Scope<'env, 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'env, 'scope> Scope<'env, 'scope> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself (crossbeam's signature) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope handle; all threads spawned through the scope
    /// are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Returns the first panic payload of a scoped thread whose handle was
    /// not explicitly joined (matching upstream crossbeam's contract that
    /// unobserved child panics surface here rather than aborting).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        // `std::thread::scope` re-raises unobserved child panics as a
        // panic in the parent; catch it to present crossbeam's Result API.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }));
        result.map_err(|payload| payload as Box<dyn Any + Send + 'static>)
    }
}

/// Top-level re-export, matching `crossbeam::scope`.
pub use thread::scope;

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when sending on a channel with no live receiver.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the channel is full
    /// (bounded only) or the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; the message is returned.
        Full(T),
        /// Receiver dropped; the message is returned.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned when receiving on a channel with no live sender.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout; senders are still live.
        Timeout,
        /// The channel is empty and every sender has dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel; cloneable across threads.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking on a full bounded channel.
        ///
        /// # Errors
        ///
        /// Returns the message when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }

        /// Send without blocking. On a full bounded channel the message
        /// comes back as [`TrySendError::Full`] (admission control);
        /// unbounded channels never report `Full`.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel is at capacity,
        /// [`TrySendError::Disconnected`] when the receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s
                    .send(msg)
                    .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                    mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
                }),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.rx.try_recv().ok()
        }

        /// Block for at most `timeout` waiting for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the deadline passes with
        /// senders still live, [`RecvTimeoutError::Disconnected`] when the
        /// channel is empty and every sender has dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(41).unwrap();
            tx.send(1).unwrap();
        });
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        h.join().unwrap();
        assert_eq!(sum, 42);
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn bounded_capacity_one() {
        let (tx, rx) = channel::bounded::<&'static str>(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv().unwrap(), "reply");
        drop(rx);
        assert!(tx.send("nobody").is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        // The buffered message is lost with the receiver; further sends
        // report the disconnect.
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
        let (utx, urx) = channel::unbounded::<u32>();
        utx.try_send(9).unwrap();
        assert_eq!(urx.recv().unwrap(), 9);
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        let (tx, rx) = channel::bounded::<u32>(4);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(1)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(chunk.iter().sum(), std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn scoped_join_returns_value() {
        let n = 21;
        let doubled = super::scope(|s| s.spawn(|_| n * 2).join().unwrap()).unwrap();
        assert_eq!(doubled, 42);
    }

    #[test]
    fn scoped_panic_surfaces_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child failed"));
        });
        assert!(r.is_err(), "unobserved child panic must surface");
    }
}
