//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with criterion's calling surface:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! No statistics, plots, or baselines — each benchmark is warmed up
//! briefly, then timed for a fixed budget and reported as mean
//! time-per-iteration on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Identifier for a parameterised benchmark: `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Work-per-iteration declaration; recorded but only echoed in output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE {
            // Batch iterations to amortise the clock reads.
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iterations == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.0} B/s)", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "{label}: {} per iter ({} iters){extra}",
        format_duration(per_iter),
        b.iterations
    );
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmark `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, self.throughput, |b| routine(b, input));
        self
    }

    /// Benchmark a plain closure within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.throughput, routine);
        self
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a plain closure.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_one(name, None, routine);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_and_duration_formatting() {
        let id = BenchmarkId::new("plan", 42);
        assert_eq!(id.full, "plan/42");
        assert_eq!(format_duration(2.0), "2.000 s");
        assert_eq!(format_duration(0.0025), "2.500 ms");
        assert_eq!(format_duration(2.5e-6), "2.500 µs");
        assert_eq!(format_duration(3.2e-8), "32.0 ns");
    }
}
