//! Derive macros for the offline serde stand-in.
//!
//! Parses the struct/enum definition straight from the token stream (no
//! `syn`/`quote` — the build environment has no crates.io access) and emits
//! impls of the simplified `serde::Serialize` / `serde::Deserialize` traits.
//!
//! Supported shapes (everything this workspace derives):
//! named-field structs, newtype structs, tuple structs, and enums whose
//! variants are unit, tuple, or struct-like. Generic type parameters are
//! not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One field of a struct or struct-like enum variant.
struct NamedField {
    name: String,
}

/// Parsed shape of the deriving type.
enum Shape {
    NamedStruct(Vec<NamedField>),
    /// Tuple struct with this many fields (1 = newtype).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<NamedField>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Parsed {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected 'struct' or 'enum', got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stand-in does not support generic types ({name})");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for '{other}'"),
    };
    Parsed { name, shape }
}

/// Parse `name: Type, ...` skipping attributes, visibility, and the type
/// tokens themselves (types never appear in the generated code — trait
/// method calls are resolved by inference).
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes / visibility before a field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        fields.push(NamedField {
            name: id.to_string(),
        });
        // Expect ':' then consume the type until a top-level ','.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':' after field, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        let name = id.to_string();
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume up to and including the next top-level comma.
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation.

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let members: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::serde::Map::from(vec![{}]))",
                members.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::serde::Map::from(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))])),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::serde::Map::from(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))])),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let members: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::serde::Map::from(vec![(\"{vn}\".to_string(), ::serde::Value::Object(::serde::Map::from(vec![{members}])))])),",
                                binds = binds.join(", "),
                                members = members.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => named_fields_ctor(name, fields, "v"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return Err(::serde::Error::msg(\"wrong arity for {name}\")); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let a = inner.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}::{vn}\"))?;\n\
                                     if a.len() != {n} {{ return Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                                     Ok({name}::{vn}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let ctor = named_fields_ctor(&format!("{name}::{vn}"), fields, "inner");
                            Some(format!("\"{vn}\" => {{ {ctor} }}"))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{ {unit_arms} _ => {{}} }}\n\
                     return Err(::serde::Error::msg(format!(\"unknown {name} variant '{{s}}'\")));\n\
                 }}\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for enum {name}\"))?;\n\
                 let (tag, inner) = obj.first().ok_or_else(|| ::serde::Error::msg(\"empty object for enum {name}\"))?;\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(::serde::Error::msg(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                 }}",
                unit_arms = unit_arms.join(" "),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}

/// `Ok(Ctor { field: from_value(src.get("field"))?, ... })` — `src` must be
/// an expression of type `&Value` in scope.
fn named_fields_ctor(ctor: &str, fields: &[NamedField], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{n}: ::serde::Deserialize::from_value({src}.get(\"{n}\").unwrap_or(&::serde::Value::Null))\n\
                     .map_err(|e| ::serde::Error::msg(format!(\"{ctor}.{n}: {{e}}\")))?,",
                n = f.name
            )
        })
        .collect();
    format!(
        "if {src}.as_object().is_none() {{\n\
             return Err(::serde::Error::msg(\"expected object for {ctor}\"));\n\
         }}\n\
         Ok({ctor} {{ {inits} }})",
        inits = inits.join("\n")
    )
}
