//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen_bool`] — on top of
//! xoshiro256++ seeded via SplitMix64. Deterministic per seed, which is
//! all the workload generators require (they fix seeds explicitly).

/// Low-level generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a `T` from the "standard" distribution (uniform bits;
/// floats in `[0, 1)`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range a value can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is negligible
                // for the spans used here (≪ 2^32).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64 + 1;
                let v = if span == 0 {
                    rng.next_u64()
                } else {
                    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                };
                start + v as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: f64 = StandardSample::sample(rng);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the excluded endpoint.
                let v = v.min((self.end as f64).next_down());
                v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start() as f64, *self.end() as f64);
                assert!(start <= end, "empty range");
                let u: f64 = StandardSample::sample(rng);
                (start + u * (end - start)) as $t
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = StandardSample::sample(self);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = r.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
            let fi = r.gen_range(f64::MIN_POSITIVE..=1.0);
            assert!(fi > 0.0 && fi <= 1.0);
            let unit: f64 = r.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = r.gen();
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }
}
